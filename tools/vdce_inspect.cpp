// vdce-inspect: offline causal analysis of VDCE trace exports.
//
// Loads a JSONL trace written by TraceSink::write_jsonl() (or
// VdceEnvironment::trace().write_jsonl()) and, entirely offline:
//
//   * reconstructs every application run recorded in the trace,
//   * prints the causal report (critical path, phase totals, per-host and
//     per-link timelines, what-if slack table) for each,
//   * optionally re-exports the trace as Chrome trace_event JSON
//     (pid = site, tid = host) for chrome://tracing / Perfetto.
//
// Because the offline extractor feeds the same analysis engine the live
// ExecutionReport uses (obs/causal.hpp), the critical path printed here is
// identical to what ExecutionReport::critical_path() reported in-process —
// tests/test_causal.cpp and `vdce-inspect --selftest` assert exactly that.
//
// When the trace was recorded with the health plane enabled
// (EnvironmentOptions::health), the tool also reconstructs the plane
// offline: --series prints every time series (and its OpenMetrics
// exposition), --alerts re-runs the rule engine over the recorded samples
// and verifies the re-evaluated alert stream matches the live one byte for
// byte (obs/health.hpp replay_trace).
//
// Usage:
//   vdce-inspect TRACE.jsonl [--app N] [--chrome OUT.json] [--jsonl OUT.jsonl]
//                            [--series] [--alerts] [--quiet]
//   vdce-inspect --selftest
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/causal.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"
#include "vdce/vdce.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s TRACE.jsonl [--app N] [--chrome OUT.json] [--jsonl OUT.jsonl]"
      " [--series] [--alerts] [--quiet]\n"
      "       %s --selftest\n"
      "\n"
      "Offline causal analysis of a VDCE JSONL trace export: per-application\n"
      "critical path, phase breakdown, host/link timelines, and what-if\n"
      "slack.  --chrome re-exports the trace for chrome://tracing (pid =\n"
      "site, tid = host); --jsonl re-renders the parsed trace (byte-identical\n"
      "to the input); --series / --alerts reconstruct the health plane from\n"
      "the trace's health.* records (series summary + OpenMetrics, and the\n"
      "re-evaluated alert log verified against the recorded one); --quiet\n"
      "suppresses the text report.  --selftest runs a traced application\n"
      "in-process and verifies the offline pipeline round-trips it.\n",
      argv0, argv0);
  return 2;
}

/// Shared tail of --series / --alerts: replay the health records and verify
/// the re-evaluated alert stream against the recorded one.
int health_report(const vdce::obs::ParsedTrace& parsed, bool series,
                  bool alerts) {
  namespace health = vdce::obs::health;
  auto replay = health::replay_trace(parsed);
  if (!replay) {
    std::fprintf(stderr, "vdce-inspect: %s\n",
                 replay.error().to_string().c_str());
    return 1;
  }
  vdce::common::SimTime horizon = 0.0;
  for (const auto& e : parsed.events) horizon = std::max(horizon, e.end());

  if (series) {
    const auto& store = replay->plane.all_series();
    std::printf("\nhealth series (%zu):\n", store.size());
    for (const auto& ts : store) {
      std::printf("  %-40s %6llu samples, last %.9g @ %.4f\n",
                  ts->key().label().c_str(),
                  static_cast<unsigned long long>(ts->total()), ts->last(),
                  ts->last_time());
    }
    std::printf("\n%s", replay->plane.to_openmetrics(horizon).c_str());
  }
  if (alerts) {
    std::printf("\nalerts (%zu, %zu recorded):\n", replay->plane.alerts().size(),
                replay->recorded.size());
    std::printf("%s", health::render_alerts(replay->plane.alerts()).c_str());
    if (!replay->matches()) {
      std::fprintf(stderr,
                   "vdce-inspect: replayed alert stream DIVERGES from the "
                   "recorded one\n--- recorded ---\n%s",
                   health::render_alerts(replay->recorded).c_str());
      return 1;
    }
    std::printf("replay verified: re-evaluated alerts match the live run\n");
  }
  return 0;
}

// In-process end-to-end check of the whole offline pipeline: run a traced
// application, export, parse back, and verify (a) the re-render is
// byte-identical and (b) the offline critical path matches the live
// ExecutionReport's hop for hop.  Exercised by ctest as a smoke test, so a
// packaging or format regression fails CI even without the unit suite.
int selftest() {
  using namespace vdce;
  EnvironmentOptions options;
  options.metrics.enabled = true;
  options.trace.enabled = true;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();

  editor::AppBuilder app("inspect-selftest");
  auto left = app.task("left", "synthetic.w800").output_data(2e5);
  auto right = app.task("right", "synthetic.w600").output_data(2e5);
  auto combine = app.task("combine", "synthetic.w400").output_data(5e4);
  auto finish = app.task("finish", "synthetic.w200");
  app.link(left, combine).value();
  app.link(right, combine).value();
  app.link(combine, finish).value();
  afg::Afg graph = app.build().value();

  auto report = env.run_application(graph, session, RunOptions{});
  if (!report || !report->success) {
    std::fprintf(stderr, "selftest: traced run failed\n");
    return 1;
  }

  const std::string jsonl = env.trace().to_jsonl();
  auto parsed = obs::parse_jsonl(jsonl);
  if (!parsed) {
    std::fprintf(stderr, "selftest: parse failed: %s\n",
                 parsed.error().to_string().c_str());
    return 1;
  }
  if (obs::render_jsonl(parsed->tracks, parsed->events) != jsonl) {
    std::fprintf(stderr, "selftest: re-render is not byte-identical\n");
    return 1;
  }

  auto apps = obs::causal::extract_apps(*parsed);
  if (apps.size() != 1) {
    std::fprintf(stderr, "selftest: expected 1 app in trace, found %zu\n",
                 apps.size());
    return 1;
  }
  const obs::causal::CriticalPath offline =
      obs::causal::critical_path(apps[0]);
  const obs::causal::CriticalPath live = report->critical_path();
  if (offline.task_chain != live.task_chain) {
    std::fprintf(stderr, "selftest: offline task chain diverges from live\n");
    return 1;
  }
  // Offline times carry the export's 9-significant-digit precision.
  if (std::fabs(offline.makespan - live.makespan) > 1e-6 ||
      std::fabs(offline.phases.total() - offline.makespan) > 1e-9) {
    std::fprintf(stderr, "selftest: critical path does not tile makespan\n");
    return 1;
  }
  std::printf("selftest: OK (%zu events, %zu critical hops, makespan %.6fs)\n",
              parsed->events.size(), offline.hops.size(), offline.makespan);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string chrome_out;
  std::string jsonl_out;
  std::uint32_t only_app = vdce::obs::kNoCausalId;
  bool quiet = false;
  bool series = false;
  bool alerts = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--selftest") == 0) return selftest();
    if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--series") == 0) {
      series = true;
    } else if (std::strcmp(a, "--alerts") == 0) {
      alerts = true;
    } else if (std::strcmp(a, "--app") == 0 && i + 1 < argc) {
      only_app = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(a, "--chrome") == 0 && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (std::strcmp(a, "--jsonl") == 0 && i + 1 < argc) {
      jsonl_out = argv[++i];
    } else if (a[0] == '-') {
      return usage(argv[0]);
    } else if (input.empty()) {
      input = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  std::ifstream in(input, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "vdce-inspect: cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto parsed = vdce::obs::parse_jsonl(text);
  if (!parsed) {
    std::fprintf(stderr, "vdce-inspect: %s\n",
                 parsed.error().to_string().c_str());
    return 1;
  }

  auto write_out = [](const std::string& path, const std::string& content,
                      const char* what) {
    std::ofstream out(path, std::ios::binary);
    if (!out || !(out << content)) {
      std::fprintf(stderr, "vdce-inspect: cannot write %s to %s\n", what,
                   path.c_str());
      return false;
    }
    return true;
  };
  if (!chrome_out.empty() &&
      !write_out(chrome_out,
                 vdce::obs::render_chrome_trace(parsed->tracks, parsed->events),
                 "Chrome trace")) {
    return 1;
  }
  if (!jsonl_out.empty() &&
      !write_out(jsonl_out,
                 vdce::obs::render_jsonl(parsed->tracks, parsed->events),
                 "JSONL")) {
    return 1;
  }

  auto apps = vdce::obs::causal::extract_apps(*parsed);
  std::printf("%s: %zu tracks, %zu events, %zu application run%s\n",
              input.c_str(), parsed->tracks.size(), parsed->events.size(),
              apps.size(), apps.size() == 1 ? "" : "s");
  if (series || alerts) return health_report(*parsed, series, alerts);
  if (apps.empty()) {
    std::printf(
        "no app.run spans found — was the trace recorded with tracing "
        "enabled during an application run?\n");
    return 0;
  }
  if (!quiet) {
    bool matched = false;
    for (const auto& app : apps) {
      if (only_app != vdce::obs::kNoCausalId && app.app != only_app) continue;
      matched = true;
      std::printf("\n%s",
                  vdce::obs::causal::render_report(app, parsed->tracks).c_str());
    }
    if (!matched && only_app != vdce::obs::kNoCausalId) {
      std::fprintf(stderr, "vdce-inspect: no app with id %u in trace\n",
                   only_app);
      return 1;
    }
  }
  return 0;
}
