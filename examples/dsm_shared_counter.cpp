// The shared-memory paradigm on VDCE — the paper's §5 future work, as a
// user would write it.
//
// Six "threads" on machines across both sites cooperatively build a global
// histogram in distributed shared memory: each locks a shared bin vector,
// merges its local counts, and releases.  Afterwards a reader on a seventh
// machine audits the result.  The DSM protocol (home-based MSI + FIFO
// locks) keeps every update; the printout shows the protocol work the
// abstraction hid.
#include <cstdio>
#include <vector>

#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;

  VdceEnvironment env(make_campus_pair(41));
  env.bring_up();
  dsm::DsmRuntime& dsm_runtime = env.enable_dsm();

  // The shared object: an 8-bin histogram, home chosen by name hash.
  dsm_runtime.define_object("histogram",
                            tasklib::Value(std::vector<int>(8, 0)), 256);
  std::printf("shared object 'histogram' homed on host %u (%s)\n",
              dsm_runtime.home_of("histogram").value(),
              env.topology()
                  .host(dsm_runtime.home_of("histogram"))
                  .spec.name.c_str());

  // Each worker contributes deterministic local counts, one lock-protected
  // merge per round.
  struct Worker {
    dsm::DsmClient client;
    int id;
    int rounds;
    void go() {
      if (rounds-- == 0) return;
      client.acquire("histogram_lock", [this] {
        client.read("histogram", [this](tasklib::Value v) {
          auto bins = std::any_cast<std::vector<int>>(v);
          bins[static_cast<std::size_t>((id + rounds) % 8)] += 1;
          client.write("histogram", tasklib::Value(std::move(bins)), [this] {
            client.release("histogram_lock", [this] { go(); });
          });
        });
      });
    }
  };

  constexpr int kWorkers = 6;
  constexpr int kRounds = 10;
  std::vector<Worker> workers;
  workers.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    common::HostId host = env.topology()
                              .site(common::SiteId(i % 2))
                              .hosts[static_cast<std::size_t>(i / 2)];
    workers.push_back(Worker{dsm_runtime.client(host), i, kRounds});
  }
  for (Worker& w : workers) w.go();

  env.run_for(300.0);

  // Audit from a machine that never wrote.
  auto auditor =
      dsm_runtime.client(env.topology().site(common::SiteId(1)).hosts[4]);
  std::vector<int> final_bins;
  auditor.read("histogram", [&](tasklib::Value v) {
    final_bins = std::any_cast<std::vector<int>>(v);
  });
  env.run_for(5.0);

  int total = 0;
  std::printf("final histogram:");
  for (std::size_t b = 0; b < final_bins.size(); ++b) {
    std::printf(" %d", final_bins[b]);
    total += final_bins[b];
  }
  std::printf("\n");

  const auto& stats = dsm_runtime.stats();
  std::printf(
      "protocol work: %llu read misses, %llu write misses, %llu "
      "invalidations, %llu owner recalls, %llu lock grants\n",
      static_cast<unsigned long long>(stats.read_misses),
      static_cast<unsigned long long>(stats.write_misses),
      static_cast<unsigned long long>(stats.invalidations_sent),
      static_cast<unsigned long long>(stats.owner_recalls),
      static_cast<unsigned long long>(stats.lock_grants));

  bool ok = total == kWorkers * kRounds;
  std::printf("consistency check: %d increments recorded of %d (%s)\n",
              total, kWorkers * kRounds, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
