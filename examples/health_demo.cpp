// Health-plane demo: run an application while a chaos plan crashes one of
// its machines and partitions the WAN, with the live health plane enabled —
// then show everything the plane produced:
//
//   * the typed alert log (which SLO rules fired, where, and when),
//   * the alerts that landed on the ExecutionReport (those in flight while
//     the submission ran),
//   * the detection scorecard against the injector's ground truth
//     (per-fault-class recall and latency, alert precision),
//   * an OpenMetrics exposition of the windowed time series,
//   * and the offline replay check: the rule engine re-run over the trace's
//     health.* records must reproduce the live alert stream byte for byte
//     (the same path `vdce-inspect --alerts` uses).
//
// See docs/OBSERVABILITY.md ("The health plane") for the rule catalogue.
#include <cstdio>
#include <string>

#include "afg/generate.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "obs/health.hpp"
#include "vdce/vdce.hpp"

using namespace vdce;

int main() {
  // Crash a worker mid-run and cut the WAN for ten seconds.
  chaos::FaultPlan plan;
  plan.name("health-demo")
      .seed(7)
      .crash(common::HostId(2), 4.0, 12.0)
      .partition(0, 1, 6.0, 10.0);

  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.metrics.enabled = true;
  options.trace.enabled = true;  // health.* records feed the offline replay
  options.health.enabled = true;
  options.faults = plan;

  VdceEnvironment env(make_campus_pair(13), options);
  if (common::Status up = env.try_bring_up(); !up.ok()) {
    std::fprintf(stderr, "bring-up failed: %s\n", up.error().message.c_str());
    return 1;
  }
  if (!env.try_add_user("demo", "secret").ok()) return 1;
  Session session = env.login(common::SiteId(0), "demo", "secret").value();

  // A fork-join wide enough to occupy several workers, including the one
  // the plan crashes.
  afg::Afg fan = afg::make_fork_join(3, 2, 3000.0, 1e5);
  auto report = env.run_application(fan, session, RunOptions{});
  if (!report.has_value()) {
    std::fprintf(stderr, "run failed: %s\n", report.error().message.c_str());
    return 1;
  }
  // Let the post-run windows (crash reboot, partition heal) play out so the
  // staleness alerts clear on camera.
  env.run_for(10.0);

  namespace health = obs::health;
  std::printf("=== alert log (%zu alerts) ===\n%s",
              env.health().alerts().size(),
              health::render_alerts(env.health().alerts()).c_str());

  std::printf("\n=== alerts on the ExecutionReport (%zu) ===\n",
              report->alerts.size());
  for (const health::Alert& a : report->alerts) {
    std::printf("  %-18s %s fired %.2fs\n", a.rule.c_str(),
                a.series.label().c_str(), a.fired);
  }

  const auto truth = env.chaos()->ground_truth();
  const health::DetectionScore score =
      health::score_detections(truth, env.health().alerts());
  std::printf("\n=== detection scorecard ===\n%s", score.render().c_str());

  std::printf("\n=== OpenMetrics (10s window at t=%.1f) ===\n%s",
              env.now(), env.health().to_openmetrics(env.now()).c_str());

  auto parsed = obs::parse_jsonl(env.trace().to_jsonl());
  if (!parsed.has_value()) return 1;
  auto replay = health::replay_trace(*parsed);
  if (!replay.has_value() || !replay->matches()) {
    std::fprintf(stderr, "offline replay diverged from the live run\n");
    return 1;
  }
  std::printf("\noffline replay: %zu alerts re-derived from the trace, "
              "byte-identical to the live stream\n",
              replay->plane.alerts().size());
  return report->success ? 0 : 1;
}
