// Wide-area failover: §4.1's failure story, end to end.
//
// A long pipeline runs across the testbed; mid-run one of the machines
// hosting a stage is killed.  Watch the runtime survive it:
//   1. the Group Manager's echo packets go unanswered,
//   2. the host is marked "down" in the resource-performance database,
//   3. the Site Managers broadcast the failure (inter-site coordination),
//   4. the coordinator re-places the stranded tasks (cascading to parents
//      whose cached outputs died with the machine) and re-pulls inputs,
//   5. the application completes with failures_survived > 0.
#include <cstdio>

#include "common/logging.hpp"
#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;

  EnvironmentOptions options;
  options.runtime.echo_period = 1.0;
  options.runtime.progress_period = 2.0;
  // Narrate the runtime protocol while this demo runs.
  options.log_level = common::LogLevel::kInfo;
  options.metrics.enabled = true;
  VdceEnvironment env(make_campus_pair(23), options);
  env.bring_up();
  env.add_user("operator", "pw");
  auto session = env.login(common::SiteId(0), "operator", "pw").value();

  // Six heavy stages in a chain: plenty of time to fail a machine mid-run.
  afg::Afg graph = afg::make_chain(6, 4000, 2e5, "long-pipeline");

  auto table = env.schedule(graph, session);
  if (!table) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 table.error().to_string().c_str());
    return 1;
  }
  std::puts(table->describe(graph).c_str());

  // Kill the machine hosting stage 3 (s2) ten simulated seconds in — unless
  // it is the coordinator's own server machine.
  common::HostId victim =
      table->find(graph.find_task("s2").value())->primary_host();
  if (victim == env.topology().site(common::SiteId(0)).server) {
    victim = table->find(graph.find_task("s3").value())->primary_host();
  }
  std::printf(">>> will kill host %u (%s) at t=+10s\n", victim.value(),
              env.topology().host(victim).spec.name.c_str());
  env.engine().schedule(10.0, [&] {
    std::printf(">>> killing host %u at t=%.2fs\n", victim.value(), env.now());
    env.topology().set_host_up(victim, false);
  });

  RunOptions run;
  run.real_kernels = false;
  auto report = env.execute_with_table(graph, *table, session, run);
  env.set_log_level(common::LogLevel::kOff);
  if (!report) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }
  std::puts(report->describe(graph).c_str());

  auto rec = env.repo(common::SiteId(0)).resources().find(victim);
  std::printf("resource db says host %u up=%s\n", victim.value(),
              rec && rec->up ? "true" : "false");
  std::printf("failures survived: %d, reschedules: %d\n",
              report->failures_survived, report->reschedules);
  std::printf("recovery counters: marked_down=%llu reschedules=%llu\n",
              static_cast<unsigned long long>(
                  env.metrics().counter_value("recovery.hosts_marked_down")),
              static_cast<unsigned long long>(
                  env.metrics().counter_value("recovery.reschedules")));
  return report->success && report->failures_survived > 0 ? 0 : 1;
}
