// Quickstart: the smallest complete VDCE program.
//
// Brings up a two-site environment, authenticates, builds a four-task
// application flow graph with the editor API, runs the full pipeline
// (distributed scheduling -> allocation-table distribution -> channel setup
// -> execution), and prints the resulting schedule and execution report.
#include <cstdio>

#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;

  // 1. A simulated deployment: two campus sites, six hosts each — with the
  //    observability layer on, so the run leaves a trace behind.
  EnvironmentOptions options;
  options.metrics.enabled = true;
  options.trace.enabled = true;
  VdceEnvironment env(make_campus_pair(), options);
  env.bring_up();

  // 2. Accounts live in the user-accounts database; login authenticates
  //    against the site the user connects to.
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();

  // 3. Build an application flow graph: two independent producers feeding a
  //    combiner, then a finisher (synthetic tasks; see
  //    linear_equation_solver.cpp for real kernels).
  editor::AppBuilder app("quickstart");
  auto left = app.task("producer_left", "synthetic.w800").output_data(2e5);
  auto right = app.task("producer_right", "synthetic.w600").output_data(2e5);
  auto combine = app.task("combine", "synthetic.w400").output_data(5e4);
  auto finish = app.task("finish", "synthetic.w200");
  app.link(left, combine).value();
  app.link(right, combine).value();
  app.link(combine, finish).value();
  afg::Afg graph = app.build().value();

  std::puts(editor::render_afg_summary(graph).c_str());

  // 4. Schedule only (Fig. 2 over the simulated wide-area network)...
  auto table = env.schedule(graph, session);
  if (!table) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 table.error().to_string().c_str());
    return 1;
  }
  std::puts(table->describe(graph).c_str());

  // 5. ...then execute with the same table and print the report.
  RunOptions run;
  run.real_kernels = false;  // timing-only
  auto report = env.execute_with_table(graph, *table, session, run);
  if (!report) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }
  std::puts(report->describe(graph).c_str());

  // 6. Where did the simulated seconds go?  The breakdown splits the
  //    end-to-end latency into phases; the causal critical path says which
  //    chain of tasks (and which waits between them) set the makespan.
  auto phases = report->breakdown();
  std::printf("setup %.3fs | execution %.3fs | task-busy %.3fs\n",
              phases.setup, phases.execution, phases.task_busy);
  auto critical = report->critical_path();
  std::printf(
      "critical path: %zu hops through %zu tasks — compute %.3fs, "
      "transfer+wait %.3fs, completion %.3fs\n",
      critical.hops.size(), critical.task_chain.size(),
      critical.phases.compute,
      critical.phases.startup + critical.phases.transfer +
          critical.phases.wait,
      critical.phases.completion);

  // 7. Export the run: the Chrome trace opens in chrome://tracing or
  //    Perfetto (one process per site, one lane per host); the JSONL export
  //    feeds `vdce-inspect quickstart_trace.jsonl` for offline analysis.
  if (env.trace().write_chrome_trace("quickstart_trace.json").ok() &&
      env.trace().write_jsonl("quickstart_trace.jsonl").ok()) {
    std::printf("wrote quickstart_trace.json + quickstart_trace.jsonl "
                "(%zu trace events)\n",
                env.trace().events().size());
  }
  return report->success ? 0 : 1;
}
