// vdcec — the VDCE command-line client.
//
// The paper's users reached VDCE through a web browser; this is the
// equivalent terminal front-end over the same pipeline:
//
//   vdcec check  app.afg          parse + validate, print the flow graph
//   vdcec panels app.afg          print every task-properties window
//   vdcec schedule app.afg        schedule on the standard testbed, print RAT
//   vdcec run    app.afg          schedule + execute (timing-only), report
//
// Options:
//   --sites N      testbed size (default 2)
//   --hosts N      hosts per site (default 6)
//   --seed N       testbed seed (default 7)
//   --scheduler S  vdce-level | vdce-level-paper | heft | min-min |
//                  min-load | round-robin | random (default vdce-level)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "vdce/vdce.hpp"

namespace {

using namespace vdce;

int usage() {
  std::fprintf(stderr,
               "usage: vdcec <check|panels|schedule|run> <file.afg>\n"
               "             [--sites N] [--hosts N] [--seed N]\n"
               "             [--scheduler NAME]\n");
  return 2;
}

common::Expected<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Error{common::ErrorCode::kIoError, "cannot open " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  std::size_t sites = 2, hosts = 6;
  std::uint64_t seed = 7;
  std::string scheduler_name = "vdce-level";
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--sites") {
      sites = std::stoul(value);
    } else if (flag == "--hosts") {
      hosts = std::stoul(value);
    } else if (flag == "--seed") {
      seed = std::stoull(value);
    } else if (flag == "--scheduler") {
      scheduler_name = value;
    } else {
      return usage();
    }
  }

  auto text = slurp(path);
  if (!text) {
    std::fprintf(stderr, "error: %s\n", text.error().to_string().c_str());
    return 1;
  }
  auto graph = editor::parse_afg(*text);
  if (!graph) {
    std::fprintf(stderr, "parse error: %s\n",
                 graph.error().to_string().c_str());
    return 1;
  }
  auto valid = graph->validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid application: %s\n",
                 valid.error().to_string().c_str());
    return 1;
  }

  if (command == "check") {
    std::puts(editor::render_afg_summary(*graph).c_str());
    std::printf("OK: %zu tasks, %zu edges\n", graph->task_count(),
                graph->edges().size());
    return 0;
  }
  if (command == "panels") {
    for (const afg::TaskNode& t : graph->tasks()) {
      std::puts(editor::render_properties_panel(*graph, t.id).c_str());
    }
    return 0;
  }
  if (command != "schedule" && command != "run") return usage();

  TestbedSpec spec;
  spec.sites = sites;
  spec.hosts_per_site = hosts;
  spec.seed = seed;
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.k_nearest = sites > 0 ? sites - 1 : 0;
  VdceEnvironment env(make_testbed(spec), options);
  env.bring_up();
  env.add_user("cli", "cli");
  auto session = env.login(common::SiteId(0), "cli", "cli").value();

  // Non-default schedulers run synchronously against the environment's
  // repositories; the default uses the full distributed pipeline.
  common::Expected<sched::ResourceAllocationTable> table =
      common::Error{common::ErrorCode::kInternal, "unset"};
  if (scheduler_name == "vdce-level") {
    table = env.schedule(*graph, session);
  } else {
    auto scheduler = sched::make_scheduler(scheduler_name, seed);
    if (!scheduler) {
      std::fprintf(stderr, "error: %s\n",
                   scheduler.error().to_string().c_str());
      return 1;
    }
    sched::SchedulerContext ctx;
    ctx.topology = &env.topology();
    for (const net::Site& s : env.topology().sites()) {
      ctx.repos.push_back(&env.repo(s.id));
    }
    ctx.predictor = &env.core().predictor();
    ctx.local_site = session.site;
    ctx.k_nearest = options.runtime.k_nearest;
    table = (*scheduler)->schedule(*graph, ctx);
  }
  if (!table) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 table.error().to_string().c_str());
    return 1;
  }
  std::puts(table->describe(*graph).c_str());
  if (command == "schedule") return 0;

  RunOptions run;
  run.real_kernels = false;  // .afg files reference user data we don't have
  auto report = env.execute_with_table(*graph, *table, session, run);
  if (!report) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }
  std::puts(report->describe(*graph).c_str());
  return report->success ? 0 : 1;
}
