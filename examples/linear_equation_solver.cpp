// Figure 1 end-to-end: the Linear Equation Solver application.
//
// Reproduces the paper's flagship example with *real* matrix kernels: the
// user stages matrix_A.dat and vector_b.dat in their VDCE file space, draws
// the AFG (LU-Decomposition feeding forward/backward substitution, with the
// task-properties panels shown exactly as in Figure 1), and the runtime
// executes it across the simulated testbed.  At the end the program checks
// A·x = b against the value that actually flowed through the Data Managers.
#include <cstdio>

#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;

  VdceEnvironment env(make_campus_pair());
  env.bring_up();
  env.add_user("user_k", "secret");
  auto session = env.login(common::SiteId(0), "user_k", "secret").value();

  // ---- the user's input files (I/O service object store) -----------------
  common::Rng rng(1997);
  const std::size_t n = 64;
  tasklib::Matrix a = tasklib::Matrix::random_diag_dominant(n, rng);
  tasklib::Vector b(n);
  for (double& v : b) v = rng.uniform(-3, 3);
  env.store().put("/users/VDCE/user_k/matrix_A.dat", tasklib::Value(a),
                  a.size_bytes());
  env.store().put("/users/VDCE/user_k/vector_b.dat", tasklib::Value(b),
                  static_cast<double>(n * sizeof(double)));

  // ---- Figure 1: the application flow graph -----------------------------
  editor::AppBuilder app("Linear Equation Solver");
  auto lu = app.task("LU_Decomposition", "matrix.lu_decomposition")
                .parallel(2)
                .input_file("/users/VDCE/user_k/matrix_A.dat", a.size_bytes())
                .output_data(a.size_bytes())
                .request_service("visualization");
  auto fwd = app.task("Forward_Substitution", "matrix.forward_substitution")
                 .prefer_machine_type("SUN solaris")
                 .output_data(a.size_bytes());
  auto bwd = app.task("Backward_Substitution", "matrix.backward_substitution")
                 .output_file("/users/VDCE/user_k/vector_X.dat",
                              static_cast<double>(n * sizeof(double)));
  app.link(lu, fwd).value();
  fwd.input_file("/users/VDCE/user_k/vector_b.dat",
                 static_cast<double>(n * sizeof(double)));
  app.link(fwd, bwd).value();
  afg::Afg graph = app.build().value();

  // The editor's views: flow graph + per-task properties panels.
  std::puts(editor::render_afg_summary(graph).c_str());
  for (const afg::TaskNode& t : graph.tasks()) {
    std::puts(editor::render_properties_panel(graph, t.id).c_str());
  }

  // The menu the task was picked from.
  std::puts(editor::render_library_menu(env.registry(), "matrix").c_str());

  // The on-disk form of the application (AFG DSL round-trip).
  std::puts("--- saved application (.afg) ---");
  std::puts(editor::write_afg(graph).c_str());

  // ---- schedule + execute -------------------------------------------------
  auto table = env.schedule(graph, session);
  if (!table) {
    std::fprintf(stderr, "scheduling failed: %s\n",
                 table.error().to_string().c_str());
    return 1;
  }
  std::puts(table->describe(graph).c_str());

  auto report = env.execute_with_table(graph, *table, session, {});
  if (!report || !report->success) {
    std::fprintf(stderr, "execution failed: %s\n",
                 report ? report->failure_reason.c_str()
                        : report.error().to_string().c_str());
    return 1;
  }
  std::puts(report->describe(graph).c_str());

  // ---- verify the answer that flowed through the Data Managers ------------
  auto bwd_id = graph.find_task("Backward_Substitution").value();
  auto x = std::any_cast<tasklib::Vector>(
      report->exit_outputs.at(bwd_id.value()));
  double residual = tasklib::residual_inf(a, x, b);
  std::printf("verification: ||A x - b||_inf = %.3e (%s)\n", residual,
              residual < 1e-8 ? "OK" : "FAILED");
  return residual < 1e-8 ? 0 : 1;
}
