// Fault-injection demo: run the same application twice — once on a healthy
// testbed, once under a chaos::FaultPlan that crashes the machine running
// one of its tasks, loses a quarter of the data-manager traffic, and
// degrades the WAN — and show that the run still completes, what the
// injector did, and the per-fault recovery outcomes from the
// ExecutionReport.
//
// The plan is written in the FaultPlan text format (docs/FAULT_INJECTION.md)
// to show the parse path; the builder API produces the identical plan.
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "editor/builder.hpp"
#include "vdce/vdce.hpp"

using namespace vdce;

namespace {

runtime::ExecutionReport run_once(VdceEnvironment& env,
                                  const std::vector<std::string>& pinned) {
  if (!env.try_add_user("demo", "secret").ok()) std::exit(1);
  Session session = env.login(common::SiteId(0), "demo", "secret").value();

  // Three parallel stages pinned to known machines, feeding a join — so the
  // fault plan can aim its crash at a machine that is provably busy.
  editor::AppBuilder builder("demo-app");
  auto join = builder.task("join", "synthetic.w500");
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    auto stage = builder.task("par" + std::to_string(i), "synthetic.w2000")
                     .prefer_machine(pinned[i])
                     .output_data(1e5);
    if (!builder.link(stage, join).has_value()) std::exit(1);
  }

  RunOptions run;
  run.real_kernels = false;
  auto report = env.run_application(builder.build().value(), session, run);
  if (!report.has_value()) {
    std::fprintf(stderr, "run failed: %s\n", report.error().message.c_str());
    std::exit(1);
  }

  if (env.chaos() != nullptr) {
    std::printf("-- injector log (%llu messages dropped) --\n%s",
                static_cast<unsigned long long>(env.chaos()->messages_dropped()),
                env.chaos()->log_text().c_str());
  }
  return *report;
}

EnvironmentOptions demo_options() {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  options.runtime.stall_sweeps = 8;  // the stages run for tens of seconds
  return options;
}

/// Names of the first three non-server machines of site 0.
std::vector<std::string> pinned_machines(const net::Topology& topology) {
  const net::Site& site0 = topology.site(common::SiteId(0));
  std::vector<std::string> pinned;
  for (common::HostId h : site0.hosts) {
    if (h == site0.server) continue;
    pinned.push_back(topology.host(h).spec.name);
    if (pinned.size() == 3) break;
  }
  return pinned;
}

}  // namespace

int main() {
  std::printf("=== clean run ===\n");
  double clean_makespan = 0.0;
  std::vector<std::string> pinned;
  {
    VdceEnvironment env(make_campus_pair(13), demo_options());
    if (common::Status up = env.try_bring_up(); !up.ok()) {
      std::fprintf(stderr, "bring-up failed: %s\n", up.error().message.c_str());
      return 1;
    }
    pinned = pinned_machines(env.topology());
    clean_makespan = run_once(env, pinned).makespan();
  }
  std::printf("completed in %.2fs (simulated)\n\n", clean_makespan);

  std::printf("=== chaotic run ===\n");
  // Crash the machine running the first pinned stage, mid-task.
  auto plan = chaos::FaultPlan::parse(
      "faultplan \"demo-meltdown\"\n"
      "seed 7\n"
      "crash host \"" + pinned[0] + "\" at 2.0 down_for 20.0\n"
      "loss rate 0.25 at 0.0 for 10.0 type \"dm.\"\n"
      "degrade site 0 site 1 at 1.0 for 30.0 latency_x 4.0 bandwidth_x 0.25\n");
  if (!plan.has_value()) {
    std::fprintf(stderr, "plan parse failed: %s\n",
                 plan.error().message.c_str());
    return 1;
  }

  EnvironmentOptions options = demo_options();
  options.faults = *plan;
  VdceEnvironment env(make_campus_pair(13), options);
  if (common::Status up = env.try_bring_up(); !up.ok()) {
    std::fprintf(stderr, "bring-up failed: %s\n", up.error().message.c_str());
    return 1;
  }
  runtime::ExecutionReport chaotic = run_once(env, pinned);

  std::printf("\ncompleted in %.2fs (vs %.2fs clean), %d failure(s) survived\n",
              chaotic.makespan(), clean_makespan, chaotic.failures_survived);
  std::printf("-- recovery outcomes --\n");
  if (chaotic.recoveries.empty()) std::printf("  (none needed)\n");
  for (const runtime::RecoveryEvent& r : chaotic.recoveries) {
    if (r.reason == "stall" || r.reason == "relaunch") {
      std::printf("  %-10s at %6.2fs  (app-level resend)\n", r.reason.c_str(),
                  r.detected_at);
      continue;
    }
    std::printf("  %-10s at %6.2fs  host %u -> %u  (downtime %.2fs)\n",
                r.reason.c_str(), r.detected_at, r.from_host.value(),
                r.to_host.value(), r.downtime);
  }
  return chaotic.success ? 0 : 1;
}
