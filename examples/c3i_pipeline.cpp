// C3I sensor-processing pipeline across two sites.
//
// The paper's Application Editor ships a "C3I (command and control
// applications) library"; this example builds the classic chain those
// applications are made of:
//
//   sense (3 channels, staged as URL inputs) -> beamform -> FIR filter
//     -> detect  (threshold crossings)
//     -> energy  (track-strength fusion)
//
// with real signal kernels, the visualization service sampling host loads,
// and background load enabled so the prediction-driven scheduler has real
// heterogeneity to work against.
#include <cstdio>
#include <vector>

#include "vdce/vdce.hpp"

int main() {
  using namespace vdce;

  EnvironmentOptions options;
  options.background_load = true;
  options.load.mean_load = 0.3;
  VdceEnvironment env(make_campus_pair(11), options);
  env.bring_up();
  env.add_user("analyst", "c3i");
  auto session = env.login(common::SiteId(0), "analyst", "c3i").value();

  runtime::VisualizationService viz(env.core());
  viz.start(1.0);

  // Warm up so monitoring history reflects the background load before the
  // scheduler consults it.
  env.run_for(10.0);

  // ---- sensor inputs via URL I/O -----------------------------------------
  common::Rng rng(3);
  const std::size_t samples = 1024;
  std::vector<tasklib::Signal> channels;
  for (int c = 0; c < 3; ++c) {
    channels.push_back(
        tasklib::make_test_signal(samples, {0.05}, /*noise=*/0.4, rng));
  }
  std::vector<int> delays{0, 0, 0};  // broadside steering
  auto taps = tasklib::design_lowpass(0.1, 63).value();

  const double chan_bytes = static_cast<double>(samples * sizeof(double));
  env.store().put("http://sensors.vdce.edu/array0", tasklib::Value(channels),
                  3 * chan_bytes);
  env.store().put("http://sensors.vdce.edu/steering", tasklib::Value(delays),
                  64);
  env.store().put("/users/VDCE/analyst/lowpass.taps", tasklib::Value(taps),
                  static_cast<double>(taps.size() * sizeof(double)));
  env.store().put("/users/VDCE/analyst/threshold.dat", tasklib::Value(0.45),
                  8);

  // ---- the AFG -------------------------------------------------------------
  editor::AppBuilder app("C3I Track Pipeline");
  auto beam = app.task("Beamform", "signal.beamform")
                  .input_file("http://sensors.vdce.edu/array0", 3 * chan_bytes)
                  .input_file("http://sensors.vdce.edu/steering", 64)
                  .output_data(chan_bytes)
                  .request_service("visualization");
  auto filter = app.task("Lowpass_Filter", "signal.fir_filter")
                    .output_data(chan_bytes);
  auto detect = app.task("Detect", "signal.detect").output_data(1e4);
  auto fuse = app.task("Track_Energy", "signal.energy").output_data(64);
  app.link(beam, filter).value();
  filter.input_file("/users/VDCE/analyst/lowpass.taps",
                    static_cast<double>(taps.size() * sizeof(double)));
  app.link(filter, detect).value();
  detect.input_file("/users/VDCE/analyst/threshold.dat", 8);
  app.link(filter, fuse).value();
  afg::Afg graph = app.build().value();

  std::puts(editor::render_afg_summary(graph).c_str());
  std::puts(editor::render_library_menu(env.registry(), "signal").c_str());

  // ---- run -----------------------------------------------------------------
  auto report = env.run_application(graph, session, {});
  if (!report || !report->success) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report ? report->failure_reason.c_str()
                        : report.error().to_string().c_str());
    return 1;
  }
  std::puts(report->describe(graph).c_str());

  // ---- results --------------------------------------------------------------
  auto detect_id = graph.find_task("Detect").value();
  auto fuse_id = graph.find_task("Track_Energy").value();
  auto hits = std::any_cast<std::vector<std::size_t>>(
      report->exit_outputs.at(detect_id.value()));
  auto strength = std::any_cast<double>(report->exit_outputs.at(fuse_id.value()));
  std::printf("detections: %zu threshold crossings; filtered track energy %.1f\n",
              hits.size(), strength);

  viz.stop();
  std::puts(viz.render_workload().c_str());

  // The tone at 0.05 cycles/sample passes the 0.1 lowpass: detections must
  // exist and carry energy.
  return (!hits.empty() && strength > 0.0) ? 0 : 1;
}
