// ChaosInjector — the active half of the vdce::chaos fault-injection plane.
//
// Arms a FaultPlan against a live environment: every fault event becomes a
// pair of begin/end callbacks on the simulation engine, so faults fire at
// exact simulated instants and the whole run stays deterministic.  The
// injector plugs into the layers it perturbs:
//
//   * net::Fabric   — as a FaultInterceptor: partitions and transient loss
//                     drop messages at send time; link degradation rewrites
//                     the LinkSpec used to time each transfer.
//   * net::Topology — host crashes/reboots flip ground-truth up/down; load
//                     spikes park extra CPU load on a host (slowing running
//                     tasks and, past the overload threshold, provoking
//                     terminate-and-reschedule).
//   * runtime       — stale-monitor windows mute monitor daemons through
//                     RuntimeCore::monitor_muted, starving the repositories
//                     of fresh data.
//
// Every injected fault emits a `chaos.*` trace instant (when tracing is on)
// and appends a FaultRecord to the injector's log; the log's text rendering
// is byte-identical across identical-seed runs and is what
// tests/test_chaos.cpp diffs to assert determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace vdce::chaos {

/// One line of the injector's deterministic activity log.
struct FaultRecord {
  common::SimTime time = 0.0;
  std::string what;  ///< e.g. "crash host 3", "partition 0|1 lifted (37 drops)"
};

class ChaosInjector final : public net::FaultInterceptor {
 public:
  /// `obs` may be null (no tracing/metrics).  The injector must outlive the
  /// fabric registration (the environment owns both).
  ChaosInjector(sim::Engine& engine, net::Topology& topology,
                obs::Observability* obs, FaultPlan plan);

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Resolve host references and schedule every event.  Call exactly once,
  /// before the simulation advances past the earliest event.  Fails with a
  /// descriptive error on an unresolvable host/site reference or an invalid
  /// plan; on failure nothing has been scheduled.
  common::Status arm();

  // --- net::FaultInterceptor -------------------------------------------------
  [[nodiscard]] bool should_drop(const net::Message& msg) override;
  [[nodiscard]] net::LinkSpec adjust_link(net::HostId src, net::HostId dst,
                                          net::LinkSpec link) override;

  /// Is `host`'s monitor daemon muted right now (stale-data window)?
  [[nodiscard]] bool monitor_muted(common::HostId host) const;

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const std::vector<FaultRecord>& log() const noexcept {
    return log_;
  }
  /// Text rendering of the log: "t=5.0000 crash host 3\n..." — byte-identical
  /// across identical-seed runs (the determinism artifact tests diff).
  [[nodiscard]] std::string log_text() const;

  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return total_dropped_;
  }
  [[nodiscard]] std::size_t faults_injected() const noexcept {
    return faults_injected_;
  }

  /// Ground truth for detection scoring (obs/health.hpp): one record per
  /// armed plan event, host references resolved to concrete ids and sites.
  /// Valid only after a successful arm(); empty before.
  [[nodiscard]] std::vector<obs::health::GroundTruthFault> ground_truth() const;

 private:
  struct ActivePartition {
    common::SiteId a, b;
    std::uint64_t drops = 0;
  };
  struct ActiveLoss {
    double rate = 0.0;
    std::string type_prefix;
    std::int64_t site = -1;  ///< -1 = any
    std::uint64_t drops = 0;
  };
  struct ActiveDegrade {
    common::SiteId a, b;
    double latency_x = 1.0;
    double bandwidth_x = 1.0;
  };

  void record(std::string what);
  void trace_instant(const char* name, std::vector<obs::TraceArg> args);
  [[nodiscard]] common::Expected<common::HostId> resolve(
      const HostRef& ref) const;
  [[nodiscard]] common::Expected<common::SiteId> resolve_site(
      std::int64_t site) const;

  /// Schedule the plan event at `index`.  The injected callbacks capture
  /// only (this, index, host) — a FaultEvent carries strings and would
  /// overflow sim::Task's inline budget; the event itself is re-read from
  /// the injector-owned plan at fire time.
  void schedule_event(std::size_t index, common::HostId host);
  /// Hosts a stale-monitor event mutes: the named host, or every host of
  /// the event's site.
  [[nodiscard]] std::vector<common::HostId> stale_targets(
      const FaultEvent& event, common::HostId host) const;

  sim::Engine& engine_;
  net::Topology& topology_;
  obs::Observability* obs_;
  FaultPlan plan_;
  common::Rng rng_;
  bool armed_ = false;
  /// Host reference of each plan event resolved at arm time (HostId{} where
  /// the event names no host); kept for ground_truth().
  std::vector<common::HostId> resolved_hosts_;

  // Active windows.  Each vector is small (bounded by concurrently active
  // plan events), so linear scans on the send path are cheap.
  std::vector<ActivePartition> partitions_;
  std::vector<ActiveLoss> losses_;
  std::vector<ActiveDegrade> degrades_;
  std::vector<common::HostId> muted_hosts_;

  std::vector<FaultRecord> log_;
  std::uint64_t total_dropped_ = 0;
  std::size_t faults_injected_ = 0;
};

}  // namespace vdce::chaos
