#include "chaos/injector.hpp"

#include <algorithm>
#include <utility>

#include "common/strings.hpp"

namespace vdce::chaos {

namespace {

using common::Error;
using common::ErrorCode;
using common::Expected;
using common::HostId;
using common::SiteId;
using common::Status;

/// Unordered site-pair match (a degrade/partition between 0 and 1 affects
/// traffic in both directions; (s, s) names the site's own LAN).
bool pair_matches(SiteId x, SiteId y, SiteId a, SiteId b) {
  return (x == a && y == b) || (x == b && y == a);
}

std::string host_label(const net::Topology& topology, HostId host) {
  return "host " + std::to_string(host.value()) + " (" +
         topology.host(host).spec.name + ")";
}

}  // namespace

ChaosInjector::ChaosInjector(sim::Engine& engine, net::Topology& topology,
                             obs::Observability* obs, FaultPlan plan)
    : engine_(engine),
      topology_(topology),
      obs_(obs),
      plan_(std::move(plan)),
      rng_(plan_.seed()) {}

Status ChaosInjector::arm() {
  if (armed_) {
    return Error{ErrorCode::kInvalidArgument, "fault plan already armed"};
  }
  if (Status valid = plan_.validate(); !valid.ok()) return valid;

  // Resolve every reference up front so a bad plan fails before anything is
  // scheduled (an arm is all-or-nothing).
  std::vector<HostId> resolved(plan_.events().size(), HostId{});
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& e = plan_.events()[i];
    if (!e.host.empty()) {
      Expected<HostId> host = resolve(e.host);
      if (!host.has_value()) return host.error();
      resolved[i] = host.value();
    }
    for (std::int64_t s : {e.site_a, e.site_b}) {
      if (s >= 0 && static_cast<std::size_t>(s) >= topology_.site_count()) {
        return Error{ErrorCode::kNotFound,
                     "fault plan references site " + std::to_string(s) +
                         " but the topology has only " +
                         std::to_string(topology_.site_count()) + " sites"};
      }
    }
  }
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    schedule_event(i, resolved[i]);
  }
  resolved_hosts_ = std::move(resolved);
  armed_ = true;
  return Status::success();
}

std::vector<obs::health::GroundTruthFault> ChaosInjector::ground_truth() const {
  std::vector<obs::health::GroundTruthFault> truth;
  if (!armed_) return truth;
  truth.reserve(plan_.events().size());
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& e = plan_.events()[i];
    obs::health::GroundTruthFault f;
    f.kind = to_string(e.kind);
    f.at = e.at;
    f.duration = e.duration;
    if (!e.host.empty()) {
      const HostId host = resolved_hosts_[i];
      f.host = static_cast<std::int64_t>(host.value());
      f.site = static_cast<std::int64_t>(topology_.host(host).site.value());
    } else if (e.kind == FaultKind::kStaleMonitor ||
               e.kind == FaultKind::kMessageLoss) {
      f.site = e.site_a;  // site-wide window (stale site N / loss site N)
    }
    if (e.kind == FaultKind::kLinkDegrade || e.kind == FaultKind::kPartition) {
      f.site_a = std::min(e.site_a, e.site_b);
      f.site_b = std::max(e.site_a, e.site_b);
    }
    truth.push_back(std::move(f));
  }
  return truth;
}

Expected<HostId> ChaosInjector::resolve(const HostRef& ref) const {
  if (ref.id >= 0) {
    if (static_cast<std::size_t>(ref.id) >= topology_.host_count()) {
      return Error{ErrorCode::kNotFound,
                   "fault plan references host " + std::to_string(ref.id) +
                       " but the topology has only " +
                       std::to_string(topology_.host_count()) + " hosts"};
    }
    return HostId{static_cast<std::uint32_t>(ref.id)};
  }
  Expected<HostId> host = topology_.find_host(ref.name);
  if (!host.has_value()) {
    return Error{ErrorCode::kNotFound,
                 "fault plan references unknown host \"" + ref.name + "\""};
  }
  return host;
}

Expected<SiteId> ChaosInjector::resolve_site(std::int64_t site) const {
  if (site < 0 || static_cast<std::size_t>(site) >= topology_.site_count()) {
    return Error{ErrorCode::kNotFound,
                 "fault plan references unknown site " + std::to_string(site)};
  }
  return SiteId{static_cast<std::uint32_t>(site)};
}

std::vector<HostId> ChaosInjector::stale_targets(const FaultEvent& event,
                                                 HostId host) const {
  if (!event.host.empty()) return {host};
  const SiteId site{static_cast<std::uint32_t>(event.site_a)};
  return topology_.site(site).hosts;
}

void ChaosInjector::schedule_event(std::size_t index, HostId host) {
  // The callbacks below capture (this, index, host) only and re-read the
  // event from the injector-owned plan when they fire: a FaultEvent's
  // strings would overflow sim::Task's inline capture budget, and the plan
  // is immutable once armed, so the indirection changes nothing observable.
  const FaultEvent& event = plan_.events()[index];
  const common::SimDuration delay =
      std::max(0.0, event.at - engine_.now());

  switch (event.kind) {
    case FaultKind::kHostCrash: {
      engine_.schedule(delay, [this, host] {
        topology_.set_host_up(host, false);
        ++faults_injected_;
        record("crash " + host_label(topology_, host));
        trace_instant("chaos.crash", {obs::arg("host", host.value())});
      });
      if (event.duration > 0.0) {
        engine_.schedule(delay + event.duration, [this, host] {
          // A reboot comes back clean: no residual load, no placed tasks.
          net::Host& h = topology_.host(host);
          h.state.up = true;
          h.state.cpu_load = 0.0;
          h.state.available_mb = h.spec.memory_mb;
          h.state.running_tasks = 0;
          record("reboot " + host_label(topology_, host));
          trace_instant("chaos.reboot", {obs::arg("host", host.value())});
        });
      }
      break;
    }
    case FaultKind::kLinkDegrade: {
      const SiteId a{static_cast<std::uint32_t>(event.site_a)};
      const SiteId b{static_cast<std::uint32_t>(event.site_b)};
      const double lx = event.latency_x;
      const double bx = event.bandwidth_x;
      engine_.schedule(delay, [this, a, b, lx, bx] {
        degrades_.push_back(ActiveDegrade{a, b, lx, bx});
        ++faults_injected_;
        record("degrade site " + std::to_string(a.value()) + "|" +
               std::to_string(b.value()) + " latency_x " +
               common::format_double(lx) + " bandwidth_x " +
               common::format_double(bx));
        trace_instant("chaos.degrade",
                      {obs::arg("site_a", a.value()), obs::arg("site_b", b.value()),
                       obs::arg("latency_x", lx), obs::arg("bandwidth_x", bx)});
      });
      if (event.duration > 0.0) {
        engine_.schedule(delay + event.duration, [this, a, b] {
          auto it = std::find_if(
              degrades_.begin(), degrades_.end(),
              [&](const ActiveDegrade& d) { return d.a == a && d.b == b; });
          if (it != degrades_.end()) degrades_.erase(it);
          record("degrade site " + std::to_string(a.value()) + "|" +
                 std::to_string(b.value()) + " lifted");
          trace_instant("chaos.degrade_lifted", {obs::arg("site_a", a.value()),
                                                 obs::arg("site_b", b.value())});
        });
      }
      break;
    }
    case FaultKind::kPartition: {
      const SiteId a{static_cast<std::uint32_t>(event.site_a)};
      const SiteId b{static_cast<std::uint32_t>(event.site_b)};
      engine_.schedule(delay, [this, a, b] {
        partitions_.push_back(ActivePartition{a, b, 0});
        ++faults_injected_;
        record("partition site " + std::to_string(a.value()) + "|" +
               std::to_string(b.value()));
        trace_instant("chaos.partition", {obs::arg("site_a", a.value()),
                                          obs::arg("site_b", b.value())});
      });
      if (event.duration > 0.0) {
        engine_.schedule(delay + event.duration, [this, a, b] {
          auto it = std::find_if(
              partitions_.begin(), partitions_.end(),
              [&](const ActivePartition& p) { return p.a == a && p.b == b; });
          std::uint64_t drops = 0;
          if (it != partitions_.end()) {
            drops = it->drops;
            partitions_.erase(it);
          }
          record("partition site " + std::to_string(a.value()) + "|" +
                 std::to_string(b.value()) + " healed (" +
                 std::to_string(drops) + " drops)");
          trace_instant("chaos.partition_healed",
                        {obs::arg("site_a", a.value()),
                         obs::arg("site_b", b.value()),
                         obs::arg("drops", drops)});
        });
      }
      break;
    }
    case FaultKind::kMessageLoss: {
      engine_.schedule(delay, [this, index] {
        const FaultEvent& e = plan_.events()[index];
        losses_.push_back(ActiveLoss{e.rate, e.type_prefix, e.site_a, 0});
        ++faults_injected_;
        std::string what = "loss rate " + common::format_double(e.rate);
        if (!e.type_prefix.empty()) what += " type \"" + e.type_prefix + "\"";
        if (e.site_a >= 0) what += " site " + std::to_string(e.site_a);
        record(std::move(what));
        trace_instant("chaos.loss", {obs::arg("rate", e.rate),
                                     obs::arg("type", e.type_prefix)});
      });
      if (event.duration > 0.0) {
        engine_.schedule(delay + event.duration, [this, index] {
          const FaultEvent& e = plan_.events()[index];
          auto it = std::find_if(losses_.begin(), losses_.end(),
                                 [&](const ActiveLoss& l) {
                                   return l.rate == e.rate &&
                                          l.type_prefix == e.type_prefix &&
                                          l.site == e.site_a;
                                 });
          std::uint64_t drops = 0;
          if (it != losses_.end()) {
            drops = it->drops;
            losses_.erase(it);
          }
          record("loss rate " + common::format_double(e.rate) + " ended (" +
                 std::to_string(drops) + " drops)");
          trace_instant("chaos.loss_ended",
                        {obs::arg("rate", e.rate), obs::arg("drops", drops)});
        });
      }
      break;
    }
    case FaultKind::kLoadSpike: {
      const double load = event.load;
      engine_.schedule(delay, [this, host, load] {
        topology_.add_cpu_load(host, load);
        ++faults_injected_;
        record("slow " + host_label(topology_, host) + " load +" +
               common::format_double(load));
        trace_instant("chaos.slow",
                      {obs::arg("host", host.value()), obs::arg("load", load)});
      });
      if (event.duration > 0.0) {
        engine_.schedule(delay + event.duration, [this, host, load] {
          topology_.add_cpu_load(host, -load);
          record("slow " + host_label(topology_, host) + " ended");
          trace_instant("chaos.slow_ended", {obs::arg("host", host.value())});
        });
      }
      break;
    }
    case FaultKind::kStaleMonitor: {
      engine_.schedule(delay, [this, index, host] {
        const FaultEvent& e = plan_.events()[index];
        const std::vector<HostId> targets = stale_targets(e, host);
        for (HostId h : targets) muted_hosts_.push_back(h);
        ++faults_injected_;
        std::string what = "stale ";
        what += !e.host.empty()
                    ? host_label(topology_, targets.front())
                    : "site " + std::to_string(e.site_a) + " (" +
                          std::to_string(targets.size()) + " hosts)";
        record(std::move(what));
        trace_instant("chaos.stale",
                      {obs::arg("hosts", std::to_string(targets.size()))});
      });
      if (event.duration > 0.0) {
        engine_.schedule(delay + event.duration, [this, index, host] {
          const FaultEvent& e = plan_.events()[index];
          const std::vector<HostId> targets = stale_targets(e, host);
          for (HostId h : targets) {
            auto it = std::find(muted_hosts_.begin(), muted_hosts_.end(), h);
            if (it != muted_hosts_.end()) muted_hosts_.erase(it);
          }
          std::string what = "stale ";
          what += !e.host.empty() ? host_label(topology_, targets.front())
                                  : "site " + std::to_string(e.site_a);
          record(std::move(what) + " ended");
          trace_instant("chaos.stale_ended",
                        {obs::arg("hosts", std::to_string(targets.size()))});
        });
      }
      break;
    }
  }
}

bool ChaosInjector::should_drop(const net::Message& msg) {
  if (partitions_.empty() && losses_.empty()) return false;
  const SiteId src_site = topology_.host(msg.src).site;
  const SiteId dst_site = topology_.host(msg.dst).site;

  for (ActivePartition& p : partitions_) {
    if (src_site != dst_site && pair_matches(src_site, dst_site, p.a, p.b)) {
      ++p.drops;
      ++total_dropped_;
      return true;
    }
  }
  for (ActiveLoss& l : losses_) {
    if (!l.type_prefix.empty() &&
        msg.type.compare(0, l.type_prefix.size(), l.type_prefix) != 0) {
      continue;
    }
    if (l.site >= 0) {
      const auto site = static_cast<std::uint32_t>(l.site);
      if (src_site.value() != site && dst_site.value() != site) continue;
    }
    // The RNG draw happens only for matching messages, so the drop pattern
    // is a pure function of (plan seed, message sequence) — deterministic.
    if (rng_.chance(l.rate)) {
      ++l.drops;
      ++total_dropped_;
      return true;
    }
  }
  return false;
}

net::LinkSpec ChaosInjector::adjust_link(net::HostId src, net::HostId dst,
                                         net::LinkSpec link) {
  if (degrades_.empty() || src == dst) return link;
  const SiteId src_site = topology_.host(src).site;
  const SiteId dst_site = topology_.host(dst).site;
  for (const ActiveDegrade& d : degrades_) {
    if (pair_matches(src_site, dst_site, d.a, d.b)) {
      link.latency *= d.latency_x;
      link.bandwidth_bps *= d.bandwidth_x;
    }
  }
  return link;
}

bool ChaosInjector::monitor_muted(HostId host) const {
  return std::find(muted_hosts_.begin(), muted_hosts_.end(), host) !=
         muted_hosts_.end();
}

void ChaosInjector::record(std::string what) {
  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->metrics().counter("chaos.log_records").add(1);
  }
  log_.push_back(FaultRecord{engine_.now(), std::move(what)});
}

void ChaosInjector::trace_instant(const char* name,
                                  std::vector<obs::TraceArg> args) {
  if (obs_ != nullptr && obs_->trace_on()) {
    obs_->trace().instant("chaos", name, engine_.now(), obs::kControlTrack,
                          std::move(args));
  }
}

std::string ChaosInjector::log_text() const {
  std::string out;
  for (const FaultRecord& r : log_) {
    out += "t=" + common::format_double(r.time, 4) + " " + r.what + "\n";
  }
  return out;
}

}  // namespace vdce::chaos
