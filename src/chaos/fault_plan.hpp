// FaultPlan — the declarative half of the vdce::chaos fault-injection plane.
//
// A plan is an ordered list of fault events scheduled in *simulated* time:
// host crashes (with optional reboot), link degradation, site partitions,
// transient message loss, load spikes (task slowdowns up to overload-driven
// hangs), and stale-monitor-data windows.  Plans are built either through
// the fluent builder API or parsed from a line-oriented text format that
// parallels the AFG DSL (editor/dsl.hpp):
//
//   faultplan "campus-meltdown"
//   seed 42
//
//   crash host 3 at 5.0 down_for 10.0
//   crash host "lynx2.site1.vdce.edu" at 8.0
//   degrade site 0 site 1 at 10.0 for 5.0 latency_x 4.0 bandwidth_x 0.25
//   partition site 0 site 1 at 20.0 for 4.0
//   loss rate 0.25 at 2.0 for 6.0 type "dm." site 0
//   slow host 4 at 3.0 for 5.0 load 2.0
//   stale host 4 at 3.0 for 5.0
//   stale site 1 at 6.0 for 8.0
//
// Plans are pure data: no topology is consulted until a ChaosInjector arms
// the plan, so the same plan file can drive differently sized testbeds (a
// dangling host name is an arm-time error).  Determinism guarantee: a given
// (plan, seed, environment seed) triple always injects the same faults at
// the same simulated instants and drops the same messages — see
// docs/FAULT_INJECTION.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace vdce::chaos {

/// Reference to a host by id or by DNS name; resolved against the topology
/// when the plan is armed.
struct HostRef {
  std::int64_t id = -1;    ///< >= 0: direct host id
  std::string name;        ///< non-empty: resolve via Topology::find_host

  HostRef() = default;
  HostRef(common::HostId host) : id(host.value()) {}  // NOLINT(google-explicit-constructor)
  HostRef(std::string host_name) : name(std::move(host_name)) {}  // NOLINT(google-explicit-constructor)
  HostRef(const char* host_name) : name(host_name) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool empty() const { return id < 0 && name.empty(); }
};

enum class FaultKind {
  kHostCrash,    ///< host goes down at `at`; reboots after `duration` (>0)
  kLinkDegrade,  ///< WAN/LAN between site_a/site_b degraded for `duration`
  kPartition,    ///< all traffic between site_a and site_b dropped
  kMessageLoss,  ///< each matching message dropped with probability `rate`
  kLoadSpike,    ///< `load` extra CPUs of work on `host` (slowdown / hang)
  kStaleMonitor, ///< monitor daemons of host/site stop reporting
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault.  Which fields matter depends on `kind`; unused
/// fields keep their defaults so the text round-trip stays canonical.
struct FaultEvent {
  FaultKind kind = FaultKind::kHostCrash;
  common::SimTime at = 0.0;            ///< injection time (simulated seconds)
  common::SimDuration duration = 0.0;  ///< window length; 0 = permanent

  HostRef host;                        ///< crash / slow / stale-by-host
  std::int64_t site_a = -1;            ///< degrade / partition / loss / stale
  std::int64_t site_b = -1;            ///< degrade / partition

  double latency_x = 1.0;              ///< degrade: latency multiplier
  double bandwidth_x = 1.0;            ///< degrade: bandwidth multiplier
  double rate = 0.0;                   ///< loss: drop probability in [0,1]
  std::string type_prefix;             ///< loss: restrict to message types
  double load = 0.0;                   ///< spike: CPUs of injected load
};

/// Builder + container.  All builder methods validate eagerly and return
/// *this for chaining; a malformed call records an error retrievable via
/// validate() instead of aborting, so plan construction is Expected-first.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& name(std::string plan_name) {
    name_ = std::move(plan_name);
    return *this;
  }
  FaultPlan& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  /// Crash `host` at `at`; reboot `down_for` seconds later (0 = forever).
  FaultPlan& crash(HostRef host, common::SimTime at,
                   common::SimDuration down_for = 0.0);

  /// Degrade the link between two sites (same site twice = its LAN):
  /// latency is multiplied by `latency_x`, bandwidth by `bandwidth_x`.
  FaultPlan& degrade(std::int64_t site_a, std::int64_t site_b,
                     common::SimTime at, common::SimDuration duration,
                     double latency_x, double bandwidth_x);

  /// Drop every message crossing between the two sites during the window.
  FaultPlan& partition(std::int64_t site_a, std::int64_t site_b,
                       common::SimTime at, common::SimDuration duration);

  /// Drop matching messages with probability `rate`.  `type_prefix` limits
  /// the loss to message types starting with it ("" = all); `site` limits
  /// it to traffic touching that site (-1 = anywhere).
  FaultPlan& loss(double rate, common::SimTime at, common::SimDuration duration,
                  std::string type_prefix = "", std::int64_t site = -1);

  /// Park `load` CPUs of competing work on `host` for the window — slows
  /// running tasks (the quantum execution model re-reads load) and, past
  /// the overload threshold, gets them terminated and rescheduled.
  FaultPlan& slow(HostRef host, common::SimTime at,
                  common::SimDuration duration, double load);

  /// Mute the monitor daemon of one host for the window.
  FaultPlan& stale_host(HostRef host, common::SimTime at,
                        common::SimDuration duration);
  /// Mute every monitor daemon of a site for the window.
  FaultPlan& stale_site(std::int64_t site, common::SimTime at,
                        common::SimDuration duration);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// First builder error, if any malformed event was added (the event is
  /// still recorded so the error message can point at it).
  [[nodiscard]] common::Status validate() const;

  /// Serialize to the text format (round-trips through parse).
  [[nodiscard]] std::string write() const;

  /// Parse the text format.  Errors carry the offending line number.
  static common::Expected<FaultPlan> parse(const std::string& text);

 private:
  void fail(std::string message);

  std::string name_;
  std::uint64_t seed_ = 1;
  std::vector<FaultEvent> events_;
  std::vector<std::string> errors_;
};

}  // namespace vdce::chaos
