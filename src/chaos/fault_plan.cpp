#include "chaos/fault_plan.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace vdce::chaos {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHostCrash: return "crash";
    case FaultKind::kLinkDegrade: return "degrade";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kMessageLoss: return "loss";
    case FaultKind::kLoadSpike: return "slow";
    case FaultKind::kStaleMonitor: return "stale";
  }
  return "unknown";
}

void FaultPlan::fail(std::string message) {
  errors_.push_back(std::move(message));
}

common::Status FaultPlan::validate() const {
  if (errors_.empty()) return common::Status::success();
  return common::Error{common::ErrorCode::kInvalidArgument,
                       "fault plan '" + name_ + "': " + errors_.front()};
}

FaultPlan& FaultPlan::crash(HostRef host, common::SimTime at,
                            common::SimDuration down_for) {
  FaultEvent e;
  e.kind = FaultKind::kHostCrash;
  e.at = at;
  e.duration = down_for;
  e.host = std::move(host);
  if (e.host.empty()) fail("crash: host reference is empty");
  if (at < 0.0 || down_for < 0.0) fail("crash: negative time");
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::degrade(std::int64_t site_a, std::int64_t site_b,
                              common::SimTime at, common::SimDuration duration,
                              double latency_x, double bandwidth_x) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.at = at;
  e.duration = duration;
  e.site_a = site_a;
  e.site_b = site_b;
  e.latency_x = latency_x;
  e.bandwidth_x = bandwidth_x;
  if (site_a < 0 || site_b < 0) fail("degrade: negative site id");
  if (duration <= 0.0) fail("degrade: duration must be positive");
  if (latency_x < 1.0 || bandwidth_x <= 0.0 || bandwidth_x > 1.0) {
    fail("degrade: latency_x must be >= 1 and bandwidth_x in (0, 1]");
  }
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition(std::int64_t site_a, std::int64_t site_b,
                                common::SimTime at,
                                common::SimDuration duration) {
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.at = at;
  e.duration = duration;
  e.site_a = site_a;
  e.site_b = site_b;
  if (site_a < 0 || site_b < 0) fail("partition: negative site id");
  if (site_a == site_b) fail("partition: sites must differ");
  if (duration <= 0.0) fail("partition: duration must be positive");
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::loss(double rate, common::SimTime at,
                           common::SimDuration duration,
                           std::string type_prefix, std::int64_t site) {
  FaultEvent e;
  e.kind = FaultKind::kMessageLoss;
  e.at = at;
  e.duration = duration;
  e.rate = rate;
  e.type_prefix = std::move(type_prefix);
  e.site_a = site;
  if (rate <= 0.0 || rate > 1.0) fail("loss: rate must be in (0, 1]");
  if (duration <= 0.0) fail("loss: duration must be positive");
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::slow(HostRef host, common::SimTime at,
                           common::SimDuration duration, double load) {
  FaultEvent e;
  e.kind = FaultKind::kLoadSpike;
  e.at = at;
  e.duration = duration;
  e.host = std::move(host);
  e.load = load;
  if (e.host.empty()) fail("slow: host reference is empty");
  if (duration <= 0.0) fail("slow: duration must be positive");
  if (load <= 0.0) fail("slow: load must be positive");
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::stale_host(HostRef host, common::SimTime at,
                                 common::SimDuration duration) {
  FaultEvent e;
  e.kind = FaultKind::kStaleMonitor;
  e.at = at;
  e.duration = duration;
  e.host = std::move(host);
  if (e.host.empty()) fail("stale: host reference is empty");
  if (duration <= 0.0) fail("stale: duration must be positive");
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::stale_site(std::int64_t site, common::SimTime at,
                                 common::SimDuration duration) {
  FaultEvent e;
  e.kind = FaultKind::kStaleMonitor;
  e.at = at;
  e.duration = duration;
  e.site_a = site;
  if (site < 0) fail("stale: negative site id");
  if (duration <= 0.0) fail("stale: duration must be positive");
  events_.push_back(std::move(e));
  return *this;
}

// ---- text format -----------------------------------------------------------

namespace {

std::string quoted(const std::string& text) { return "\"" + text + "\""; }

std::string num(double v) {
  std::string s = common::format_double(v, 6);
  // Canonical form: strip trailing zeros (but keep one digit after '.').
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string host_ref(const HostRef& ref) {
  return ref.name.empty() ? std::to_string(ref.id) : quoted(ref.name);
}

/// Tokenize one line, honouring double quotes; '#' starts a comment.
common::Expected<std::vector<std::string>> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  auto flush = [&] {
    if (!current.empty() || was_quoted) tokens.push_back(current);
    current.clear();
    was_quoted = false;
  };
  for (char c : line) {
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      was_quoted = true;
    } else if (c == '#') {
      break;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      flush();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    return common::Error{common::ErrorCode::kParseError, "unterminated quote"};
  }
  flush();
  return tokens;
}

}  // namespace

std::string FaultPlan::write() const {
  std::string out = "faultplan " + quoted(name_) + "\n";
  out += "seed " + std::to_string(seed_) + "\n\n";
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kHostCrash:
        out += "crash host " + host_ref(e.host) + " at " + num(e.at);
        if (e.duration > 0.0) out += " down_for " + num(e.duration);
        break;
      case FaultKind::kLinkDegrade:
        out += "degrade site " + std::to_string(e.site_a) + " site " +
               std::to_string(e.site_b) + " at " + num(e.at) + " for " +
               num(e.duration) + " latency_x " + num(e.latency_x) +
               " bandwidth_x " + num(e.bandwidth_x);
        break;
      case FaultKind::kPartition:
        out += "partition site " + std::to_string(e.site_a) + " site " +
               std::to_string(e.site_b) + " at " + num(e.at) + " for " +
               num(e.duration);
        break;
      case FaultKind::kMessageLoss:
        out += "loss rate " + num(e.rate) + " at " + num(e.at) + " for " +
               num(e.duration);
        if (!e.type_prefix.empty()) out += " type " + quoted(e.type_prefix);
        if (e.site_a >= 0) out += " site " + std::to_string(e.site_a);
        break;
      case FaultKind::kLoadSpike:
        out += "slow host " + host_ref(e.host) + " at " + num(e.at) + " for " +
               num(e.duration) + " load " + num(e.load);
        break;
      case FaultKind::kStaleMonitor:
        if (!e.host.empty()) {
          out += "stale host " + host_ref(e.host);
        } else {
          out += "stale site " + std::to_string(e.site_a);
        }
        out += " at " + num(e.at) + " for " + num(e.duration);
        break;
    }
    out += "\n";
  }
  return out;
}

common::Expected<FaultPlan> FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  int line_number = 0;
  auto parse_error = [&](const std::string& message) {
    return common::Error{common::ErrorCode::kParseError,
                         "fault plan line " + std::to_string(line_number) +
                             ": " + message};
  };

  for (std::string_view rest = text; !rest.empty();) {
    ++line_number;
    std::size_t eol = rest.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 1);

    auto tokens = tokenize(line);
    if (!tokens) return parse_error(tokens.error().message);
    if (tokens->empty()) continue;
    const std::vector<std::string>& t = *tokens;
    const std::string& verb = t[0];

    // Key/value pairs after the verb; the leading positional tokens of each
    // verb are also keyed ("host", "site", "rate"), so one map serves all.
    auto value_of = [&](std::string_view key,
                        int nth = 0) -> const std::string* {
      int seen = 0;
      for (std::size_t i = 1; i + 1 < t.size(); i += 2) {
        if (t[i] == key) {
          if (seen == nth) return &t[i + 1];
          ++seen;
        }
      }
      return nullptr;
    };
    if (verb != "faultplan" && verb != "seed" && (t.size() % 2) != 1) {
      return parse_error("expected '" + verb + " key value ...' pairs");
    }
    auto number = [&](std::string_view key,
                      int nth = 0) -> common::Expected<double> {
      const std::string* v = value_of(key, nth);
      if (v == nullptr) {
        return common::Error{common::ErrorCode::kParseError,
                             "missing '" + std::string(key) + "'"};
      }
      return common::parse_double(*v);
    };
    auto host_of = [&]() -> common::Expected<HostRef> {
      const std::string* v = value_of("host");
      if (v == nullptr) {
        return common::Error{common::ErrorCode::kParseError, "missing 'host'"};
      }
      if (auto id = common::parse_uint(*v)) {
        return HostRef(common::HostId(static_cast<std::uint32_t>(*id)));
      }
      return HostRef(*v);
    };

    if (verb == "faultplan") {
      if (t.size() != 2) return parse_error("expected: faultplan \"name\"");
      plan.name(t[1]);
    } else if (verb == "seed") {
      if (t.size() != 2) return parse_error("expected: seed <n>");
      auto s = common::parse_uint(t[1]);
      if (!s) return parse_error("bad seed: " + t[1]);
      plan.seed(*s);
    } else if (verb == "crash") {
      auto host = host_of();
      auto at = number("at");
      if (!host) return parse_error(host.error().message);
      if (!at) return parse_error(at.error().message);
      double down_for = 0.0;
      if (value_of("down_for") != nullptr) {
        auto d = number("down_for");
        if (!d) return parse_error(d.error().message);
        down_for = *d;
      }
      plan.crash(std::move(*host), *at, down_for);
    } else if (verb == "degrade") {
      auto a = number("site", 0);
      auto b = number("site", 1);
      auto at = number("at");
      auto dur = number("for");
      auto lat = number("latency_x");
      auto bw = number("bandwidth_x");
      for (const auto* v :
           {&a, &b, &at, &dur, &lat, &bw}) {
        if (!*v) return parse_error(v->error().message);
      }
      plan.degrade(static_cast<std::int64_t>(*a),
                   static_cast<std::int64_t>(*b), *at, *dur, *lat, *bw);
    } else if (verb == "partition") {
      auto a = number("site", 0);
      auto b = number("site", 1);
      auto at = number("at");
      auto dur = number("for");
      for (const auto* v : {&a, &b, &at, &dur}) {
        if (!*v) return parse_error(v->error().message);
      }
      plan.partition(static_cast<std::int64_t>(*a),
                     static_cast<std::int64_t>(*b), *at, *dur);
    } else if (verb == "loss") {
      auto rate = number("rate");
      auto at = number("at");
      auto dur = number("for");
      for (const auto* v : {&rate, &at, &dur}) {
        if (!*v) return parse_error(v->error().message);
      }
      std::string type_prefix;
      if (const std::string* v = value_of("type")) type_prefix = *v;
      std::int64_t site = -1;
      if (value_of("site") != nullptr) {
        auto s = number("site");
        if (!s) return parse_error(s.error().message);
        site = static_cast<std::int64_t>(*s);
      }
      plan.loss(*rate, *at, *dur, std::move(type_prefix), site);
    } else if (verb == "slow") {
      auto host = host_of();
      auto at = number("at");
      auto dur = number("for");
      auto load = number("load");
      if (!host) return parse_error(host.error().message);
      for (const auto* v : {&at, &dur, &load}) {
        if (!*v) return parse_error(v->error().message);
      }
      plan.slow(std::move(*host), *at, *dur, *load);
    } else if (verb == "stale") {
      auto at = number("at");
      auto dur = number("for");
      for (const auto* v : {&at, &dur}) {
        if (!*v) return parse_error(v->error().message);
      }
      if (value_of("host") != nullptr) {
        auto host = host_of();
        if (!host) return parse_error(host.error().message);
        plan.stale_host(std::move(*host), *at, *dur);
      } else if (value_of("site") != nullptr) {
        auto s = number("site");
        if (!s) return parse_error(s.error().message);
        plan.stale_site(static_cast<std::int64_t>(*s), *at, *dur);
      } else {
        return parse_error("stale: expected 'host' or 'site'");
      }
    } else {
      return parse_error("unknown verb '" + verb + "'");
    }
  }
  if (auto valid = plan.validate(); !valid.ok()) {
    return common::Error{common::ErrorCode::kParseError,
                         valid.error().message};
  }
  return plan;
}

}  // namespace vdce::chaos
