#include "sched/schedule_builder.hpp"

#include <algorithm>
#include <cassert>

namespace vdce::sched {

common::SimTime ScheduleBuilder::data_ready(afg::TaskId task,
                                            common::HostId candidate,
                                            common::HostId staging_from) const {
  common::SimTime ready = 0.0;
  for (const afg::Edge& e : graph_.in_edges(task)) {
    auto it = assignments_.find(e.from);
    assert(it != assignments_.end() && "parent must be placed first");
    const Assignment& parent = it->second;
    double bytes = graph_.edge_bytes(e);
    ready = std::max(ready,
                     parent.est_finish + topology_.transfer_time(
                                             parent.primary_host(), candidate,
                                             bytes));
  }
  if (staging_from.valid()) {
    for (const afg::FileSpec& f : graph_.task(task).props.inputs) {
      if (!f.dataflow && !f.path.empty()) {
        ready = std::max(ready, topology_.transfer_time(staging_from,
                                                        candidate,
                                                        f.size_bytes));
      }
    }
  }
  return ready;
}

common::SimTime ScheduleBuilder::host_free(common::HostId host) const {
  auto it = host_free_.find(host);
  return it == host_free_.end() ? 0.0 : it->second;
}

common::SimTime ScheduleBuilder::earliest_start(
    afg::TaskId task, const std::vector<common::HostId>& hosts,
    common::HostId staging_from) const {
  assert(!hosts.empty());
  common::SimTime start = data_ready(task, hosts.front(), staging_from);
  for (common::HostId h : hosts) start = std::max(start, host_free(h));
  return start;
}

const Assignment& ScheduleBuilder::place(afg::TaskId task, common::SiteId site,
                                         std::vector<common::HostId> hosts,
                                         common::SimDuration predicted,
                                         common::HostId staging_from) {
  assert(!hosts.empty());
  assert(!placed(task));
  Assignment a;
  a.task = task;
  a.site = site;
  a.hosts = std::move(hosts);
  a.predicted_time = predicted;
  a.est_start = earliest_start(task, a.hosts, staging_from);
  a.est_finish = a.est_start + predicted;
  for (common::HostId h : a.hosts) host_free_[h] = a.est_finish;
  makespan_ = std::max(makespan_, a.est_finish);
  return assignments_.emplace(task, std::move(a)).first->second;
}

const Assignment& ScheduleBuilder::place_at(afg::TaskId task,
                                            common::SiteId site,
                                            std::vector<common::HostId> hosts,
                                            common::SimDuration predicted,
                                            common::SimTime start) {
  assert(!hosts.empty());
  assert(!placed(task));
  Assignment a;
  a.task = task;
  a.site = site;
  a.hosts = std::move(hosts);
  a.predicted_time = predicted;
  a.est_start = start;
  a.est_finish = start + predicted;
  for (common::HostId h : a.hosts) {
    host_free_[h] = std::max(host_free(h), a.est_finish);
  }
  makespan_ = std::max(makespan_, a.est_finish);
  return assignments_.emplace(task, std::move(a)).first->second;
}

bool ScheduleBuilder::placed(afg::TaskId task) const {
  return assignments_.contains(task);
}

const Assignment& ScheduleBuilder::assignment(afg::TaskId task) const {
  auto it = assignments_.find(task);
  assert(it != assignments_.end());
  return it->second;
}

ResourceAllocationTable ScheduleBuilder::build(std::string app_name,
                                               std::string scheduler_name) const {
  ResourceAllocationTable table;
  table.app_name = std::move(app_name);
  table.scheduler_name = std::move(scheduler_name);
  table.schedule_length = makespan_;
  table.assignments.reserve(assignments_.size());
  for (const afg::TaskNode& t : graph_.tasks()) {
    auto it = assignments_.find(t.id);
    if (it != assignments_.end()) table.assignments.push_back(it->second);
  }
  return table;
}

}  // namespace vdce::sched
