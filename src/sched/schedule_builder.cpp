#include "sched/schedule_builder.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace vdce::sched {

ScheduleBuilder::ScheduleBuilder(const afg::Afg& graph,
                                 const net::Topology& topology)
    : graph_(graph), topology_(topology) {
  assignments_.resize(graph.task_count());
  task_placed_.assign(graph.task_count(), 0);
  host_free_.assign(topology.host_count(), 0.0);
  ready_memo_.resize(graph.task_count());
}

common::SimDuration ScheduleBuilder::transfer(common::HostId from,
                                              common::HostId to,
                                              double bytes) const {
  // Equal (link_key, bytes) keys guarantee the identical LinkSpec and hence
  // the bit-identical latency + bytes/bandwidth result, so caching is exact.
  const TransferKey key{topology_.link_key(from, to),
                        std::bit_cast<std::uint64_t>(bytes)};
  auto it = transfer_memo_.find(key);
  if (it != transfer_memo_.end()) return it->second;
  common::SimDuration t = topology_.transfer_time(from, to, bytes);
  transfer_memo_.emplace(key, t);
  return t;
}

common::SimTime ScheduleBuilder::data_ready_exact(
    afg::TaskId task, common::HostId candidate,
    common::HostId staging_from) const {
  common::SimTime ready = 0.0;
  for (std::uint32_t idx : graph_.in_edge_ids(task)) {
    const afg::Edge& e = graph_.edge(idx);
    assert(task_placed_[e.from.value()] && "parent must be placed first");
    const Assignment& parent = assignments_[e.from.value()];
    double bytes = graph_.edge_bytes(e);
    ready = std::max(ready,
                     parent.est_finish + transfer(parent.primary_host(),
                                                  candidate, bytes));
  }
  if (staging_from.valid()) {
    for (const afg::FileSpec& f : graph_.task(task).props.inputs) {
      if (!f.dataflow && !f.path.empty()) {
        ready = std::max(ready, transfer(staging_from, candidate,
                                         f.size_bytes));
      }
    }
  }
  return ready;
}

common::SimTime ScheduleBuilder::data_ready(afg::TaskId task,
                                            common::HostId candidate,
                                            common::HostId staging_from) const {
  ReadyMemo& memo = ready_memo_[task.value()];
  if (!memo.init || memo.staging != staging_from) {
    memo.init = true;
    memo.staging = staging_from;
    memo.special_hosts.clear();
    memo.by_site.assign(topology_.site_count(), -1.0);
    // Hosts whose loopback link makes data_ready differ from their site's
    // shared value: the parents' primary hosts, and the staging server when
    // a staging transfer applies.
    for (std::uint32_t idx : graph_.in_edge_ids(task)) {
      const afg::Edge& e = graph_.edge(idx);
      assert(task_placed_[e.from.value()] && "parent must be placed first");
      common::HostId p = assignments_[e.from.value()].primary_host();
      if (std::find(memo.special_hosts.begin(), memo.special_hosts.end(), p) ==
          memo.special_hosts.end()) {
        memo.special_hosts.push_back(p);
      }
    }
    if (staging_from.valid()) {
      for (const afg::FileSpec& f : graph_.task(task).props.inputs) {
        if (!f.dataflow && !f.path.empty()) {
          if (std::find(memo.special_hosts.begin(), memo.special_hosts.end(),
                        staging_from) == memo.special_hosts.end()) {
            memo.special_hosts.push_back(staging_from);
          }
          break;
        }
      }
    }
  }
  if (std::find(memo.special_hosts.begin(), memo.special_hosts.end(),
                candidate) != memo.special_hosts.end()) {
    return data_ready_exact(task, candidate, staging_from);
  }
  common::SimTime& cached =
      memo.by_site[topology_.host(candidate).site.value()];
  if (cached < 0.0) cached = data_ready_exact(task, candidate, staging_from);
  return cached;
}

common::SimTime ScheduleBuilder::host_free(common::HostId host) const {
  return host.value() < host_free_.size() ? host_free_[host.value()] : 0.0;
}

void ScheduleBuilder::touch_host(common::HostId host) {
  if (host.value() >= host_free_.size()) {
    host_free_.resize(host.value() + 1, 0.0);
  }
}

common::SimTime ScheduleBuilder::earliest_start(
    afg::TaskId task, const std::vector<common::HostId>& hosts,
    common::HostId staging_from) const {
  assert(!hosts.empty());
  common::SimTime start = data_ready(task, hosts.front(), staging_from);
  for (common::HostId h : hosts) start = std::max(start, host_free(h));
  return start;
}

common::SimTime ScheduleBuilder::earliest_start(
    afg::TaskId task, common::HostId host, common::HostId staging_from) const {
  return std::max(data_ready(task, host, staging_from), host_free(host));
}

const Assignment& ScheduleBuilder::place(afg::TaskId task, common::SiteId site,
                                         std::vector<common::HostId> hosts,
                                         common::SimDuration predicted,
                                         common::HostId staging_from) {
  assert(!hosts.empty());
  assert(!placed(task));
  Assignment a;
  a.task = task;
  a.site = site;
  a.hosts = std::move(hosts);
  a.predicted_time = predicted;
  a.est_start = earliest_start(task, a.hosts, staging_from);
  a.est_finish = a.est_start + predicted;
  for (common::HostId h : a.hosts) {
    touch_host(h);
    host_free_[h.value()] = a.est_finish;
  }
  makespan_ = std::max(makespan_, a.est_finish);
  assignments_[task.value()] = std::move(a);
  task_placed_[task.value()] = 1;
  ++placed_count_;
  return assignments_[task.value()];
}

const Assignment& ScheduleBuilder::place_at(afg::TaskId task,
                                            common::SiteId site,
                                            std::vector<common::HostId> hosts,
                                            common::SimDuration predicted,
                                            common::SimTime start) {
  assert(!hosts.empty());
  assert(!placed(task));
  Assignment a;
  a.task = task;
  a.site = site;
  a.hosts = std::move(hosts);
  a.predicted_time = predicted;
  a.est_start = start;
  a.est_finish = start + predicted;
  for (common::HostId h : a.hosts) {
    touch_host(h);
    host_free_[h.value()] = std::max(host_free_[h.value()], a.est_finish);
  }
  makespan_ = std::max(makespan_, a.est_finish);
  assignments_[task.value()] = std::move(a);
  task_placed_[task.value()] = 1;
  ++placed_count_;
  return assignments_[task.value()];
}

bool ScheduleBuilder::placed(afg::TaskId task) const {
  return task.value() < task_placed_.size() &&
         task_placed_[task.value()] != 0;
}

const Assignment& ScheduleBuilder::assignment(afg::TaskId task) const {
  assert(placed(task));
  return assignments_[task.value()];
}

ResourceAllocationTable ScheduleBuilder::build(std::string app_name,
                                               std::string scheduler_name) const {
  ResourceAllocationTable table;
  table.app_name = std::move(app_name);
  table.scheduler_name = std::move(scheduler_name);
  table.schedule_length = makespan_;
  table.assignments.reserve(placed_count_);
  for (const afg::TaskNode& t : graph_.tasks()) {
    if (task_placed_[t.id.value()]) {
      table.assignments.push_back(assignments_[t.id.value()]);
    }
  }
  return table;
}

}  // namespace vdce::sched
