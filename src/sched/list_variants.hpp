// List-scheduling variants for the strategy-sensitivity plane
// (docs/SCHEDULING.md, ROADMAP item 5 / Beránek et al., arXiv 2204.07211).
//
// The VDCE scheduler and HEFT are two points in the classic list-scheduling
// design space (which rank orders the ready list? what does placement
// minimize?).  These variants fill in the neighbouring points so the
// strategy × staleness sensitivity grid (bench_strategies) can show how the
// *family* degrades under imperfect resource information, not just one
// member:
//
//  * BLevelScheduler ("b-level") — rank by bottom level (mean execution +
//    communication to an exit node: HEFT's upward rank), placement by
//    earliest finish over all feasible machines *without* HEFT's
//    insertion — isolates the value of slot insertion.
//  * TLevelScheduler ("t-level") — rank by smallest top level (longest
//    mean path from an entry node, exclusive of the task itself): tasks
//    that can start earliest go first, the ASAP companion to b-level.
//  * WorkStealingScheduler ("work-stealing") — idle-worker pull: the
//    highest-ranked ready task is stolen by whichever feasible machine can
//    *start* it earliest, regardless of speed.  Models decentralized
//    worker-pull systems where placement is availability-driven and
//    speed-oblivious; the gap to b-level measures what prediction buys.
//
// MaxMinScheduler ("max-min", baselines.hpp) completes the set on the batch
// side.  All variants share ScheduleBuilder bookkeeping and the Fig. 3
// group rule for parallel tasks, so schedule lengths are directly
// comparable with every other strategy.
#pragma once

#include <string>

#include "sched/host_selection.hpp"
#include "sched/policy.hpp"
#include "sched/support.hpp"

namespace vdce::sched {

class BLevelScheduler final : public Scheduler {
 public:
  explicit BLevelScheduler(SchedulingPolicy policy = {}) : policy_(policy) {}
  [[nodiscard]] std::string name() const override { return "b-level"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;

 private:
  SchedulingPolicy policy_;
};

class TLevelScheduler final : public Scheduler {
 public:
  explicit TLevelScheduler(SchedulingPolicy policy = {}) : policy_(policy) {}
  [[nodiscard]] std::string name() const override { return "t-level"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;

 private:
  SchedulingPolicy policy_;
};

class WorkStealingScheduler final : public Scheduler {
 public:
  explicit WorkStealingScheduler(SchedulingPolicy policy = {})
      : policy_(policy) {}
  [[nodiscard]] std::string name() const override { return "work-stealing"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;

 private:
  SchedulingPolicy policy_;
};

}  // namespace vdce::sched
