#include "sched/support.hpp"

#include "tasklib/registry.hpp"

namespace vdce::sched {

common::Expected<db::TaskPerfRecord> resolve_perf(
    const afg::TaskNode& node, const db::TaskPerformanceDb& database) {
  auto rec = database.find(node.task_name);
  if (rec) return rec;
  auto mflop = tasklib::parse_synthetic_mflop(node.task_name);
  if (mflop) {
    db::TaskPerfRecord synthetic;
    synthetic.task_name = node.task_name;
    synthetic.computation_mflop = *mflop;
    synthetic.communication_bytes = 1e5;
    synthetic.required_memory_mb = 8.0;
    synthetic.base_exec_time = *mflop / tasklib::TaskRegistry::kBaseProcessorMflops;
    synthetic.parallel_fraction = 0.9;
    return synthetic;
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "no performance record for task '" + node.task_name +
                           "' (instance " + node.instance_name + ")"};
}

common::Expected<common::SimDuration> base_cost(
    const afg::TaskNode& node, const db::TaskPerformanceDb& database) {
  auto rec = resolve_perf(node, database);
  if (!rec) return rec.error();
  return rec->base_exec_time;
}

}  // namespace vdce::sched
