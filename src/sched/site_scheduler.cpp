#include "sched/site_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "afg/levels.hpp"

namespace vdce::sched {

namespace {

/// Candidate placement at one site with its evaluated objective and the
/// timing that placing it there would produce.
struct SiteCandidate {
  common::SiteId site;
  std::vector<common::HostId> hosts;
  common::SimDuration predicted = 0.0;
  double objective = 0.0;
  bool valid = false;
};

/// Fig. 2's Time_total for the literal paper objective: sum of inter-site
/// transfer times for the task's dataflow inputs plus the site's bid.
double paper_objective(const afg::Afg& graph, afg::TaskId task,
                       common::SiteId candidate_site,
                       const ScheduleBuilder& builder,
                       const net::Topology& topology, double predicted) {
  double transfer = 0.0;
  // in_edge_ids preserves edge insertion order, so this sum accumulates in
  // exactly the order the edge-list scan used — bit-identical totals.
  for (std::uint32_t idx : graph.in_edge_ids(task)) {
    const afg::Edge& e = graph.edge(idx);
    const Assignment& parent = builder.assignment(e.from);
    transfer += topology.site_transfer_time(parent.site, candidate_site,
                                            graph.edge_bytes(e));
  }
  return transfer + predicted;
}

}  // namespace

std::vector<common::SiteId> candidate_site_set(
    const SchedulerContext& context, const SchedulingPolicy& options) {
  std::vector<common::SiteId> sites{context.local_site};
  if (options.access != db::AccessDomain::kLocalSite) {
    std::size_t k = options.access == db::AccessDomain::kGlobal
                        ? context.k_nearest
                        : std::min(context.k_nearest, std::size_t{2});
    for (common::SiteId s :
         context.topology->nearest_sites(context.local_site, k)) {
      sites.push_back(s);
    }
  }
  return sites;
}

common::Expected<ResourceAllocationTable> assign_with_outputs(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<HostSelectionOutput>& outputs,
    const SchedulingPolicy& options, const std::string& scheduler_name) {
  if (context.topology == nullptr || context.predictor == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "scheduler context lacks a topology or predictor"};
  }
  if (outputs.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "no host-selection outputs supplied"};
  }
  if (outputs.front().site != context.local_site) {
    return common::Error{
        common::ErrorCode::kInvalidArgument,
        "host-selection outputs must lead with the local site"};
  }

  const net::Topology& topology = *context.topology;
  const db::SiteRepository& local_repo = context.repo(context.local_site);

  // Graceful degradation under stale monitoring data: a prediction built on
  // an old sample is optimistic about the host's current load, so inflate
  // it — fresh information wins and muted monitors stop attracting work.
  std::size_t stale_hosts_seen = 0;
  auto staleness = [&](const db::ResourceRecord& record) {
    if (options.stale_after <= 0.0) return 1.0;
    if (context.now - record.last_sample_time() <= options.stale_after) {
      return 1.0;
    }
    ++stale_hosts_seen;
    return options.stale_penalty;
  };

  // --- priorities: level of each node, computed before scheduling (§3) ---
  common::Error cost_error{common::ErrorCode::kInternal, ""};
  bool cost_failed = false;
  auto cost_fn = [&](const afg::TaskNode& node) {
    auto c = base_cost(node, local_repo.tasks());
    if (!c) {
      cost_failed = true;
      cost_error = c.error();
      return 0.0;
    }
    return *c;
  };
  common::Expected<afg::Levels> levels =
      common::Error{common::ErrorCode::kInternal, "unset"};
  switch (options.priority) {
    case PriorityMode::kPaperLevels:
      levels = afg::compute_levels(graph, cost_fn);
      break;
    case PriorityMode::kCommLevels: {
      // Edge cost: the mean of LAN and default-WAN transfer time for the
      // edge volume — the representative figure a site scheduler can know
      // before placement.
      net::LinkSpec lan = topology.site(context.local_site).lan;
      net::LinkSpec wan = topology.default_wan();
      levels = afg::compute_levels_with_comm(
          graph, cost_fn, [&](const afg::Edge& e) {
            double bytes = graph.edge_bytes(e);
            return 0.5 * (lan.transfer_time(bytes) + wan.transfer_time(bytes));
          });
      break;
    }
    case PriorityMode::kFifo: {
      // Degenerate levels: all zero, so the ready-set tiebreak (task id)
      // decides — plain FIFO over the ready list.
      afg::Levels fifo;
      fifo.level.assign(graph.task_count(), 0.0);
      levels = fifo;
      break;
    }
  }
  if (cost_failed) return cost_error;
  if (!levels) return levels.error();

  // --- Fig. 2 steps 6-7: ready-list scheduling by level priority ---------
  ScheduleBuilder builder(graph, topology);
  // Incremental heap over (level desc, id asc) plus unplaced-unique-parent
  // counters: a task enters the queue exactly once, the moment its last
  // parent is placed.
  ReadyQueue ready;
  std::vector<std::size_t> waiting(graph.task_count(), 0);
  for (const afg::TaskNode& t : graph.tasks()) {
    waiting[t.id.value()] = graph.parents(t.id).size();
  }
  for (afg::TaskId t : graph.entry_tasks()) ready.push(t, levels->of(t));

  const common::HostId staging = topology.site(context.local_site).server;
  std::size_t placed = 0;
  std::size_t candidates_evaluated = 0;

  // Multi-tenant co-scheduling (docs/TENANCY.md): machines held by another
  // in-flight application are invisible to this assignment, and the
  // remaining candidates are re-ranked by the unchanged objective.  With no
  // foreign reservations `reserved` is constant-false and every decision
  // below is bit-identical to the reservation-free scheduler.
  const bool contention_active =
      context.reservations != nullptr &&
      context.reservations->any_other(context.reserving_app);
  auto reserved = [&](common::HostId h) {
    return contention_active &&
           context.reservations->reserved_by_other(h, context.reserving_app);
  };
  std::size_t contention_skips = 0;
  std::size_t contention_reranked = 0;

  // Advance reservations (docs/RESERVATIONS.md): place around committed
  // [start, end) windows.  `blocked(h)` is the duration-free conservative
  // test (active foreign windows always block; pending ones block unless
  // conservative backfill can later prove safety); `window_unsafe(h, f)`
  // adds the backfill check for candidates whose schedule-relative finish
  // estimate `f` is known.  With no committed windows both are constant
  // false and every decision is bit-identical to the window-free scheduler.
  const WindowTable* windows =
      (context.windows != nullptr && context.windows->has_windows())
          ? context.windows
          : nullptr;
  std::size_t window_skips = 0;
  auto window_unsafe = [&](common::HostId h, double finish_rel) {
    if (windows == nullptr) return false;
    if (context.held_booking != 0) {
      // The owner of a committed booking schedules inside its window: only
      // the booked machines are admissible for it.
      const Window* own = windows->window(context.held_booking);
      if (own != nullptr && !own->contains_host(h)) {
        ++window_skips;
        return true;
      }
    }
    const common::SimTime est_finish =
        finish_rel < 0.0 ? -1.0
                         : context.now + options.backfill_guard * finish_rel;
    if (windows->window_blocked(h, context.reserving_app, context.now,
                                est_finish, options.backfill)) {
      ++window_skips;
      return true;
    }
    return false;
  };
  auto blocked = [&](common::HostId h) {
    return reserved(h) || window_unsafe(h, -1.0);
  };

  while (!ready.empty()) {
    // Highest level first; ties by id.
    afg::TaskId task = ready.pop();

    const afg::TaskNode& node = graph.task(task);
    auto perf = resolve_perf(node, local_repo.tasks());
    if (!perf) return perf.error();

    const bool no_input_case =
        graph.parents(task).empty() || !graph.requires_input(task);

    SiteCandidate best;
    for (const HostSelectionOutput& output : outputs) {
      const common::SiteId s = output.site;
      auto bid_it = output.bids.find(task);
      if (bid_it == output.bids.end()) continue;  // site did not bid

      SiteCandidate cand;
      cand.site = s;
      cand.valid = true;
      ++candidates_evaluated;

      // Ranked feasible machines of this site: reuse the cached refs when
      // the output carries them (repository state cannot have changed since
      // run()), and only recompute for outputs rebuilt without the cache.
      // Filled lazily — the pure paper-objective path never touches it.
      const bool cached = output.ranked.size() == graph.task_count();
      std::vector<RankedHost> scratch;
      bool scratch_ready = false;
      auto ensure_ranked = [&] {
        if (!cached && !scratch_ready) {
          scratch = HostSelectionAlgorithm::feasible_hosts(
              node, *perf, s, context.repo(s), *context.predictor);
          scratch_ready = true;
        }
      };
      auto ranked_size = [&] {
        return cached ? output.ranked[task.value()].size() : scratch.size();
      };
      auto rec_of = [&](std::size_t i) -> const db::ResourceRecord& {
        return cached ? output.host_pool[output.ranked[task.value()][i].index]
                      : scratch[i].record;
      };
      auto predicted_of = [&](std::size_t i) {
        return cached ? output.ranked[task.value()][i].predicted
                      : scratch[i].predicted;
      };
      const auto need = node.props.mode == afg::ComputationMode::kParallel
                            ? static_cast<std::size_t>(node.props.num_nodes)
                            : std::size_t{1};

      if (options.objective == SiteObjective::kPaperObjective) {
        bool contended = false;
        for (common::HostId h : bid_it->second.hosts) {
          if (blocked(h)) {
            contended = true;
            break;
          }
        }
        if (!contended) {
          cand.hosts = bid_it->second.hosts;
          cand.predicted = bid_it->second.predicted;
        } else {
          // The site's bid machine is occupied by a concurrent application:
          // re-rank deterministically over the remaining feasible machines
          // (same (predicted, host-id) order Fig. 3 produced).
          ++contention_reranked;
          ensure_ranked();
          std::vector<db::ResourceRecord> group;
          for (std::size_t i = 0;
               i < ranked_size() && cand.hosts.size() < need; ++i) {
            if (reserved(rec_of(i).host)) {
              ++contention_skips;
              continue;
            }
            if (window_unsafe(rec_of(i).host, -1.0)) continue;
            cand.hosts.push_back(rec_of(i).host);
            group.push_back(rec_of(i));
            cand.predicted = predicted_of(i);  // last = slowest for need == 1
          }
          if (cand.hosts.size() < need) continue;  // site fully occupied
          if (need > 1) {
            auto predicted = context.predictor->predict(
                *perf, group, &context.repo(s).tasks());
            if (!predicted) continue;
            cand.predicted = *predicted;
          }
        }
        cand.objective =
            no_input_case
                ? cand.predicted
                : paper_objective(graph, task, s, builder, topology,
                                  cand.predicted);
      } else {
        // Availability-aware: re-rank this site's feasible machines by the
        // finish time they would actually yield given current occupancy.
        ensure_ranked();
        if (ranked_size() < need) continue;

        if (need == 1) {
          bool have = false;
          double best_finish = 0.0;
          common::HostId best_host;
          double best_predicted = 0.0;
          for (std::size_t i = 0; i < ranked_size(); ++i) {
            const db::ResourceRecord& rec = rec_of(i);
            if (reserved(rec.host)) {
              ++contention_skips;
              continue;
            }
            const double predicted = predicted_of(i) * staleness(rec);
            double finish =
                builder.earliest_start(task, rec.host, staging) + predicted;
            // Conservative backfill: the guarded finish estimate must land
            // before the machine's next committed window start.
            if (window_unsafe(rec.host, finish)) continue;
            if (!have || finish < best_finish) {
              have = true;
              best_finish = finish;
              best_host = rec.host;
              best_predicted = predicted;
            }
          }
          if (!have) continue;  // every feasible machine is occupied
          cand.hosts.assign(1, best_host);
          cand.predicted = best_predicted;
          cand.objective = best_finish;
        } else {
          // Parallel group: earliest-free machines among the fastest 2N
          // unreserved to balance speed against occupancy.
          struct PoolEntry {
            const db::ResourceRecord* record;
            double predicted;
          };
          std::vector<PoolEntry> pool;
          pool.reserve(std::min(ranked_size(), 2 * need));
          for (std::size_t i = 0;
               i < ranked_size() && pool.size() < 2 * need; ++i) {
            if (reserved(rec_of(i).host)) {
              ++contention_skips;
              continue;
            }
            // Parallel groups never backfill across a pending window: the
            // group's joint finish estimate is too coupled to prove the
            // no-delay invariant host by host.
            if (window_unsafe(rec_of(i).host, -1.0)) continue;
            pool.push_back(PoolEntry{&rec_of(i), predicted_of(i)});
          }
          if (pool.size() < need) continue;
          std::sort(pool.begin(), pool.end(),
                    [&](const PoolEntry& a, const PoolEntry& b) {
                      auto fa = builder.host_free(a.record->host);
                      auto fb = builder.host_free(b.record->host);
                      if (fa != fb) return fa < fb;
                      return a.predicted < b.predicted;
                    });
          std::vector<db::ResourceRecord> group;
          for (std::size_t i = 0; i < need; ++i) {
            group.push_back(*pool[i].record);
            cand.hosts.push_back(pool[i].record->host);
          }
          auto predicted = context.predictor->predict(*perf, group,
                                                      &context.repo(s).tasks());
          if (!predicted) continue;
          double penalty = 1.0;
          for (const db::ResourceRecord& r : group) {
            penalty = std::max(penalty, staleness(r));
          }
          cand.predicted = *predicted * penalty;
          cand.objective =
              builder.earliest_start(task, cand.hosts, staging) + cand.predicted;
        }
      }

      if (!best.valid || cand.objective < best.objective ||
          (cand.objective == best.objective && cand.site < best.site)) {
        best = std::move(cand);
      }
    }

    if (!best.valid) {
      if (contention_active) {
        return common::Error{
            common::ErrorCode::kNoFeasibleResource,
            "no site can run task " + node.instance_name +
                " (machines held by concurrent applications)"};
      }
      if (window_skips > 0) {
        return common::Error{
            common::ErrorCode::kNoFeasibleResource,
            "no site can run task " + node.instance_name +
                " (machines blocked by committed reservation windows)"};
      }
      return common::Error{common::ErrorCode::kNoFeasibleResource,
                           "no site can run task " + node.instance_name};
    }

    builder.place(task, best.site, best.hosts, best.predicted, staging);
    ++placed;

    // Children become ready once every parent is placed.
    for (afg::TaskId child : graph.children(task)) {
      if (--waiting[child.value()] == 0) {
        ready.push(child, levels->of(child));
      }
    }
  }

  if (placed != graph.task_count()) {
    return common::Error{common::ErrorCode::kInternal,
                         "scheduler placed " + std::to_string(placed) + " of " +
                             std::to_string(graph.task_count()) + " tasks"};
  }
  auto table = builder.build(graph.name(), scheduler_name);

  if (context.obs != nullptr) {
    if (context.obs->metrics_on()) {
      obs::MetricsRegistry& m = context.obs->metrics();
      m.counter("sched.assign.runs").add();
      m.counter("sched.assign.tasks_placed").add(placed);
      m.histogram("sched.assign.site_candidates_per_task")
          .add(static_cast<double>(candidates_evaluated) /
               static_cast<double>(placed));
      m.histogram("sched.schedule_length").add(table.schedule_length);
      if (stale_hosts_seen > 0) {
        m.counter("sched.stale_hosts_penalized").add(stale_hosts_seen);
      }
      if (contention_skips > 0) {
        m.counter("sched.contention.hosts_skipped").add(contention_skips);
      }
      if (contention_reranked > 0) {
        m.counter("sched.contention.bids_reranked").add(contention_reranked);
      }
      if (window_skips > 0) {
        m.counter("sched.windows.hosts_skipped").add(window_skips);
      }
    }
    if (context.obs->health_on() && contention_skips > 0) {
      obs::health::SeriesKey key;
      key.metric = obs::health::kContentionSkips;
      context.obs->health().observe_delta(
          key, context.now, static_cast<double>(contention_skips));
    }
    if (context.obs->trace_on()) {
      context.obs->trace().instant(
          "sched", "sched.assign", context.now, obs::kControlTrack,
          {obs::arg("scheduler", scheduler_name),
           obs::arg("tasks", std::uint64_t{placed}),
           obs::arg("sites", std::uint64_t{outputs.size()}),
           obs::arg("schedule_length", table.schedule_length)});
    }
  }
  return table;
}

common::Expected<ResourceAllocationTable> VdceSiteScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();

  const auto sites = candidate_site_set(context, options_);

  // Fig. 2 steps 3-5: host selection at every candidate site.  (The
  // distributed runtime performs this over the fabric; this synchronous
  // entry point calls each site's algorithm directly.)
  std::vector<HostSelectionOutput> outputs;
  for (common::SiteId s : sites) {
    auto out = HostSelectionAlgorithm::run(graph, s, context.repo(s),
                                           *context.predictor);
    if (!out) return out.error();
    outputs.push_back(std::move(*out));
  }
  return assign_with_outputs(graph, context, outputs, options_, name());
}

}  // namespace vdce::sched
