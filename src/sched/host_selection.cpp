#include "sched/host_selection.hpp"

#include <algorithm>

namespace vdce::sched {

std::vector<RankedRef> HostSelectionAlgorithm::rank_hosts(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    const std::vector<db::ResourceRecord>& pool, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  std::vector<RankedRef> out;

  // A task with no constraint entries anywhere is a library task assumed
  // installed on every host; otherwise only listed hosts qualify.
  const bool constrained = repo.constraints().constrains(node.task_name);

  for (std::uint32_t i = 0; i < pool.size(); ++i) {
    const db::ResourceRecord& rec = pool[i];
    if (!node.props.preferred_machine.empty() &&
        rec.host_name != node.props.preferred_machine) {
      continue;
    }
    if (!node.props.preferred_machine_type.empty() &&
        rec.machine_type != node.props.preferred_machine_type) {
      continue;
    }
    if (constrained && !repo.constraints().runnable_on(node.task_name, rec.host)) {
      continue;
    }
    auto predicted = predictor.predict(perf, rec, &repo.tasks());
    if (!predicted) continue;  // infeasible (memory) on this machine
    out.push_back(RankedRef{i, *predicted});
  }
  std::sort(out.begin(), out.end(),
            [&pool](const RankedRef& a, const RankedRef& b) {
              if (a.predicted != b.predicted) return a.predicted < b.predicted;
              return pool[a.index].host < pool[b.index].host;
            });
  return out;
}

std::vector<RankedHost> HostSelectionAlgorithm::feasible_hosts(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  const std::vector<db::ResourceRecord> pool =
      repo.resources().available_hosts(site);
  const std::vector<RankedRef> refs =
      rank_hosts(node, perf, pool, repo, predictor);
  std::vector<RankedHost> out;
  out.reserve(refs.size());
  for (const RankedRef& r : refs) {
    out.push_back(RankedHost{pool[r.index], r.predicted});
  }
  return out;
}

common::Expected<HostBid> HostSelectionAlgorithm::best_bid(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  auto ranked = feasible_hosts(node, perf, site, repo, predictor);
  const auto nodes_needed =
      node.props.mode == afg::ComputationMode::kParallel
          ? static_cast<std::size_t>(node.props.num_nodes)
          : std::size_t{1};
  if (ranked.size() < nodes_needed) {
    return common::Error{common::ErrorCode::kNoFeasibleResource,
                         "site " + std::to_string(site.value()) + " has " +
                             std::to_string(ranked.size()) +
                             " feasible hosts for " + node.instance_name +
                             ", needs " + std::to_string(nodes_needed)};
  }

  HostBid bid;
  bid.site = site;
  if (nodes_needed == 1) {
    bid.hosts.push_back(ranked.front().record.host);
    bid.predicted = ranked.front().predicted;
    return bid;
  }

  // Parallel task: the `num_nodes` individually fastest machines form the
  // group; the group prediction is gated by its slowest member.
  std::vector<db::ResourceRecord> group;
  for (std::size_t i = 0; i < nodes_needed; ++i) {
    group.push_back(ranked[i].record);
    bid.hosts.push_back(ranked[i].record.host);
  }
  auto predicted = predictor.predict(perf, group, &repo.tasks());
  if (!predicted) return predicted.error();
  bid.predicted = *predicted;
  return bid;
}

common::Expected<HostSelectionOutput> HostSelectionAlgorithm::run(
    const afg::Afg& graph, common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  HostSelectionOutput output;
  output.site = site;
  // One snapshot of the site's hosts for the whole run; every task's ranked
  // list is kept as indices into it so assign_with_outputs never recomputes
  // feasible_hosts.  Bids derived from the refs match best_bid exactly: the
  // ranking order and the parallel-group membership are the same.
  output.host_pool = repo.resources().available_hosts(site);
  output.ranked.resize(graph.task_count());
  for (const afg::TaskNode& node : graph.tasks()) {
    auto perf = resolve_perf(node, repo.tasks());
    if (!perf) return perf.error();  // unknown task is a caller error
    std::vector<RankedRef> refs =
        rank_hosts(node, *perf, output.host_pool, repo, predictor);
    const auto need = node.props.mode == afg::ComputationMode::kParallel
                          ? static_cast<std::size_t>(node.props.num_nodes)
                          : std::size_t{1};
    // No feasible machine here: this site simply does not bid for the task.
    if (refs.size() >= need) {
      HostBid bid;
      bid.site = site;
      if (need == 1) {
        bid.hosts.push_back(output.host_pool[refs.front().index].host);
        bid.predicted = refs.front().predicted;
        output.bids.emplace(node.id, std::move(bid));
      } else {
        // Parallel task: the `num_nodes` individually fastest machines form
        // the group; the group prediction is gated by its slowest member.
        std::vector<db::ResourceRecord> group;
        for (std::size_t i = 0; i < need; ++i) {
          group.push_back(output.host_pool[refs[i].index]);
          bid.hosts.push_back(group.back().host);
        }
        auto predicted = predictor.predict(*perf, group, &repo.tasks());
        if (predicted) {
          bid.predicted = *predicted;
          output.bids.emplace(node.id, std::move(bid));
        }
      }
    }
    output.ranked[node.id.value()] = std::move(refs);
  }
  return output;
}

}  // namespace vdce::sched
