#include "sched/host_selection.hpp"

#include <algorithm>

namespace vdce::sched {

std::vector<RankedHost> HostSelectionAlgorithm::feasible_hosts(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  std::vector<RankedHost> out;

  // A task with no constraint entries anywhere is a library task assumed
  // installed on every host; otherwise only listed hosts qualify.
  const bool constrained = !repo.constraints().hosts_for(node.task_name).empty();

  for (const db::ResourceRecord& rec : repo.resources().available_hosts(site)) {
    if (!node.props.preferred_machine.empty() &&
        rec.host_name != node.props.preferred_machine) {
      continue;
    }
    if (!node.props.preferred_machine_type.empty() &&
        rec.machine_type != node.props.preferred_machine_type) {
      continue;
    }
    if (constrained && !repo.constraints().runnable_on(node.task_name, rec.host)) {
      continue;
    }
    auto predicted = predictor.predict(perf, rec, &repo.tasks());
    if (!predicted) continue;  // infeasible (memory) on this machine
    out.push_back(RankedHost{rec, *predicted});
  }
  std::sort(out.begin(), out.end(), [](const RankedHost& a, const RankedHost& b) {
    if (a.predicted != b.predicted) return a.predicted < b.predicted;
    return a.record.host < b.record.host;
  });
  return out;
}

common::Expected<HostBid> HostSelectionAlgorithm::best_bid(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  auto ranked = feasible_hosts(node, perf, site, repo, predictor);
  const auto nodes_needed =
      node.props.mode == afg::ComputationMode::kParallel
          ? static_cast<std::size_t>(node.props.num_nodes)
          : std::size_t{1};
  if (ranked.size() < nodes_needed) {
    return common::Error{common::ErrorCode::kNoFeasibleResource,
                         "site " + std::to_string(site.value()) + " has " +
                             std::to_string(ranked.size()) +
                             " feasible hosts for " + node.instance_name +
                             ", needs " + std::to_string(nodes_needed)};
  }

  HostBid bid;
  bid.site = site;
  if (nodes_needed == 1) {
    bid.hosts.push_back(ranked.front().record.host);
    bid.predicted = ranked.front().predicted;
    return bid;
  }

  // Parallel task: the `num_nodes` individually fastest machines form the
  // group; the group prediction is gated by its slowest member.
  std::vector<db::ResourceRecord> group;
  for (std::size_t i = 0; i < nodes_needed; ++i) {
    group.push_back(ranked[i].record);
    bid.hosts.push_back(ranked[i].record.host);
  }
  auto predicted = predictor.predict(perf, group, &repo.tasks());
  if (!predicted) return predicted.error();
  bid.predicted = *predicted;
  return bid;
}

common::Expected<HostSelectionOutput> HostSelectionAlgorithm::run(
    const afg::Afg& graph, common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  HostSelectionOutput output;
  output.site = site;
  for (const afg::TaskNode& node : graph.tasks()) {
    auto perf = resolve_perf(node, repo.tasks());
    if (!perf) return perf.error();  // unknown task is a caller error
    auto bid = best_bid(node, *perf, site, repo, predictor);
    if (bid) output.bids.emplace(node.id, std::move(*bid));
    // No feasible machine here: this site simply does not bid for the task.
  }
  return output;
}

}  // namespace vdce::sched
