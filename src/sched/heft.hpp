// HEFT-style comparator scheduler.
//
// The paper's level priority uses computation costs only (§3); the
// literature it draws on (Kwok/Ahmad's dynamic critical path et al.)
// evolved into HEFT (Topcuoglu — the same first author — Hariri & Wu,
// 2002): upward rank including *communication* costs, plus insertion-based
// earliest-finish-time placement.  Implementing it here gives the ablation
// the E1 bench needs: how much of VDCE's gap to the achievable optimum is
// the computation-only level, and how much is the no-insertion placement.
//
// Rank:  rank(t) = w(t) + max over children (c(t,child) + rank(child)),
// with w(t) the mean predicted execution time over all feasible machines
// and c(e) the mean transfer time of the edge over representative links.
// Placement: for each task in rank order, choose the (machine, slot) with
// the earliest finish time, allowing insertion into idle gaps between
// already-scheduled tasks on a machine.
#pragma once

#include <string>

#include "sched/host_selection.hpp"
#include "sched/support.hpp"

namespace vdce::sched {

class HeftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "heft"; }

  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;
};

}  // namespace vdce::sched
