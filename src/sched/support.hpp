// Shared scheduler plumbing: the scheduling context (what every algorithm
// may consult), task-record resolution, and the common Scheduler interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "db/site_repository.hpp"
#include "econ/econ.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "predict/model.hpp"
#include "sched/reservations.hpp"
#include "sched/types.hpp"

namespace vdce::sched {

/// Everything a scheduling algorithm may read.  Repositories are indexed by
/// site id; every site in the topology must have one.  Algorithms consult
/// only the *database view* of resources — never topology ground truth —
/// because that is all a real Application Scheduler could see.
struct SchedulerContext {
  const net::Topology* topology = nullptr;
  std::vector<const db::SiteRepository*> repos;  ///< [site id] -> repository
  const predict::Predictor* predictor = nullptr;
  common::SiteId local_site;   ///< where the execution request arrived
  std::size_t k_nearest = 2;   ///< size of S_remote in Fig. 2, step 2

  /// Observability hooks (optional).  When set, the assignment phase feeds
  /// candidate counts and phase records; `now` stamps trace events with the
  /// caller's simulated time (0 for synchronous, out-of-simulation runs).
  obs::Observability* obs = nullptr;
  common::SimTime now = 0.0;

  /// Multi-tenant co-scheduling (optional; docs/TENANCY.md).  When set, the
  /// assignment phase skips every machine held by an application other than
  /// `reserving_app` and deterministically re-ranks the remaining
  /// candidates.  Null — or a table with no foreign reservations — leaves
  /// every decision bit-identical to the reservation-free scheduler.
  const ReservationTable* reservations = nullptr;
  common::AppId reserving_app;

  /// Advance-reservation windows (optional; docs/RESERVATIONS.md).  When
  /// set, the assignment phase places around committed [start, end) host
  /// windows: machines inside a foreign active window are invisible, and
  /// under conservative backfill a pending foreign window only admits work
  /// provably finishing before its start.  `held_booking` is the booking
  /// `reserving_app` owns (0 = none): the owner restricts its candidates to
  /// the booked hosts instead.  Null — or a table with no committed
  /// windows — leaves every decision bit-identical to the window-free
  /// scheduler (tests/test_reservations_differential.cpp).
  const WindowTable* windows = nullptr;
  std::uint64_t held_booking = 0;

  /// Resource prices (optional; docs/ECONOMY.md).  When set, the cost-aware
  /// strategies ("dbc-cost", "dbc-time") price every candidate placement —
  /// per-CPU-second host prices, per-MB link prices — and optimise spend
  /// against the policy's deadline/budget constraints.  Null, or a policy
  /// with no constraints, leaves every strategy's decisions bit-identical
  /// to the price-free scheduler (the economy differential pins this).
  const econ::CostModel* prices = nullptr;

  [[nodiscard]] const db::SiteRepository& repo(common::SiteId site) const {
    return *repos.at(site.value());
  }
};

/// Resolve the performance record for a task node: the site's
/// task-performance database first, then the synthetic-name fallback
/// ("<lib>.w<mflop>" graphs from the generators).
common::Expected<db::TaskPerfRecord> resolve_perf(
    const afg::TaskNode& node, const db::TaskPerformanceDb& database);

/// Base-processor computation cost of a node, used for level computation.
common::Expected<common::SimDuration> base_cost(
    const afg::TaskNode& node, const db::TaskPerformanceDb& database);

/// Abstract scheduler: interprets an AFG against a context and produces a
/// resource allocation table.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) = 0;
};

}  // namespace vdce::sched
