#include "sched/baselines.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"
#include "sched/heft.hpp"
#include "sched/list_variants.hpp"
#include "sched/site_scheduler.hpp"

namespace vdce::sched {

namespace {

/// Candidate sites for a baseline run: local plus the k nearest — the same
/// universe the VDCE scheduler sees, so comparisons are apples-to-apples.
std::vector<common::SiteId> candidate_sites(const SchedulerContext& context) {
  std::vector<common::SiteId> sites{context.local_site};
  for (common::SiteId s :
       context.topology->nearest_sites(context.local_site, context.k_nearest)) {
    sites.push_back(s);
  }
  return sites;
}

/// All feasible (site, machine, predicted) options for a sequential task
/// across the candidate sites, in deterministic order.
struct Option {
  common::SiteId site;
  RankedHost host;
};

common::Expected<std::vector<Option>> sequential_options(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    const std::vector<common::SiteId>& sites, const SchedulerContext& context) {
  std::vector<Option> out;
  for (common::SiteId s : sites) {
    for (RankedHost& rh : HostSelectionAlgorithm::feasible_hosts(
             node, perf, s, context.repo(s), *context.predictor)) {
      out.push_back(Option{s, std::move(rh)});
    }
  }
  if (out.empty()) {
    return common::Error{common::ErrorCode::kNoFeasibleResource,
                         "no feasible machine for " + node.instance_name};
  }
  return out;
}

/// Parallel tasks are placed via the Fig. 3 group rule at the cheapest
/// bidding site regardless of baseline flavour — the baselines differ in
/// their *sequential* placement policy, which dominates the comparison.
common::Expected<HostBid> parallel_bid(const afg::TaskNode& node,
                                       const db::TaskPerfRecord& perf,
                                       const std::vector<common::SiteId>& sites,
                                       const SchedulerContext& context) {
  common::Expected<HostBid> best =
      common::Error{common::ErrorCode::kNoFeasibleResource,
                    "no site can host parallel task " + node.instance_name};
  for (common::SiteId s : sites) {
    auto bid = HostSelectionAlgorithm::best_bid(node, perf, s, context.repo(s),
                                                *context.predictor);
    if (bid && (!best || bid->predicted < best->predicted)) best = bid;
  }
  return best;
}

/// Common driver: walk tasks in topological order, let `pick` choose among
/// the feasible sequential options, and book everything through
/// ScheduleBuilder.
template <typename PickFn>
common::Expected<ResourceAllocationTable> run_baseline(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::string& scheduler_name, PickFn&& pick) {
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  auto order = graph.topological_order();
  if (!order) return order.error();

  const auto sites = candidate_sites(context);
  const db::SiteRepository& local_repo = context.repo(context.local_site);
  ScheduleBuilder builder(graph, *context.topology);
  const common::HostId staging = context.topology->site(context.local_site).server;

  for (afg::TaskId task : *order) {
    const afg::TaskNode& node = graph.task(task);
    auto perf = resolve_perf(node, local_repo.tasks());
    if (!perf) return perf.error();

    if (node.props.mode == afg::ComputationMode::kParallel &&
        node.props.num_nodes > 1) {
      auto bid = parallel_bid(node, *perf, sites, context);
      if (!bid) return bid.error();
      builder.place(task, bid->site, bid->hosts, bid->predicted, staging);
      continue;
    }

    auto options = sequential_options(node, *perf, sites, context);
    if (!options) return options.error();
    const Option& chosen = pick(task, *options, builder);
    builder.place(task, chosen.site, {chosen.host.record.host},
                  chosen.host.predicted, staging);
  }
  return builder.build(graph.name(), scheduler_name);
}

/// Shared min-min / max-min batch driver: each step computes, for every
/// ready task, its best (minimum-completion-time) option, then places the
/// task whose best completion is smallest (min-min) or largest (max-min).
/// Ties break toward the lower task id in both flavours.
common::Expected<ResourceAllocationTable> run_batch_heuristic(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::string& scheduler_name, bool prefer_largest) {
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();

  const auto sites = candidate_sites(context);
  const db::SiteRepository& local_repo = context.repo(context.local_site);
  ScheduleBuilder builder(graph, *context.topology);
  const common::HostId staging = context.topology->site(context.local_site).server;

  std::vector<afg::TaskId> ready = graph.entry_tasks();
  std::size_t placed = 0;

  while (!ready.empty()) {
    struct Choice {
      afg::TaskId task;
      common::SiteId site;
      std::vector<common::HostId> hosts;
      common::SimDuration predicted = 0.0;
      common::SimTime finish = 0.0;
      bool valid = false;
    };
    Choice overall;

    for (afg::TaskId task : ready) {
      const afg::TaskNode& node = graph.task(task);
      auto perf = resolve_perf(node, local_repo.tasks());
      if (!perf) return perf.error();

      Choice best_for_task;
      if (node.props.mode == afg::ComputationMode::kParallel &&
          node.props.num_nodes > 1) {
        auto bid = parallel_bid(node, *perf, sites, context);
        if (!bid) return bid.error();
        best_for_task = Choice{task, bid->site, bid->hosts, bid->predicted,
                               builder.earliest_start(task, bid->hosts, staging) +
                                   bid->predicted,
                               true};
      } else {
        auto options = sequential_options(node, *perf, sites, context);
        if (!options) return options.error();
        for (const Option& o : *options) {
          std::vector<common::HostId> hs{o.host.record.host};
          common::SimTime finish =
              builder.earliest_start(task, hs, staging) + o.host.predicted;
          if (!best_for_task.valid || finish < best_for_task.finish) {
            best_for_task =
                Choice{task, o.site, hs, o.host.predicted, finish, true};
          }
        }
      }
      assert(best_for_task.valid);
      bool wins;
      if (!overall.valid) {
        wins = true;
      } else if (best_for_task.finish != overall.finish) {
        wins = prefer_largest ? best_for_task.finish > overall.finish
                              : best_for_task.finish < overall.finish;
      } else {
        wins = best_for_task.task < overall.task;
      }
      if (wins) overall = std::move(best_for_task);
    }

    builder.place(overall.task, overall.site, overall.hosts, overall.predicted,
                  staging);
    ++placed;
    ready.erase(std::find(ready.begin(), ready.end(), overall.task));
    for (afg::TaskId child : graph.children(overall.task)) {
      bool all_placed = true;
      for (afg::TaskId p : graph.parents(child)) {
        if (!builder.placed(p)) {
          all_placed = false;
          break;
        }
      }
      if (all_placed &&
          std::find(ready.begin(), ready.end(), child) == ready.end()) {
        ready.push_back(child);
      }
    }
  }

  if (placed != graph.task_count()) {
    return common::Error{common::ErrorCode::kInternal,
                         scheduler_name + " placed " + std::to_string(placed) +
                             " of " + std::to_string(graph.task_count()) +
                             " tasks"};
  }
  return builder.build(graph.name(), scheduler_name);
}

}  // namespace

common::Expected<ResourceAllocationTable> RandomScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  common::Rng rng(seed_);
  return run_baseline(
      graph, context, name(),
      [&rng](afg::TaskId, const std::vector<Option>& options,
             const ScheduleBuilder&) -> const Option& {
        return options[rng.pick_index(options.size())];
      });
}

common::Expected<ResourceAllocationTable> RoundRobinScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  std::size_t cursor = 0;
  return run_baseline(
      graph, context, name(),
      [&cursor](afg::TaskId, const std::vector<Option>& options,
                const ScheduleBuilder&) -> const Option& {
        // Cycle by a global cursor; options are deterministically ordered,
        // so this spreads consecutive tasks across machines.
        return options[cursor++ % options.size()];
      });
}

common::Expected<ResourceAllocationTable> MinLoadScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  return run_baseline(
      graph, context, name(),
      [](afg::TaskId, const std::vector<Option>& options,
         const ScheduleBuilder& builder) -> const Option& {
        // Least database-reported load; ties by machine occupancy, then
        // nominal speed descending.  No per-task prediction involved.
        const Option* best = &options.front();
        for (const Option& o : options) {
          double lo = o.host.record.current_load();
          double lb = best->host.record.current_load();
          if (lo != lb) {
            if (lo < lb) best = &o;
            continue;
          }
          auto fo = builder.host_free(o.host.record.host);
          auto fb = builder.host_free(best->host.record.host);
          if (fo != fb) {
            if (fo < fb) best = &o;
            continue;
          }
          if (o.host.record.speed_mflops > best->host.record.speed_mflops) {
            best = &o;
          }
        }
        return *best;
      });
}

common::Expected<ResourceAllocationTable> MinMinScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  // The batch heuristics need their own driver: they reorder the ready set
  // each step.
  return run_batch_heuristic(graph, context, name(), /*prefer_largest=*/false);
}

common::Expected<ResourceAllocationTable> MaxMinScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  return run_batch_heuristic(graph, context, name(), /*prefer_largest=*/true);
}

common::Expected<std::unique_ptr<Scheduler>> make_scheduler(
    const std::string& name, std::uint64_t seed) {
  if (name == "random") return std::unique_ptr<Scheduler>(new RandomScheduler(seed));
  if (name == "round-robin") {
    return std::unique_ptr<Scheduler>(new RoundRobinScheduler());
  }
  if (name == "min-load") return std::unique_ptr<Scheduler>(new MinLoadScheduler());
  if (name == "heft") return std::unique_ptr<Scheduler>(new HeftScheduler());
  if (name == "min-min") return std::unique_ptr<Scheduler>(new MinMinScheduler());
  if (name == "max-min") return std::unique_ptr<Scheduler>(new MaxMinScheduler());
  if (name == "b-level") return std::unique_ptr<Scheduler>(new BLevelScheduler());
  if (name == "t-level") return std::unique_ptr<Scheduler>(new TLevelScheduler());
  if (name == "work-stealing") {
    return std::unique_ptr<Scheduler>(new WorkStealingScheduler());
  }
  if (name == "vdce-level") {
    return std::unique_ptr<Scheduler>(new VdceSiteScheduler());
  }
  if (name == "vdce-level-paper") {
    SchedulingPolicy opts;
    opts.objective = SiteObjective::kPaperObjective;
    return std::unique_ptr<Scheduler>(new VdceSiteScheduler(opts));
  }
  if (name == "vdce-local") {
    SchedulingPolicy opts;
    opts.access = db::AccessDomain::kLocalSite;
    return std::unique_ptr<Scheduler>(new VdceSiteScheduler(opts));
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "unknown scheduler: " + name};
}

}  // namespace vdce::sched
