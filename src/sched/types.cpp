#include "sched/types.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace vdce::sched {

common::Expected<Assignment> ResourceAllocationTable::find(
    afg::TaskId task) const {
  for (const Assignment& a : assignments) {
    if (a.task == task) return a;
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "no assignment for task id " +
                           std::to_string(task.value())};
}

std::vector<common::HostId> ResourceAllocationTable::hosts_used() const {
  std::vector<common::HostId> out;
  for (const Assignment& a : assignments) {
    out.insert(out.end(), a.hosts.begin(), a.hosts.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<common::SiteId> ResourceAllocationTable::sites_used() const {
  std::vector<common::SiteId> out;
  for (const Assignment& a : assignments) out.push_back(a.site);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ResourceAllocationTable::describe(const afg::Afg& graph) const {
  std::string out = "Resource Allocation Table for '" + app_name + "' (" +
                    scheduler_name + ")\n";
  out += "  estimated schedule length: " +
         common::format_double(schedule_length, 4) + "s\n";
  for (const Assignment& a : assignments) {
    out += "  " + graph.task(a.task).instance_name + " -> site " +
           std::to_string(a.site.value()) + ", host(s)";
    for (common::HostId h : a.hosts) out += " " + std::to_string(h.value());
    out += "  [start " + common::format_double(a.est_start, 4) + "s, finish " +
           common::format_double(a.est_finish, 4) + "s, predicted " +
           common::format_double(a.predicted_time, 4) + "s]\n";
  }
  return out;
}

}  // namespace vdce::sched
