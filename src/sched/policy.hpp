// SchedulingPolicy — the value type users hand to the environment to say
// *how* an application should be scheduled (docs/SCHEDULING.md).
//
// Historically the run options embedded the VDCE site scheduler's own
// option struct, which hard-coded one algorithm family.  The policy object
// decouples the *request* ("schedule this with HEFT, honour my access
// domain, penalize stale samples") from the *implementation* (a
// SchedulerStrategy resolved from the registry in sched/strategy.hpp), so
// new strategy backends plug in without touching the runtime or the
// environment API.
//
// Migration note: `SiteSchedulerOptions` (site_scheduler.hpp) is a
// [[deprecated]] alias of this type — every pre-existing field kept its
// name and default, so code written against the old struct compiles and
// behaves unchanged.  Spell `SchedulingPolicy` and select the algorithm
// with `policy.strategy`; the alias will be removed (docs/SCHEDULING.md).
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "db/user_accounts.hpp"

namespace vdce::sched {

/// Objective of the VDCE site scheduler family (ablation of Fig. 2 — see
/// site_scheduler.hpp for the two fidelity modes):
///  * kPaperObjective    — the literal Fig. 2 objective (transfer + static
///    host-selection prediction, occupancy ignored);
///  * kAvailabilityAware — re-rank candidates by earliest finish given
///    current machine occupancy (default).
enum class SiteObjective { kPaperObjective, kAvailabilityAware };

/// Which task priority drives the ready-list (ablation of the §3 design
/// choice "level of each node ... computation costs" — see
/// bench_levels_ablation):
///  * kPaperLevels — computation-only levels, the paper's rule;
///  * kCommLevels  — levels including mean edge-transfer costs (upward
///    rank, the HEFT-style refinement);
///  * kFifo        — no levels: ready tasks in task-id order.
enum class PriorityMode { kPaperLevels, kCommLevels, kFifo };

/// How one application should be scheduled.
struct SchedulingPolicy {
  /// Registered strategy name (sched::strategies() lists them: "vdce-level",
  /// "heft", "min-min", "max-min", "b-level", "t-level", "work-stealing",
  /// ...).  Empty selects the default VDCE strategy implied by `objective`
  /// ("vdce-level", or "vdce-level-paper" under kPaperObjective) — exactly
  /// the pre-policy behaviour.  Unknown names are rejected with a typed
  /// kInvalidArgument error before any scheduling work starts.
  std::string strategy;

  // --- tuning of the VDCE strategy family (ignored by strategies that have
  // --- no equivalent knob; each strategy's description says which apply) --
  SiteObjective objective = SiteObjective::kAvailabilityAware;
  PriorityMode priority = PriorityMode::kPaperLevels;

  /// Honour the user's access-domain restriction (local / neighbours /
  /// global) when forming the candidate site set.  The environment clamps
  /// this to the session account's domain.
  db::AccessDomain access = db::AccessDomain::kGlobal;

  /// Graceful degradation under stale monitoring data: a host whose last
  /// repository sample is older than `stale_after` (relative to
  /// SchedulerContext::now) has its predicted times multiplied by
  /// `stale_penalty`, so fresh information wins ties and silently muted
  /// monitors stop attracting work.  0 disables the check (default — the
  /// offline planners have no meaningful clock).
  common::SimDuration stale_after = 0.0;
  double stale_penalty = 1.5;

  /// Seed for strategies with randomized tie-breaking ("random").
  std::uint64_t seed = 42;

  // --- advance reservations (docs/RESERVATIONS.md) ------------------------
  /// Conservative backfill around committed reservation windows: when true
  /// (default), a machine with a *pending* foreign window may still run a
  /// task whose guarded completion estimate lands before the window's
  /// start; when false, any pending foreign window makes the machine
  /// inadmissible until the window ends.  Either way an *active* foreign
  /// window always blocks — a backfilled application may never delay a
  /// committed window's start.  Irrelevant (a single never-taken branch)
  /// while no windows are committed.
  bool backfill = true;
  /// Safety factor applied to a backfill candidate's predicted completion
  /// before comparing it against the next committed window start:
  /// admissible iff now + backfill_guard * (predicted finish - now) <= the
  /// window start.  Absorbs execution noise, setup lag, and load drift so
  /// the no-delay invariant holds in practice (bench_reservations --check
  /// gates it).
  double backfill_guard = 2.0;

  // --- economy (docs/ECONOMY.md) ------------------------------------------
  /// User-level economic constraints, in seconds of simulated time and G$
  /// respectively; 0 means unconstrained.  The environment copies
  /// RunOptions.deadline / RunOptions.budget here at submission so the
  /// resolved strategy sees exactly what the user asked for.  Only the
  /// cost-aware strategies ("dbc-cost", "dbc-time") read them; with both at
  /// zero those strategies place identically to the default time-optimising
  /// path (tests/test_differential.cpp pins this).
  double deadline = 0.0;
  double budget = 0.0;
};

/// The concrete strategy name `policy` resolves to: `policy.strategy` when
/// set, otherwise the VDCE default implied by the objective.
[[nodiscard]] std::string resolved_strategy_name(const SchedulingPolicy& policy);

}  // namespace vdce::sched
