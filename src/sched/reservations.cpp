#include "sched/reservations.hpp"

#include <algorithm>

namespace vdce::sched {

void ReservationTable::acquire(common::AppId app,
                               const std::vector<common::HostId>& hosts) {
  if (!app.valid()) return;
  std::vector<std::uint32_t>& mine = by_app_[app.value()];
  for (common::HostId h : hosts) {
    if (!h.valid()) continue;
    auto [it, inserted] = holder_.emplace(h.value(), app.value());
    if (inserted) {
      mine.push_back(h.value());
    } else if (it->second != app.value()) {
      ++conflicts_;
    }
  }
  if (mine.empty()) by_app_.erase(app.value());
}

void ReservationTable::release(common::AppId app) {
  auto it = by_app_.find(app.value());
  if (it == by_app_.end()) return;
  for (std::uint32_t host : it->second) {
    auto held = holder_.find(host);
    if (held != holder_.end() && held->second == app.value()) {
      holder_.erase(held);
    }
  }
  by_app_.erase(it);
}

common::AppId ReservationTable::holder(common::HostId host) const {
  auto it = holder_.find(host.value());
  return it == holder_.end() ? common::AppId{} : common::AppId(it->second);
}

bool ReservationTable::reserved_by_other(common::HostId host,
                                         common::AppId app) const {
  auto it = holder_.find(host.value());
  return it != holder_.end() && it->second != app.value();
}

bool ReservationTable::any_other(common::AppId app) const {
  if (by_app_.empty()) return false;
  if (by_app_.size() > 1) return true;
  return by_app_.begin()->first != app.value();
}

std::vector<common::HostId> ReservationTable::hosts_of(
    common::AppId app) const {
  std::vector<common::HostId> hosts;
  auto it = by_app_.find(app.value());
  if (it == by_app_.end()) return hosts;
  hosts.reserve(it->second.size());
  for (std::uint32_t h : it->second) hosts.emplace_back(h);
  std::sort(hosts.begin(), hosts.end());
  return hosts;
}

// ---------------------------------------------------------------------------
// WindowTable
// ---------------------------------------------------------------------------

bool Window::contains_host(common::HostId h) const {
  return std::binary_search(hosts.begin(), hosts.end(), h);
}

bool WindowTable::host_conflicts(const Window& w) const {
  for (const Window& other : windows_) {
    if (!other.overlaps(w.start, w.end)) continue;
    for (common::HostId h : w.hosts) {
      if (other.contains_host(h)) return true;
    }
  }
  return false;
}

bool WindowTable::link_conflicts(const Window& w) const {
  if (w.link_fraction <= 0.0) return false;
  // Overlapping link windows on the same directed link may not oversubscribe
  // its capacity.  Windows are few; the linear scan is deterministic.
  double taken = 0.0;
  for (const Window& other : windows_) {
    if (other.link_fraction <= 0.0) continue;
    if (other.link_src != w.link_src || other.link_dst != w.link_dst) continue;
    if (!other.overlaps(w.start, w.end)) continue;
    taken += other.link_fraction;
  }
  return taken + w.link_fraction > 1.0;
}

common::Expected<std::uint64_t> WindowTable::book(Window window) {
  std::sort(window.hosts.begin(), window.hosts.end());
  window.hosts.erase(std::unique(window.hosts.begin(), window.hosts.end()),
                     window.hosts.end());
  if (host_conflicts(window)) {
    ++window_conflicts_;
    return common::Error{
        common::ErrorCode::kReservationConflict,
        "window [" + std::to_string(window.start) + ", " +
            std::to_string(window.end) +
            ") overlaps a committed reservation on a requested host"};
  }
  if (link_conflicts(window)) {
    ++window_conflicts_;
    return common::Error{
        common::ErrorCode::kReservationConflict,
        "link window " + std::to_string(window.link_src.value()) + " -> " +
            std::to_string(window.link_dst.value()) +
            " would oversubscribe the link's committed bandwidth"};
  }
  window.id = next_booking_++;
  const std::uint64_t id = window.id;
  windows_.push_back(std::move(window));
  return id;
}

common::Status WindowTable::cancel(std::uint64_t booking) {
  auto it = std::find_if(windows_.begin(), windows_.end(),
                         [&](const Window& w) { return w.id == booking; });
  if (it == windows_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "no committed reservation with booking id " +
                             std::to_string(booking)};
  }
  windows_.erase(it);
  return common::Status::success();
}

const Window* WindowTable::window(std::uint64_t booking) const {
  for (const Window& w : windows_) {
    if (w.id == booking) return &w;
  }
  return nullptr;
}

void WindowTable::bind_owner(std::uint64_t booking, common::AppId app) {
  for (Window& w : windows_) {
    if (w.id == booking) {
      w.owner_app = app;
      return;
    }
  }
}

std::uint64_t WindowTable::booking_of(common::AppId app) const {
  if (!app.valid()) return 0;
  for (const Window& w : windows_) {
    if (w.owner_app == app) return w.id;
  }
  return 0;
}

std::vector<const Window*> WindowTable::windows_of(common::HostId host,
                                                   common::SimTime after) const {
  std::vector<const Window*> result;
  for (const Window& w : windows_) {
    if (w.end <= after) continue;
    if (w.contains_host(host)) result.push_back(&w);
  }
  std::sort(result.begin(), result.end(),
            [](const Window* a, const Window* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->id < b->id;
            });
  return result;
}

bool WindowTable::window_blocked(common::HostId host, common::AppId app,
                                 common::SimTime now,
                                 common::SimTime est_finish,
                                 bool backfill) const {
  if (windows_.empty()) return false;
  for (const Window& w : windows_) {
    if (w.end <= now) continue;                          // already over
    if (app.valid() && w.owner_app == app) continue;     // own booking
    if (!w.contains_host(host)) continue;
    if (w.start <= now) return true;                     // active window
    if (!backfill) return true;        // pending window, backfill disabled
    if (est_finish < 0.0) return true; // unknown duration: cannot prove safe
    if (est_finish > w.start) return true;  // would delay the committed start
  }
  return false;
}

common::SimTime WindowTable::next_foreign_start(common::HostId host,
                                                common::AppId app,
                                                common::SimTime now) const {
  common::SimTime best = -1.0;
  for (const Window& w : windows_) {
    if (w.end <= now || w.start < now) continue;
    if (app.valid() && w.owner_app == app) continue;
    if (!w.contains_host(host)) continue;
    if (best < 0.0 || w.start < best) best = w.start;
  }
  return best;
}

std::vector<std::uint64_t> WindowTable::displace_host(
    common::HostId host, common::SimTime now,
    const std::vector<common::HostId>& candidates) {
  std::vector<common::HostId> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint64_t> displaced;
  for (Window& w : windows_) {
    if (w.end <= now) continue;
    if (!w.contains_host(host)) continue;
    w.hosts.erase(std::remove(w.hosts.begin(), w.hosts.end(), host),
                  w.hosts.end());
    // Lowest-id candidate that keeps the window conflict-free replaces the
    // dead host; deterministic because both the candidates and the window
    // list are scanned in stable order.
    for (common::HostId c : sorted) {
      if (c == host || w.contains_host(c)) continue;
      bool conflict = false;
      for (const Window& other : windows_) {
        if (other.id == w.id || !other.overlaps(w.start, w.end)) continue;
        if (other.contains_host(c)) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      w.hosts.insert(std::lower_bound(w.hosts.begin(), w.hosts.end(), c), c);
      break;
    }
    ++w.displacements;
    displaced.push_back(w.id);
  }
  std::sort(displaced.begin(), displaced.end());
  return displaced;
}

std::size_t WindowTable::window_count(common::SimTime now) const {
  std::size_t n = 0;
  for (const Window& w : windows_) {
    if (w.end > now) ++n;
  }
  return n;
}

}  // namespace vdce::sched
