#include "sched/reservations.hpp"

#include <algorithm>

namespace vdce::sched {

void ReservationTable::acquire(common::AppId app,
                               const std::vector<common::HostId>& hosts) {
  if (!app.valid()) return;
  std::vector<std::uint32_t>& mine = by_app_[app.value()];
  for (common::HostId h : hosts) {
    if (!h.valid()) continue;
    auto [it, inserted] = holder_.emplace(h.value(), app.value());
    if (inserted) {
      mine.push_back(h.value());
    } else if (it->second != app.value()) {
      ++conflicts_;
    }
  }
  if (mine.empty()) by_app_.erase(app.value());
}

void ReservationTable::release(common::AppId app) {
  auto it = by_app_.find(app.value());
  if (it == by_app_.end()) return;
  for (std::uint32_t host : it->second) {
    auto held = holder_.find(host);
    if (held != holder_.end() && held->second == app.value()) {
      holder_.erase(held);
    }
  }
  by_app_.erase(it);
}

common::AppId ReservationTable::holder(common::HostId host) const {
  auto it = holder_.find(host.value());
  return it == holder_.end() ? common::AppId{} : common::AppId(it->second);
}

bool ReservationTable::reserved_by_other(common::HostId host,
                                         common::AppId app) const {
  auto it = holder_.find(host.value());
  return it != holder_.end() && it->second != app.value();
}

bool ReservationTable::any_other(common::AppId app) const {
  if (by_app_.empty()) return false;
  if (by_app_.size() > 1) return true;
  return by_app_.begin()->first != app.value();
}

std::vector<common::HostId> ReservationTable::hosts_of(
    common::AppId app) const {
  std::vector<common::HostId> hosts;
  auto it = by_app_.find(app.value());
  if (it == by_app_.end()) return hosts;
  hosts.reserve(it->second.size());
  for (std::uint32_t h : it->second) hosts.emplace_back(h);
  std::sort(hosts.begin(), hosts.end());
  return hosts;
}

}  // namespace vdce::sched
