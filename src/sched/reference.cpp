#include "sched/reference.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "afg/levels.hpp"

namespace vdce::sched::reference {

namespace {

/// The pre-optimization feasible_hosts: fetches (copies) the site's
/// available-host records and re-runs every prediction on each call —
/// exactly what the cached ranked lists in HostSelectionOutput eliminate.
std::vector<RankedHost> feasible_hosts_naive(
    const afg::TaskNode& node, const db::TaskPerfRecord& perf,
    common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  std::vector<RankedHost> out;
  const bool constrained = !repo.constraints().hosts_for(node.task_name).empty();
  for (const db::ResourceRecord& rec : repo.resources().available_hosts(site)) {
    if (!node.props.preferred_machine.empty() &&
        rec.host_name != node.props.preferred_machine) {
      continue;
    }
    if (!node.props.preferred_machine_type.empty() &&
        rec.machine_type != node.props.preferred_machine_type) {
      continue;
    }
    if (constrained &&
        !repo.constraints().runnable_on(node.task_name, rec.host)) {
      continue;
    }
    auto predicted = predictor.predict(perf, rec, &repo.tasks());
    if (!predicted) continue;  // infeasible (memory) on this machine
    out.push_back(RankedHost{rec, *predicted});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedHost& a, const RankedHost& b) {
              if (a.predicted != b.predicted) return a.predicted < b.predicted;
              return a.record.host < b.record.host;
            });
  return out;
}

/// The pre-optimization best_bid / run pair: one feasible_hosts pass per
/// (task, site) with nothing retained across tasks.
common::Expected<HostBid> best_bid_naive(const afg::TaskNode& node,
                                         const db::TaskPerfRecord& perf,
                                         common::SiteId site,
                                         const db::SiteRepository& repo,
                                         const predict::Predictor& predictor) {
  auto ranked = feasible_hosts_naive(node, perf, site, repo, predictor);
  const auto nodes_needed =
      node.props.mode == afg::ComputationMode::kParallel
          ? static_cast<std::size_t>(node.props.num_nodes)
          : std::size_t{1};
  if (ranked.size() < nodes_needed) {
    return common::Error{common::ErrorCode::kNoFeasibleResource,
                         "site " + std::to_string(site.value()) + " has " +
                             std::to_string(ranked.size()) +
                             " feasible hosts for " + node.instance_name +
                             ", needs " + std::to_string(nodes_needed)};
  }
  HostBid bid;
  bid.site = site;
  if (nodes_needed == 1) {
    bid.hosts.push_back(ranked.front().record.host);
    bid.predicted = ranked.front().predicted;
    return bid;
  }
  std::vector<db::ResourceRecord> group;
  for (std::size_t i = 0; i < nodes_needed; ++i) {
    group.push_back(ranked[i].record);
    bid.hosts.push_back(ranked[i].record.host);
  }
  auto predicted = predictor.predict(perf, group, &repo.tasks());
  if (!predicted) return predicted.error();
  bid.predicted = *predicted;
  return bid;
}

common::Expected<HostSelectionOutput> run_naive(
    const afg::Afg& graph, common::SiteId site, const db::SiteRepository& repo,
    const predict::Predictor& predictor) {
  HostSelectionOutput output;
  output.site = site;  // leaves output.ranked empty: no cache in this era
  for (const afg::TaskNode& node : graph.tasks()) {
    auto perf = resolve_perf(node, repo.tasks());
    if (!perf) return perf.error();
    auto bid = best_bid_naive(node, *perf, site, repo, predictor);
    if (bid) output.bids.emplace(node.id, std::move(*bid));
    // No feasible machine here: this site simply does not bid for the task.
  }
  return output;
}

/// The pre-optimization ScheduleBuilder: hash-map bookkeeping and full
/// edge-list scans on every data-ready query.  Deliberately naive — see the
/// header comment.
class NaiveBuilder {
 public:
  NaiveBuilder(const afg::Afg& graph, const net::Topology& topology)
      : graph_(graph), topology_(topology) {}

  [[nodiscard]] common::SimTime data_ready(afg::TaskId task,
                                           common::HostId candidate,
                                           common::HostId staging_from) const {
    common::SimTime ready = 0.0;
    for (const afg::Edge& e : graph_.edges()) {
      if (e.to != task) continue;
      const Assignment& parent = assignments_.at(e.from);
      double bytes = graph_.edge_bytes(e);
      ready = std::max(ready,
                       parent.est_finish + topology_.transfer_time(
                                               parent.primary_host(), candidate,
                                               bytes));
    }
    if (staging_from.valid()) {
      for (const afg::FileSpec& f : graph_.task(task).props.inputs) {
        if (!f.dataflow && !f.path.empty()) {
          ready = std::max(ready, topology_.transfer_time(staging_from,
                                                          candidate,
                                                          f.size_bytes));
        }
      }
    }
    return ready;
  }

  [[nodiscard]] common::SimTime host_free(common::HostId host) const {
    auto it = host_free_.find(host);
    return it == host_free_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] common::SimTime earliest_start(
      afg::TaskId task, const std::vector<common::HostId>& hosts,
      common::HostId staging_from) const {
    common::SimTime start = data_ready(task, hosts.front(), staging_from);
    for (common::HostId h : hosts) start = std::max(start, host_free(h));
    return start;
  }

  const Assignment& place(afg::TaskId task, common::SiteId site,
                          std::vector<common::HostId> hosts,
                          common::SimDuration predicted,
                          common::HostId staging_from) {
    Assignment a;
    a.task = task;
    a.site = site;
    a.hosts = std::move(hosts);
    a.predicted_time = predicted;
    a.est_start = earliest_start(task, a.hosts, staging_from);
    a.est_finish = a.est_start + predicted;
    for (common::HostId h : a.hosts) host_free_[h] = a.est_finish;
    makespan_ = std::max(makespan_, a.est_finish);
    return assignments_.emplace(task, std::move(a)).first->second;
  }

  [[nodiscard]] bool placed(afg::TaskId task) const {
    return assignments_.contains(task);
  }

  [[nodiscard]] const Assignment& assignment(afg::TaskId task) const {
    return assignments_.at(task);
  }

  [[nodiscard]] ResourceAllocationTable build(std::string app_name,
                                              std::string scheduler_name) const {
    ResourceAllocationTable table;
    table.app_name = std::move(app_name);
    table.scheduler_name = std::move(scheduler_name);
    table.schedule_length = makespan_;
    table.assignments.reserve(assignments_.size());
    for (const afg::TaskNode& t : graph_.tasks()) {
      auto it = assignments_.find(t.id);
      if (it != assignments_.end()) table.assignments.push_back(it->second);
    }
    return table;
  }

 private:
  const afg::Afg& graph_;
  const net::Topology& topology_;
  std::unordered_map<afg::TaskId, Assignment> assignments_;
  std::unordered_map<common::HostId, common::SimTime> host_free_;
  common::SimDuration makespan_ = 0.0;
};

struct SiteCandidate {
  common::SiteId site;
  std::vector<common::HostId> hosts;
  common::SimDuration predicted = 0.0;
  double objective = 0.0;
  bool valid = false;
};

/// Fig. 2's Time_total, summing edge transfers by a full edge-list scan in
/// edge insertion order (the same order the indexed implementation uses, so
/// floating-point sums agree bit-for-bit).
double paper_objective_naive(const afg::Afg& graph, afg::TaskId task,
                             common::SiteId candidate_site,
                             const NaiveBuilder& builder,
                             const net::Topology& topology, double predicted) {
  double transfer = 0.0;
  for (const afg::Edge& e : graph.edges()) {
    if (e.to != task) continue;
    const Assignment& parent = builder.assignment(e.from);
    transfer += topology.site_transfer_time(parent.site, candidate_site,
                                            graph.edge_bytes(e));
  }
  return transfer + predicted;
}

/// Unique parents of `task`, by full edge-list scan.
std::vector<afg::TaskId> parents_naive(const afg::Afg& graph,
                                       afg::TaskId task) {
  std::vector<afg::TaskId> out;
  for (const afg::Edge& e : graph.edges()) {
    if (e.to == task &&
        std::find(out.begin(), out.end(), e.from) == out.end()) {
      out.push_back(e.from);
    }
  }
  return out;
}

std::vector<afg::TaskId> children_naive(const afg::Afg& graph,
                                        afg::TaskId task) {
  std::vector<afg::TaskId> out;
  for (const afg::Edge& e : graph.edges()) {
    if (e.from == task &&
        std::find(out.begin(), out.end(), e.to) == out.end()) {
      out.push_back(e.to);
    }
  }
  return out;
}

}  // namespace

common::Expected<ResourceAllocationTable> assign_with_outputs_naive(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<HostSelectionOutput>& outputs,
    const SchedulingPolicy& options, const std::string& scheduler_name) {
  if (context.topology == nullptr || context.predictor == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "scheduler context lacks a topology or predictor"};
  }
  if (outputs.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "no host-selection outputs supplied"};
  }
  if (outputs.front().site != context.local_site) {
    return common::Error{
        common::ErrorCode::kInvalidArgument,
        "host-selection outputs must lead with the local site"};
  }

  const net::Topology& topology = *context.topology;
  const db::SiteRepository& local_repo = context.repo(context.local_site);

  auto staleness = [&](const db::ResourceRecord& record) {
    if (options.stale_after <= 0.0) return 1.0;
    if (context.now - record.last_sample_time() <= options.stale_after) {
      return 1.0;
    }
    return options.stale_penalty;
  };

  common::Error cost_error{common::ErrorCode::kInternal, ""};
  bool cost_failed = false;
  auto cost_fn = [&](const afg::TaskNode& node) {
    auto c = base_cost(node, local_repo.tasks());
    if (!c) {
      cost_failed = true;
      cost_error = c.error();
      return 0.0;
    }
    return *c;
  };
  common::Expected<afg::Levels> levels =
      common::Error{common::ErrorCode::kInternal, "unset"};
  switch (options.priority) {
    case PriorityMode::kPaperLevels:
      levels = afg::compute_levels(graph, cost_fn);
      break;
    case PriorityMode::kCommLevels: {
      net::LinkSpec lan = topology.site(context.local_site).lan;
      net::LinkSpec wan = topology.default_wan();
      levels = afg::compute_levels_with_comm(
          graph, cost_fn, [&](const afg::Edge& e) {
            double bytes = graph.edge_bytes(e);
            return 0.5 * (lan.transfer_time(bytes) + wan.transfer_time(bytes));
          });
      break;
    }
    case PriorityMode::kFifo: {
      afg::Levels fifo;
      fifo.level.assign(graph.task_count(), 0.0);
      levels = fifo;
      break;
    }
  }
  if (cost_failed) return cost_error;
  if (!levels) return levels.error();

  NaiveBuilder builder(graph, topology);
  std::set<afg::TaskId> ready;
  for (afg::TaskId t : graph.entry_tasks()) ready.insert(t);

  const common::HostId staging = topology.site(context.local_site).server;
  std::size_t placed = 0;

  while (!ready.empty()) {
    // Highest level first; ties by id — found by linear scan of the set.
    afg::TaskId task = *ready.begin();
    for (afg::TaskId t : ready) {
      if (levels->of(t) > levels->of(task) ||
          (levels->of(t) == levels->of(task) && t < task)) {
        task = t;
      }
    }
    ready.erase(task);

    const afg::TaskNode& node = graph.task(task);
    auto perf = resolve_perf(node, local_repo.tasks());
    if (!perf) return perf.error();

    const bool no_input_case =
        parents_naive(graph, task).empty() || !graph.requires_input(task);

    SiteCandidate best;
    for (const HostSelectionOutput& output : outputs) {
      const common::SiteId s = output.site;
      auto bid_it = output.bids.find(task);
      if (bid_it == output.bids.end()) continue;

      SiteCandidate cand;
      cand.site = s;
      cand.valid = true;

      if (options.objective == SiteObjective::kPaperObjective) {
        cand.hosts = bid_it->second.hosts;
        cand.predicted = bid_it->second.predicted;
        cand.objective =
            no_input_case
                ? cand.predicted
                : paper_objective_naive(graph, task, s, builder, topology,
                                        cand.predicted);
      } else {
        auto ranked =
            feasible_hosts_naive(node, *perf, s, context.repo(s),
                                 *context.predictor);
        const auto need = node.props.mode == afg::ComputationMode::kParallel
                              ? static_cast<std::size_t>(node.props.num_nodes)
                              : std::size_t{1};
        if (ranked.size() < need) continue;

        if (need == 1) {
          bool have = false;
          double best_finish = 0.0;
          for (const RankedHost& rh : ranked) {
            std::vector<common::HostId> hs{rh.record.host};
            const double predicted = rh.predicted * staleness(rh.record);
            double finish =
                builder.earliest_start(task, hs, staging) + predicted;
            if (!have || finish < best_finish) {
              have = true;
              best_finish = finish;
              cand.hosts = hs;
              cand.predicted = predicted;
            }
          }
          cand.objective = best_finish;
        } else {
          std::vector<RankedHost> pool(
              ranked.begin(),
              ranked.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(ranked.size(), 2 * need)));
          std::sort(pool.begin(), pool.end(),
                    [&](const RankedHost& a, const RankedHost& b) {
                      auto fa = builder.host_free(a.record.host);
                      auto fb = builder.host_free(b.record.host);
                      if (fa != fb) return fa < fb;
                      return a.predicted < b.predicted;
                    });
          std::vector<db::ResourceRecord> group;
          for (std::size_t i = 0; i < need; ++i) {
            group.push_back(pool[i].record);
            cand.hosts.push_back(pool[i].record.host);
          }
          auto predicted = context.predictor->predict(*perf, group,
                                                      &context.repo(s).tasks());
          if (!predicted) continue;
          double penalty = 1.0;
          for (const db::ResourceRecord& r : group) {
            penalty = std::max(penalty, staleness(r));
          }
          cand.predicted = *predicted * penalty;
          cand.objective =
              builder.earliest_start(task, cand.hosts, staging) + cand.predicted;
        }
      }

      if (!best.valid || cand.objective < best.objective ||
          (cand.objective == best.objective && cand.site < best.site)) {
        best = std::move(cand);
      }
    }

    if (!best.valid) {
      return common::Error{common::ErrorCode::kNoFeasibleResource,
                           "no site can run task " + node.instance_name};
    }

    builder.place(task, best.site, best.hosts, best.predicted, staging);
    ++placed;

    for (afg::TaskId child : children_naive(graph, task)) {
      bool all_placed = true;
      for (afg::TaskId p : parents_naive(graph, child)) {
        if (!builder.placed(p)) {
          all_placed = false;
          break;
        }
      }
      if (all_placed && !builder.placed(child)) ready.insert(child);
    }
  }

  if (placed != graph.task_count()) {
    return common::Error{common::ErrorCode::kInternal,
                         "scheduler placed " + std::to_string(placed) + " of " +
                             std::to_string(graph.task_count()) + " tasks"};
  }
  return builder.build(graph.name(), scheduler_name);
}

common::Expected<ResourceAllocationTable> schedule_naive(
    const afg::Afg& graph, const SchedulerContext& context,
    const SchedulingPolicy& options) {
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();

  const auto sites = candidate_site_set(context, options);

  std::vector<HostSelectionOutput> outputs;
  for (common::SiteId s : sites) {
    auto out = run_naive(graph, s, context.repo(s), *context.predictor);
    if (!out) return out.error();
    outputs.push_back(std::move(*out));
  }
  const std::string name =
      options.objective == SiteObjective::kPaperObjective
          ? "vdce-level-paper-naive"
          : "vdce-level-naive";
  return assign_with_outputs_naive(graph, context, outputs, options, name);
}

}  // namespace vdce::sched::reference
