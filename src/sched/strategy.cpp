#include "sched/strategy.hpp"

#include <utility>

#include "sched/baselines.hpp"
#include "sched/dbc.hpp"
#include "sched/heft.hpp"
#include "sched/list_variants.hpp"
#include "sched/site_scheduler.hpp"

namespace vdce::sched {

std::string resolved_strategy_name(const SchedulingPolicy& policy) {
  if (!policy.strategy.empty()) return policy.strategy;
  return policy.objective == SiteObjective::kPaperObjective ? "vdce-level-paper"
                                                            : "vdce-level";
}

namespace {

/// The VDCE assignment phase (Fig. 2 steps 6-7) as a strategy: the one
/// backend that consumes the runtime's gathered host-selection outputs
/// directly.  With an empty policy.strategy this is byte-for-byte the
/// pre-registry dispatch, which the strategies differential test pins.
class VdceAssignStrategy final : public SchedulerStrategy {
 public:
  VdceAssignStrategy(std::string name, SchedulingPolicy policy)
      : name_(std::move(name)), policy_(std::move(policy)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  common::Expected<ResourceAllocationTable> assign(
      const afg::Afg& graph, const SchedulerContext& context,
      const std::vector<HostSelectionOutput>& outputs) override {
    return assign_with_outputs(graph, context, outputs, policy_, name_);
  }

 private:
  std::string name_;
  SchedulingPolicy policy_;
};

/// Adapter running an offline planner (sched::Scheduler) as a strategy.
/// The gathered outputs are ignored: the planner re-derives its own view
/// from the same live repositories through the context, so it sees exactly
/// the information the bids were computed from.
class PlannerStrategy final : public SchedulerStrategy {
 public:
  explicit PlannerStrategy(std::unique_ptr<Scheduler> planner)
      : planner_(std::move(planner)) {}

  [[nodiscard]] std::string name() const override { return planner_->name(); }

  common::Expected<ResourceAllocationTable> assign(
      const afg::Afg& graph, const SchedulerContext& context,
      const std::vector<HostSelectionOutput>& /*outputs*/) override {
    return planner_->schedule(graph, context);
  }

 private:
  std::unique_ptr<Scheduler> planner_;
};

struct Entry {
  StrategyInfo info;
  StrategyFactory factory;
};

/// Wrap a planner constructor into a StrategyFactory.
template <typename MakePlanner>
StrategyFactory planner_factory(MakePlanner make) {
  return [make](const SchedulingPolicy& policy) {
    return std::unique_ptr<SchedulerStrategy>(new PlannerStrategy(make(policy)));
  };
}

std::vector<Entry> builtin_entries() {
  std::vector<Entry> entries;
  auto add = [&entries](std::string name, std::string description,
                        StrategyFactory factory) {
    entries.push_back(Entry{StrategyInfo{std::move(name), std::move(description)},
                            std::move(factory)});
  };

  add("vdce-level",
      "VDCE site scheduler (Fig. 2), availability-aware objective: level-"
      "priority list scheduling, candidates re-ranked by earliest finish "
      "under current occupancy.  Honours priority/access/staleness tuning.  "
      "The default strategy.",
      [](const SchedulingPolicy& policy) {
        SchedulingPolicy p = policy;
        p.objective = SiteObjective::kAvailabilityAware;
        return std::unique_ptr<SchedulerStrategy>(
            new VdceAssignStrategy("vdce-level", p));
      });
  add("vdce-level-paper",
      "VDCE site scheduler with the literal Fig. 2 objective: per-site "
      "transfer term plus the static host-selection prediction, machine "
      "occupancy ignored.",
      [](const SchedulingPolicy& policy) {
        SchedulingPolicy p = policy;
        p.objective = SiteObjective::kPaperObjective;
        return std::unique_ptr<SchedulerStrategy>(
            new VdceAssignStrategy("vdce-level-paper", p));
      });
  add("vdce-local",
      "VDCE site scheduler restricted to the local site (AccessDomain::"
      "kLocalSite): isolates the value of wide-area scheduling.",
      [](const SchedulingPolicy& policy) {
        SchedulingPolicy p = policy;
        p.objective = SiteObjective::kAvailabilityAware;
        p.access = db::AccessDomain::kLocalSite;
        return std::unique_ptr<SchedulerStrategy>(
            new VdceAssignStrategy("vdce-local", p));
      });
  add("heft",
      "Heterogeneous Earliest Finish Time (Topcuoglu et al.): upward-rank "
      "priority with insertion-based earliest-finish placement.",
      planner_factory([](const SchedulingPolicy&) {
        return std::unique_ptr<Scheduler>(new HeftScheduler());
      }));
  add("min-min",
      "Classic min-min batch heuristic: each step places the ready task "
      "whose best completion time is smallest.",
      planner_factory([](const SchedulingPolicy&) {
        return std::unique_ptr<Scheduler>(new MinMinScheduler());
      }));
  add("max-min",
      "Max-min batch heuristic: each step places the ready task whose best "
      "completion time is largest, front-loading long tasks.",
      planner_factory([](const SchedulingPolicy&) {
        return std::unique_ptr<Scheduler>(new MaxMinScheduler());
      }));
  add("b-level",
      "Bottom-level list scheduling: upward-rank priority (as HEFT) with "
      "earliest-finish placement but no slot insertion — isolates the value "
      "of HEFT's insertion.",
      planner_factory([](const SchedulingPolicy& policy) {
        return std::unique_ptr<Scheduler>(new BLevelScheduler(policy));
      }));
  add("t-level",
      "Top-level list scheduling: the ready task with the smallest top "
      "level (earliest possible start) goes first — the ASAP companion to "
      "b-level.",
      planner_factory([](const SchedulingPolicy& policy) {
        return std::unique_ptr<Scheduler>(new TLevelScheduler(policy));
      }));
  add("work-stealing",
      "Idle-worker pull: the highest-ranked ready task is stolen by the "
      "feasible machine that can start it earliest, regardless of speed — "
      "models decentralized, availability-driven placement.",
      planner_factory([](const SchedulingPolicy& policy) {
        return std::unique_ptr<Scheduler>(new WorkStealingScheduler(policy));
      }));
  add("min-load",
      "Greedy least-loaded machine (monitoring data, no per-task "
      "prediction): isolates the value of the prediction model.",
      planner_factory([](const SchedulingPolicy&) {
        return std::unique_ptr<Scheduler>(new MinLoadScheduler());
      }));
  add("round-robin",
      "Cycle through the feasible machines regardless of speed or load.",
      planner_factory([](const SchedulingPolicy&) {
        return std::unique_ptr<Scheduler>(new RoundRobinScheduler());
      }));
  add("random",
      "Uniformly random feasible machine per task, seeded by policy.seed.",
      planner_factory([](const SchedulingPolicy& policy) {
        return std::unique_ptr<Scheduler>(new RandomScheduler(policy.seed));
      }));
  add("dbc-cost",
      "Deadline/budget-constrained cost-optimisation (Buyya et al., arXiv "
      "cs/0203020): minimise quoted spend subject to the policy deadline.  "
      "Without prices or constraints, identical to the default assignment "
      "phase (docs/ECONOMY.md).",
      [](const SchedulingPolicy& policy) {
        return std::unique_ptr<SchedulerStrategy>(
            new DbcStrategy(DbcStrategy::Mode::kCost, policy));
      });
  add("dbc-time",
      "Deadline/budget-constrained time-optimisation (Buyya et al., arXiv "
      "cs/0203020): minimise completion time subject to the policy budget.  "
      "Without prices or constraints, identical to the default assignment "
      "phase (docs/ECONOMY.md).",
      [](const SchedulingPolicy& policy) {
        return std::unique_ptr<SchedulerStrategy>(
            new DbcStrategy(DbcStrategy::Mode::kTime, policy));
      });
  return entries;
}

/// The registry.  Single-threaded by design, like the rest of the
/// simulation: registration happens at startup, lookups at schedule time.
std::vector<Entry>& registry() {
  static std::vector<Entry> entries = builtin_entries();
  return entries;
}

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : registry()) {
    if (e.info.name == name) return &e;
  }
  return nullptr;
}

std::string known_names() {
  std::string names;
  for (const Entry& e : registry()) {
    if (!names.empty()) names += ", ";
    names += e.info.name;
  }
  return names;
}

}  // namespace

bool register_strategy(StrategyInfo info, StrategyFactory factory) {
  if (info.name.empty() || !factory || find_entry(info.name) != nullptr) {
    return false;
  }
  registry().push_back(Entry{std::move(info), std::move(factory)});
  return true;
}

std::vector<StrategyInfo> strategies() {
  std::vector<StrategyInfo> out;
  out.reserve(registry().size());
  for (const Entry& e : registry()) out.push_back(e.info);
  return out;
}

bool strategy_registered(const std::string& name) {
  return find_entry(name) != nullptr;
}

common::Status validate_policy(const SchedulingPolicy& policy) {
  const std::string name = resolved_strategy_name(policy);
  if (find_entry(name) == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "unknown scheduling strategy \"" + name +
                             "\" (known: " + known_names() + ")"};
  }
  return common::Status::success();
}

common::Expected<std::unique_ptr<SchedulerStrategy>> make_strategy(
    const SchedulingPolicy& policy) {
  const std::string name = resolved_strategy_name(policy);
  const Entry* entry = find_entry(name);
  if (entry == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "unknown scheduling strategy \"" + name +
                             "\" (known: " + known_names() + ")"};
  }
  return entry->factory(policy);
}

}  // namespace vdce::sched
