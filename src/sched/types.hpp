// Scheduling result types: the resource allocation table the Application
// Scheduler hands to the Site Manager (§3: "the resource allocation table
// is generated and transferred to the Site Manager running on the VDCE
// server").
#pragma once

#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace vdce::sched {

/// One row of the resource allocation table: where a task runs and the
/// scheduler's timing estimates for it.
struct Assignment {
  afg::TaskId task;
  common::SiteId site;
  /// One host for sequential tasks; `num_nodes` hosts for parallel tasks
  /// (first entry is the task's "primary" host — the endpoint for
  /// inter-task transfers).
  std::vector<common::HostId> hosts;
  common::SimDuration predicted_time = 0.0;
  common::SimTime est_start = 0.0;
  common::SimTime est_finish = 0.0;

  [[nodiscard]] common::HostId primary_host() const {
    return hosts.empty() ? common::HostId{} : hosts.front();
  }
};

/// The full mapping for an application, plus the scheduler's estimated
/// schedule length (the objective the paper minimizes).
struct ResourceAllocationTable {
  std::string app_name;
  std::string scheduler_name;
  std::vector<Assignment> assignments;  ///< exactly one per task
  common::SimDuration schedule_length = 0.0;

  [[nodiscard]] common::Expected<Assignment> find(afg::TaskId task) const;

  /// Hosts participating in the execution (unique, sorted).
  [[nodiscard]] std::vector<common::HostId> hosts_used() const;
  /// Sites participating in the execution (unique, sorted).
  [[nodiscard]] std::vector<common::SiteId> sites_used() const;

  /// Printable table for examples and EXPERIMENTS.md evidence.
  [[nodiscard]] std::string describe(const afg::Afg& graph) const;
};

}  // namespace vdce::sched
