// SchedulerStrategy — the pluggable assignment backend of the live runtime
// (docs/SCHEDULING.md).
//
// The Fig. 2 flow splits naturally in two: the *protocol* half (multicast
// the AFG to the candidate sites, gather each site's host-selection output
// over the fabric) and the *decision* half (turn those outputs into a
// resource allocation table).  runtime/site_manager owns the protocol half;
// the decision half used to be hard-coded to the VDCE assignment phase.
// SchedulerStrategy is that decision half as an interface, resolved by name
// from a registry, so HEFT, min-min, work-stealing — and later the ROADMAP
// economy and decentralised backends — run on the real simulated runtime
// instead of only in offline benches.
//
// Contract for assign():
//  * `outputs` holds one HostSelectionOutput per candidate site, local site
//    first — exactly what the runtime gathered.  Strategies that re-derive
//    their own view (the offline planners wrapped by the adapter in
//    strategy.cpp) may ignore it; they read the same live repositories
//    through `context`, so the information base is identical.
//  * The returned table's `scheduler_name` must equal name(), which is how
//    ExecutionReport attributes the schedule.
//  * Determinism: same graph + context + outputs must yield the same table
//    (randomized strategies derive their RNG from the policy seed).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"
#include "sched/host_selection.hpp"
#include "sched/policy.hpp"
#include "sched/support.hpp"
#include "sched/types.hpp"

namespace vdce::sched {

/// The decision half of Fig. 2: host-selection outputs in, resource
/// allocation table out.
class SchedulerStrategy {
 public:
  virtual ~SchedulerStrategy() = default;

  /// Registered name; also the `scheduler_name` of every table produced.
  [[nodiscard]] virtual std::string name() const = 0;

  virtual common::Expected<ResourceAllocationTable> assign(
      const afg::Afg& graph, const SchedulerContext& context,
      const std::vector<HostSelectionOutput>& outputs) = 0;
};

/// Registry entry, as reported by strategies().
struct StrategyInfo {
  std::string name;
  std::string description;
};

/// Builds a strategy instance configured by the (already validated) policy.
using StrategyFactory =
    std::function<std::unique_ptr<SchedulerStrategy>(const SchedulingPolicy&)>;

/// Register a strategy under `info.name`.  Returns false (and changes
/// nothing) if the name is already taken.  The built-in strategies are
/// pre-registered; this hook is for out-of-tree backends.
bool register_strategy(StrategyInfo info, StrategyFactory factory);

/// Every registered strategy, in registration order (built-ins first).
[[nodiscard]] std::vector<StrategyInfo> strategies();

/// True iff `name` is a registered strategy name.
[[nodiscard]] bool strategy_registered(const std::string& name);

/// Reject policies naming an unregistered strategy with kInvalidArgument
/// (the message lists every known name).  Environments call this at
/// bring-up and submission so bad names fail fast instead of silently
/// falling back to the default.
[[nodiscard]] common::Status validate_policy(const SchedulingPolicy& policy);

/// Resolve `policy` to a configured strategy instance.  kInvalidArgument on
/// unknown names; never silently substitutes a default.
common::Expected<std::unique_ptr<SchedulerStrategy>> make_strategy(
    const SchedulingPolicy& policy);

}  // namespace vdce::sched
