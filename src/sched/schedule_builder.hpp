// Schedule bookkeeping shared by every scheduling algorithm.
//
// List scheduling needs, as each task is placed: (a) when its input data
// can be present on a candidate host — parents' finish times plus transfer
// time over the topology for the edge volumes, (b) when the candidate host
// is free — hosts execute one VDCE task at a time (the prototype's model;
// background load is separate and handled by the prediction model), and
// (c) the running makespan.  Centralizing this in ScheduleBuilder makes the
// VDCE scheduler and every baseline produce *comparable* estimated
// schedules: they differ only in their placement decisions.
#pragma once

#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "net/topology.hpp"
#include "sched/types.hpp"

namespace vdce::sched {

class ScheduleBuilder {
 public:
  ScheduleBuilder(const afg::Afg& graph, const net::Topology& topology)
      : graph_(graph), topology_(topology) {}

  /// Earliest time `task`'s inputs can be at `candidate` — max over in-edges
  /// of parent finish + transfer(parent primary host -> candidate, bytes).
  /// Non-dataflow file inputs are charged a staging transfer from the local
  /// site's server if `staging_from` is valid.  Pre: all parents placed.
  [[nodiscard]] common::SimTime data_ready(afg::TaskId task,
                                           common::HostId candidate,
                                           common::HostId staging_from = {}) const;

  /// When the host finishes its last assigned VDCE task (0 if none).
  [[nodiscard]] common::SimTime host_free(common::HostId host) const;

  /// Earliest start of `task` on `hosts` = max(data_ready on the primary
  /// host, every host's free time).
  [[nodiscard]] common::SimTime earliest_start(
      afg::TaskId task, const std::vector<common::HostId>& hosts,
      common::HostId staging_from = {}) const;

  /// Commit a placement; records start/finish and occupies the hosts.
  const Assignment& place(afg::TaskId task, common::SiteId site,
                          std::vector<common::HostId> hosts,
                          common::SimDuration predicted,
                          common::HostId staging_from = {});

  /// Commit a placement at an explicit start time (insertion-based
  /// schedulers like HEFT compute their own slot).  `start` must not
  /// precede the task's data-ready time on the primary host; the host
  /// watermark advances to at least the finish time.
  const Assignment& place_at(afg::TaskId task, common::SiteId site,
                             std::vector<common::HostId> hosts,
                             common::SimDuration predicted,
                             common::SimTime start);

  [[nodiscard]] bool placed(afg::TaskId task) const;
  [[nodiscard]] const Assignment& assignment(afg::TaskId task) const;
  [[nodiscard]] common::SimDuration makespan() const noexcept { return makespan_; }

  /// Assemble the final table (assignments in task-id order).
  [[nodiscard]] ResourceAllocationTable build(std::string app_name,
                                              std::string scheduler_name) const;

 private:
  const afg::Afg& graph_;
  const net::Topology& topology_;
  std::unordered_map<afg::TaskId, Assignment> assignments_;
  std::unordered_map<common::HostId, common::SimTime> host_free_;
  common::SimDuration makespan_ = 0.0;
};

}  // namespace vdce::sched
