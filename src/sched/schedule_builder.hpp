// Schedule bookkeeping shared by every scheduling algorithm.
//
// List scheduling needs, as each task is placed: (a) when its input data
// can be present on a candidate host — parents' finish times plus transfer
// time over the topology for the edge volumes, (b) when the candidate host
// is free — hosts execute one VDCE task at a time (the prototype's model;
// background load is separate and handled by the prediction model), and
// (c) the running makespan.  Centralizing this in ScheduleBuilder makes the
// VDCE scheduler and every baseline produce *comparable* estimated
// schedules: they differ only in their placement decisions.
//
// Grid-scale hot path: evaluating one task against every candidate host at
// every candidate site made data_ready() the dominant cost — O(tasks ×
// hosts × links) across a run.  Two memos eliminate the recomputation
// without changing a single value (tests/test_differential.cpp proves the
// results bit-identical to the retained naive reference):
//
//  * a transfer-time cache keyed on (link_key, bytes): equal keys guarantee
//    the identical LinkSpec, so the cached double is the exact value the
//    direct computation would produce;
//  * a per-task data-ready cache keyed on the candidate's *site*: every
//    candidate at one site sees the same parent→candidate links, hence the
//    same max — except hosts a parent (or the staging server) actually
//    occupies, which take the loopback link; those few "special" hosts fall
//    back to the exact per-host computation.
//
// Both memos are filled lazily and never invalidated: parents are always
// placed before their child is evaluated and placements are immutable.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "net/topology.hpp"
#include "sched/types.hpp"

namespace vdce::sched {

class ScheduleBuilder {
 public:
  ScheduleBuilder(const afg::Afg& graph, const net::Topology& topology);

  /// Earliest time `task`'s inputs can be at `candidate` — max over in-edges
  /// of parent finish + transfer(parent primary host -> candidate, bytes).
  /// Non-dataflow file inputs are charged a staging transfer from the local
  /// site's server if `staging_from` is valid.  Pre: all parents placed.
  [[nodiscard]] common::SimTime data_ready(afg::TaskId task,
                                           common::HostId candidate,
                                           common::HostId staging_from = {}) const;

  /// When the host finishes its last assigned VDCE task (0 if none).
  [[nodiscard]] common::SimTime host_free(common::HostId host) const;

  /// Earliest start of `task` on `hosts` = max(data_ready on the primary
  /// host, every host's free time).
  [[nodiscard]] common::SimTime earliest_start(
      afg::TaskId task, const std::vector<common::HostId>& hosts,
      common::HostId staging_from = {}) const;

  /// Single-host overload for the hot candidate loop: no vector needed.
  [[nodiscard]] common::SimTime earliest_start(afg::TaskId task,
                                               common::HostId host,
                                               common::HostId staging_from = {}) const;

  /// Commit a placement; records start/finish and occupies the hosts.
  const Assignment& place(afg::TaskId task, common::SiteId site,
                          std::vector<common::HostId> hosts,
                          common::SimDuration predicted,
                          common::HostId staging_from = {});

  /// Commit a placement at an explicit start time (insertion-based
  /// schedulers like HEFT compute their own slot).  `start` must not
  /// precede the task's data-ready time on the primary host; the host
  /// watermark advances to at least the finish time.
  const Assignment& place_at(afg::TaskId task, common::SiteId site,
                             std::vector<common::HostId> hosts,
                             common::SimDuration predicted,
                             common::SimTime start);

  [[nodiscard]] bool placed(afg::TaskId task) const;
  [[nodiscard]] const Assignment& assignment(afg::TaskId task) const;
  [[nodiscard]] common::SimDuration makespan() const noexcept { return makespan_; }

  /// Assemble the final table (assignments in task-id order).
  [[nodiscard]] ResourceAllocationTable build(std::string app_name,
                                              std::string scheduler_name) const;

 private:
  /// Per-task lazy data-ready cache: one value per candidate site, plus the
  /// short list of hosts whose loopback links make them exceptions.
  struct ReadyMemo {
    bool init = false;
    common::HostId staging;  ///< staging_from the memo was filled under
    std::vector<common::HostId> special_hosts;  ///< parent primaries (+ staging)
    std::vector<common::SimTime> by_site;       ///< -1 = not yet computed
  };

  struct TransferKey {
    std::uint64_t link;
    std::uint64_t bytes_bits;
    bool operator==(const TransferKey&) const = default;
  };
  struct TransferKeyHash {
    std::size_t operator()(const TransferKey& k) const noexcept {
      std::uint64_t h = k.link * 0x9e3779b97f4a7c15ULL;
      h ^= k.bytes_bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  /// The exact per-host computation (used to fill the memo and for special
  /// hosts).
  [[nodiscard]] common::SimTime data_ready_exact(afg::TaskId task,
                                                 common::HostId candidate,
                                                 common::HostId staging_from) const;
  [[nodiscard]] common::SimDuration transfer(common::HostId from,
                                             common::HostId to,
                                             double bytes) const;
  void touch_host(common::HostId host);

  const afg::Afg& graph_;
  const net::Topology& topology_;
  std::vector<Assignment> assignments_;     ///< by task id
  std::vector<char> task_placed_;           ///< by task id
  std::vector<common::SimTime> host_free_;  ///< by host id
  std::size_t placed_count_ = 0;
  mutable std::vector<ReadyMemo> ready_memo_;  ///< by task id
  mutable std::unordered_map<TransferKey, common::SimDuration, TransferKeyHash>
      transfer_memo_;
  common::SimDuration makespan_ = 0.0;
};

/// Incremental ready-list priority queue for list schedulers: pops the
/// highest-level task, ties broken by lowest task id — the same total order
/// the previous linear scan over an ordered set used, at O(log n) per
/// operation.  Each task must be pushed at most once (the caller's
/// unplaced-parent counters guarantee that).
class ReadyQueue {
 public:
  void push(afg::TaskId task, double level) { heap_.push(Entry{level, task}); }

  /// Pop the highest-priority task.  Pre: !empty().
  afg::TaskId pop() {
    afg::TaskId t = heap_.top().task;
    heap_.pop();
    return t;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    double level;
    afg::TaskId task;
  };
  struct Lower {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.level != b.level) return a.level < b.level;
      return a.task.value() > b.task.value();
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Lower> heap_;
};

}  // namespace vdce::sched
