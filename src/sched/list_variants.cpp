#include "sched/list_variants.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "afg/levels.hpp"
#include "sched/schedule_builder.hpp"
#include "sched/site_scheduler.hpp"

namespace vdce::sched {

namespace {

/// One feasible (site, machine, predicted) option for a sequential task.
struct Option {
  common::SiteId site;
  RankedHost host;
};

/// Everything the list variants need precomputed: per-task performance
/// records, feasible options across the candidate sites, and the mean
/// execution / edge-cost model shared with HEFT's rank computation.
struct Precomputed {
  std::vector<db::TaskPerfRecord> perf;
  std::vector<std::vector<Option>> options;  ///< by task id
  std::vector<double> mean_exec;             ///< by task id
  net::LinkSpec lan;
  net::LinkSpec wan;

  [[nodiscard]] double edge_cost(const afg::Afg& graph,
                                 const afg::Edge& e) const {
    double bytes = graph.edge_bytes(e);
    return 0.5 * (lan.transfer_time(bytes) + wan.transfer_time(bytes));
  }
};

common::Expected<Precomputed> precompute(const afg::Afg& graph,
                                         const SchedulerContext& context,
                                         const std::vector<common::SiteId>& sites) {
  Precomputed pre;
  const db::SiteRepository& local_repo = context.repo(context.local_site);
  pre.perf.resize(graph.task_count());
  pre.options.resize(graph.task_count());
  pre.mean_exec.resize(graph.task_count(), 0.0);
  for (const afg::TaskNode& node : graph.tasks()) {
    auto record = resolve_perf(node, local_repo.tasks());
    if (!record) return record.error();
    pre.perf[node.id.value()] = *record;
    for (common::SiteId s : sites) {
      for (RankedHost& rh : HostSelectionAlgorithm::feasible_hosts(
               node, pre.perf[node.id.value()], s, context.repo(s),
               *context.predictor)) {
        pre.options[node.id.value()].push_back(Option{s, std::move(rh)});
      }
    }
    if (pre.options[node.id.value()].empty()) {
      return common::Error{common::ErrorCode::kNoFeasibleResource,
                           "no feasible machine for " + node.instance_name};
    }
    double acc = 0.0;
    for (const Option& o : pre.options[node.id.value()]) {
      acc += o.host.predicted;
    }
    pre.mean_exec[node.id.value()] =
        acc / static_cast<double>(pre.options[node.id.value()].size());
  }
  pre.lan = context.topology->site(context.local_site).lan;
  pre.wan = context.topology->default_wan();
  return pre;
}

/// Fig. 3 group rule at the cheapest bidding site, shared with the
/// baselines: parallel groups are placed as a unit.
common::Expected<HostBid> parallel_bid(const afg::TaskNode& node,
                                       const db::TaskPerfRecord& perf,
                                       const std::vector<common::SiteId>& sites,
                                       const SchedulerContext& context) {
  common::Expected<HostBid> best =
      common::Error{common::ErrorCode::kNoFeasibleResource,
                    "no site can host parallel task " + node.instance_name};
  for (common::SiteId s : sites) {
    auto bid = HostSelectionAlgorithm::best_bid(node, perf, s, context.repo(s),
                                                *context.predictor);
    if (bid && (!best || bid->predicted < best->predicted)) best = bid;
  }
  return best;
}

/// Top levels (ALAP companion of the upward rank): t(n) = max over parents
/// p of (t(p) + w(p) + c(p->n)); 0 for entry tasks.  Walked in topological
/// order, so every parent is final before its children read it.
common::Expected<std::vector<double>> top_levels(const afg::Afg& graph,
                                                 const Precomputed& pre) {
  auto order = graph.topological_order();
  if (!order) return order.error();
  std::vector<double> t(graph.task_count(), 0.0);
  for (afg::TaskId task : *order) {
    for (const afg::Edge& e : graph.in_edges(task)) {
      double via = t[e.from.value()] + pre.mean_exec[e.from.value()] +
                   pre.edge_cost(graph, e);
      t[task.value()] = std::max(t[task.value()], via);
    }
  }
  return t;
}

/// Shared ready-list driver: pop tasks by `priority` (descending, ties by
/// id), let `pick` choose among the feasible sequential options, and book
/// everything through ScheduleBuilder.  Parallel groups take the Fig. 3
/// rule at the cheapest bidding site.
template <typename PickFn>
common::Expected<ResourceAllocationTable> run_list_variant(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<common::SiteId>& sites, const Precomputed& pre,
    const std::vector<double>& priority, const std::string& scheduler_name,
    PickFn&& pick) {
  ScheduleBuilder builder(graph, *context.topology);
  const common::HostId staging =
      context.topology->site(context.local_site).server;

  ReadyQueue ready;
  std::vector<std::size_t> waiting(graph.task_count(), 0);
  for (const afg::TaskNode& t : graph.tasks()) {
    waiting[t.id.value()] = graph.parents(t.id).size();
  }
  for (afg::TaskId t : graph.entry_tasks()) ready.push(t, priority[t.value()]);

  std::size_t placed = 0;
  while (!ready.empty()) {
    afg::TaskId task = ready.pop();
    const afg::TaskNode& node = graph.task(task);

    if (node.props.mode == afg::ComputationMode::kParallel &&
        node.props.num_nodes > 1) {
      auto bid = parallel_bid(node, pre.perf[task.value()], sites, context);
      if (!bid) return bid.error();
      builder.place(task, bid->site, bid->hosts, bid->predicted, staging);
    } else {
      const Option& chosen = pick(task, pre.options[task.value()], builder);
      builder.place(task, chosen.site, {chosen.host.record.host},
                    chosen.host.predicted, staging);
    }
    ++placed;
    for (afg::TaskId child : graph.children(task)) {
      if (--waiting[child.value()] == 0) {
        ready.push(child, priority[child.value()]);
      }
    }
  }
  if (placed != graph.task_count()) {
    return common::Error{common::ErrorCode::kInternal,
                         scheduler_name + " placed " + std::to_string(placed) +
                             " of " + std::to_string(graph.task_count()) +
                             " tasks"};
  }
  return builder.build(graph.name(), scheduler_name);
}

/// Earliest-finish pick over all feasible machines — the non-insertion
/// placement b-level and t-level share.  Deterministic: the option order is
/// (site order, then (predicted, host id)), and strict less keeps the first
/// of equals.
struct EarliestFinishPick {
  common::HostId staging;
  const Option& operator()(afg::TaskId task, const std::vector<Option>& options,
                           const ScheduleBuilder& b) const {
    const Option* best = &options.front();
    double best_finish = 0.0;
    bool have = false;
    for (const Option& o : options) {
      double finish = b.earliest_start(task, o.host.record.host, staging) +
                      o.host.predicted;
      if (!have || finish < best_finish) {
        have = true;
        best = &o;
        best_finish = finish;
      }
    }
    return *best;
  }
};

}  // namespace

common::Expected<ResourceAllocationTable> BLevelScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  assert(context.topology != nullptr && context.predictor != nullptr);
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  const auto sites = candidate_site_set(context, policy_);
  auto pre = precompute(graph, context, sites);
  if (!pre) return pre.error();

  // Bottom level == upward rank: mean execution plus mean edge cost down to
  // an exit node.  Higher = more critical = scheduled first.
  auto ranks = afg::compute_levels_with_comm(
      graph,
      [&](const afg::TaskNode& node) { return pre->mean_exec[node.id.value()]; },
      [&](const afg::Edge& e) { return pre->edge_cost(graph, e); });
  if (!ranks) return ranks.error();

  const common::HostId staging =
      context.topology->site(context.local_site).server;
  return run_list_variant(graph, context, sites, *pre, ranks->level, name(),
                          EarliestFinishPick{staging});
}

common::Expected<ResourceAllocationTable> TLevelScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  assert(context.topology != nullptr && context.predictor != nullptr);
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  const auto sites = candidate_site_set(context, policy_);
  auto pre = precompute(graph, context, sites);
  if (!pre) return pre.error();

  auto t_levels = top_levels(graph, *pre);
  if (!t_levels) return t_levels.error();
  // Smallest top level first (the task that can start earliest): negate so
  // the shared descending-priority queue pops ASAP order.
  std::vector<double> priority(t_levels->size());
  for (std::size_t i = 0; i < t_levels->size(); ++i) {
    priority[i] = -(*t_levels)[i];
  }

  const common::HostId staging =
      context.topology->site(context.local_site).server;
  return run_list_variant(graph, context, sites, *pre, priority, name(),
                          EarliestFinishPick{staging});
}

common::Expected<ResourceAllocationTable> WorkStealingScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  assert(context.topology != nullptr && context.predictor != nullptr);
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  const auto sites = candidate_site_set(context, policy_);
  auto pre = precompute(graph, context, sites);
  if (!pre) return pre.error();

  // Rank like b-level (critical tasks are offered to thieves first), but
  // placement is pull-driven: the machine that can *start* the task
  // earliest steals it, whatever its speed — availability wins, prediction
  // only breaks ties.
  auto ranks = afg::compute_levels_with_comm(
      graph,
      [&](const afg::TaskNode& node) { return pre->mean_exec[node.id.value()]; },
      [&](const afg::Edge& e) { return pre->edge_cost(graph, e); });
  if (!ranks) return ranks.error();

  const common::HostId staging =
      context.topology->site(context.local_site).server;
  auto steal_pick = [&](afg::TaskId task, const std::vector<Option>& options,
                        const ScheduleBuilder& b) -> const Option& {
    const Option* best = &options.front();
    double best_start = 0.0;
    bool have = false;
    for (const Option& o : options) {
      double start = b.earliest_start(task, o.host.record.host, staging);
      bool better =
          !have || start < best_start ||
          (start == best_start && o.host.predicted < best->host.predicted);
      if (better) {
        have = true;
        best = &o;
        best_start = start;
      }
    }
    return *best;
  };
  return run_list_variant(graph, context, sites, *pre, ranks->level, name(),
                          steal_pick);
}

}  // namespace vdce::sched
