// Retained naive reference implementation of the Fig. 2 site scheduler.
//
// The production scheduler (site_scheduler.cpp + schedule_builder.cpp) is
// optimized for grid-scale inputs: adjacency-indexed graph queries, a
// memoized data-ready/transfer cache, an incremental ready-list heap, and
// flat per-host bookkeeping.  Those optimizations must be *exact* — they may
// never change a single placement or timestamp.  This file keeps the
// straightforward pre-optimization algorithm alive as the oracle:
//
//  * bookkeeping in hash maps, rebuilt values on every query;
//  * per-task data-ready recomputed by scanning the full edge list;
//  * the ready list as an ordered set with a linear highest-level scan;
//  * no memoization of transfer times or earliest-finish evaluations.
//
// tests/test_differential.cpp asserts that the optimized scheduler's
// allocation tables are bit-identical (hosts, sites, est_start/est_finish,
// schedule_length) to this reference across the generated corpus, and
// bench/bench_scale.cpp reports the speedup of the optimized path against
// this implementation.  Keep this file dumb: clarity and stability beat
// speed here by design.
#pragma once

#include <string>

#include "sched/site_scheduler.hpp"

namespace vdce::sched::reference {

/// The assignment phase of Fig. 2 (steps 6-7) exactly as the naive
/// implementation performed it.  Same contract as assign_with_outputs().
common::Expected<ResourceAllocationTable> assign_with_outputs_naive(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<HostSelectionOutput>& outputs,
    const SchedulingPolicy& options, const std::string& scheduler_name);

/// The full Fig. 2 pipeline (candidate sites -> host selection -> naive
/// assignment).  Produces a table that must be bit-identical to
/// VdceSiteScheduler::schedule() under the same options, except for the
/// scheduler_name, which is "<name>-naive".
common::Expected<ResourceAllocationTable> schedule_naive(
    const afg::Afg& graph, const SchedulerContext& context,
    const SchedulingPolicy& options = {});

}  // namespace vdce::sched::reference
