// Host Selection Algorithm — Figure 3 of the paper.
//
//   1. Retrieve task-specific parameters of AFG tasks from the
//      task-performance database.
//   2. Retrieve resource-specific parameters of the resource set
//      R_set = {R1..Rm} from the resource-performance database.
//   3. task_queue = all tasks of the AFG.
//   4. For each task in task_queue: evaluate Predict(task, R) for all R in
//      R_set and assign the task to the R minimizing it.
//
// Each site runs this against its own repository when the AFG is multicast
// to it (Fig. 2, steps 3-5), then returns the per-task best machine and
// predicted time to the requesting site.  "For parallel tasks, the host
// selection algorithm is updated to select the number of machines required
// within the site" (§3) — handled here by picking the `num_nodes` fastest
// feasible machines and predicting the group time.
//
// Feasibility of a machine for a task combines: the host is up in the
// resource DB; the task-constraints database lists an executable for it on
// that host (a task with *no* constraint entries anywhere is treated as a
// library task installed everywhere); the user's preferred machine /
// machine-type properties match; and the prediction model deems memory
// sufficient.
#pragma once

#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"
#include "db/site_repository.hpp"
#include "predict/model.hpp"
#include "sched/support.hpp"

namespace vdce::sched {

/// One site's answer for one task: the chosen machine(s) and the predicted
/// execution time (the "mapping information ... machine name and predicted
/// execution time" each remote site sends back, §3).
struct HostBid {
  common::SiteId site;
  std::vector<common::HostId> hosts;
  common::SimDuration predicted = 0.0;
};

/// Reference into a site's host-pool snapshot: pool index of a feasible
/// machine plus its sequential prediction.  Sixteen bytes instead of a full
/// ResourceRecord copy, so ranked lists can be cached per (task, site).
struct RankedRef {
  std::uint32_t index = 0;
  common::SimDuration predicted = 0.0;
};

/// The full output of one site's host-selection run.  Tasks with no
/// feasible machine at this site are simply absent from `bids`.
///
/// run() additionally snapshots the site's available hosts and retains every
/// task's ranked feasible list (as indices into the snapshot).  Repository
/// state is constant for the duration of one schedule() call, so
/// assign_with_outputs can reuse these instead of recomputing
/// feasible_hosts per (task, site) — the O(tasks × hosts) prediction
/// recomputation this cache eliminates is pure overhead.  Outputs built
/// elsewhere (e.g. reconstructed from fabric bid replies) may leave
/// `ranked` empty; consumers must fall back to feasible_hosts then.
struct HostSelectionOutput {
  common::SiteId site;
  std::unordered_map<afg::TaskId, HostBid> bids;
  /// Available hosts of the site at run() time, sorted by host id.
  std::vector<db::ResourceRecord> host_pool;
  /// Per task id: feasible machines as indices into `host_pool`, sorted by
  /// (predicted, host).  Valid iff `ranked.size() == graph.task_count()`.
  std::vector<std::vector<RankedRef>> ranked;
};

/// A feasible machine for a task with its predicted time, ranked ascending
/// by prediction.  Exposed so the site scheduler can consult alternatives
/// when the best machine is already occupied.
struct RankedHost {
  db::ResourceRecord record;
  common::SimDuration predicted = 0.0;
};

class HostSelectionAlgorithm {
 public:
  /// Fig. 3 over every task of the graph at one site.
  static common::Expected<HostSelectionOutput> run(
      const afg::Afg& graph, common::SiteId site,
      const db::SiteRepository& repo, const predict::Predictor& predictor);

  /// Feasible machines of `site` for one task, sorted by predicted time
  /// (sequential prediction per machine).  Empty when none qualify.
  static std::vector<RankedHost> feasible_hosts(
      const afg::TaskNode& node, const db::TaskPerfRecord& perf,
      common::SiteId site, const db::SiteRepository& repo,
      const predict::Predictor& predictor);

  /// Best bid for one task at one site, honouring parallel node counts.
  static common::Expected<HostBid> best_bid(const afg::TaskNode& node,
                                            const db::TaskPerfRecord& perf,
                                            common::SiteId site,
                                            const db::SiteRepository& repo,
                                            const predict::Predictor& predictor);

  /// Core of feasible_hosts over a pre-fetched host pool: filter, predict,
  /// and rank by (predicted, host id) without copying any record.  `pool`
  /// must be the site's available hosts sorted by id (the order
  /// available_hosts returns).
  static std::vector<RankedRef> rank_hosts(
      const afg::TaskNode& node, const db::TaskPerfRecord& perf,
      const std::vector<db::ResourceRecord>& pool,
      const db::SiteRepository& repo, const predict::Predictor& predictor);
};

}  // namespace vdce::sched
