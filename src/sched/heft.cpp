#include "sched/heft.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "afg/levels.hpp"
#include "sched/site_scheduler.hpp"

namespace vdce::sched {

namespace {

/// Per-machine schedule with insertion slots.
struct MachineSchedule {
  struct Slot {
    common::SimTime start;
    common::SimTime finish;
  };
  std::vector<Slot> slots;  ///< sorted by start

  /// Earliest start >= ready that fits `duration`, allowing insertion.
  [[nodiscard]] common::SimTime earliest_fit(common::SimTime ready,
                                             common::SimDuration duration) const {
    common::SimTime candidate = ready;
    for (const Slot& slot : slots) {
      if (candidate + duration <= slot.start + 1e-12) return candidate;
      candidate = std::max(candidate, slot.finish);
    }
    return candidate;
  }

  void insert(common::SimTime start, common::SimDuration duration) {
    Slot s{start, start + duration};
    auto it = std::lower_bound(
        slots.begin(), slots.end(), s,
        [](const Slot& a, const Slot& b) { return a.start < b.start; });
    slots.insert(it, s);
  }
};

}  // namespace

common::Expected<ResourceAllocationTable> HeftScheduler::schedule(
    const afg::Afg& graph, const SchedulerContext& context) {
  assert(context.topology != nullptr && context.predictor != nullptr);
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();

  const net::Topology& topology = *context.topology;
  const db::SiteRepository& local_repo = context.repo(context.local_site);
  const auto sites = candidate_site_set(context, {});

  // Feasible machines with predictions, per task.
  struct Option {
    common::SiteId site;
    RankedHost host;
  };
  std::vector<std::vector<Option>> options(graph.task_count());
  std::vector<db::TaskPerfRecord> perf(graph.task_count());
  for (const afg::TaskNode& node : graph.tasks()) {
    auto record = resolve_perf(node, local_repo.tasks());
    if (!record) return record.error();
    perf[node.id.value()] = *record;
    for (common::SiteId s : sites) {
      for (RankedHost& rh : HostSelectionAlgorithm::feasible_hosts(
               node, perf[node.id.value()], s, context.repo(s),
               *context.predictor)) {
        options[node.id.value()].push_back(Option{s, std::move(rh)});
      }
    }
    if (options[node.id.value()].empty()) {
      return common::Error{common::ErrorCode::kNoFeasibleResource,
                           "no feasible machine for " + node.instance_name};
    }
  }

  // Mean execution time per task and a representative mean link for edge
  // costs (average of LAN and WAN of the local site's universe).
  auto mean_exec = [&](afg::TaskId t) {
    double acc = 0.0;
    for (const Option& o : options[t.value()]) acc += o.host.predicted;
    return acc / static_cast<double>(options[t.value()].size());
  };
  net::LinkSpec lan = topology.site(context.local_site).lan;
  net::LinkSpec wan = topology.default_wan();
  auto mean_edge_cost = [&](const afg::Edge& e) {
    double bytes = graph.edge_bytes(e);
    return 0.5 * (lan.transfer_time(bytes) + wan.transfer_time(bytes));
  };

  auto ranks = afg::compute_levels_with_comm(
      graph, [&](const afg::TaskNode& node) { return mean_exec(node.id); },
      mean_edge_cost);
  if (!ranks) return ranks.error();

  // Placement in decreasing rank order with insertion-based EFT.  Flat
  // per-host slot lists (indexed by host id) replace the former ordered map.
  std::vector<MachineSchedule> machines(topology.host_count());
  ScheduleBuilder builder(graph, topology);  // for data_ready + final table
  const common::HostId staging = topology.site(context.local_site).server;

  // ScheduleBuilder enforces "parents placed first"; rank order guarantees
  // it (rank of a parent strictly exceeds any child's).
  for (afg::TaskId task : ranks->by_priority()) {
    const afg::TaskNode& node = graph.task(task);
    const auto need = node.props.mode == afg::ComputationMode::kParallel
                          ? static_cast<std::size_t>(node.props.num_nodes)
                          : std::size_t{1};

    if (need > 1) {
      // Parallel groups fall back to the Fig. 3 group rule (HEFT is defined
      // for single-machine tasks); occupancy handled by ScheduleBuilder.
      auto bid = HostSelectionAlgorithm::best_bid(
          node, perf[task.value()], options[task.value()].front().site,
          context.repo(options[task.value()].front().site),
          *context.predictor);
      if (!bid) return bid.error();
      const Assignment& a =
          builder.place(task, bid->site, bid->hosts, bid->predicted, staging);
      for (common::HostId h : a.hosts) {
        machines[h.value()].insert(a.est_start, a.est_finish - a.est_start);
      }
      continue;
    }

    const Option* best = nullptr;
    common::SimTime best_start = 0.0;
    double best_finish = 0.0;
    for (const Option& o : options[task.value()]) {
      common::SimTime ready = builder.data_ready(task, o.host.record.host,
                                                 staging);
      common::SimTime start = machines[o.host.record.host.value()].earliest_fit(
          ready, o.host.predicted);
      double finish = start + o.host.predicted;
      if (best == nullptr || finish < best_finish) {
        best = &o;
        best_start = start;
        best_finish = finish;
      }
    }
    assert(best != nullptr);
    machines[best->host.record.host.value()].insert(best_start,
                                                    best->host.predicted);
    // ScheduleBuilder cannot express insertion (its host_free is a single
    // watermark), so we register the placement manually.
    builder.place_at(task, best->site, {best->host.record.host},
                     best->host.predicted, best_start);
  }

  return builder.build(graph.name(), name());
}

}  // namespace vdce::sched
