// Baseline schedulers for the evaluation (experiments E1/E2).
//
// The paper's claim is relative: level-based, prediction-driven list
// scheduling assigns "the most suitable available resources ... to minimize
// the schedule length".  Quantifying that needs comparators; these are the
// standard ones from the literature the paper cites:
//
//  * RandomScheduler     — uniformly random feasible machine per task.
//  * RoundRobinScheduler — cycle through machines regardless of speed/load.
//  * MinLoadScheduler    — greedy least-loaded machine (monitoring data but
//                          no per-task prediction): isolates the value of
//                          the prediction model.
//  * MinMinScheduler     — classic min-min batch heuristic over ready
//                          tasks: a strong prediction-driven comparator.
//  * MaxMinScheduler     — max-min: same batch sweep, but the ready task
//                          whose best completion time is *largest* goes
//                          first, front-loading long tasks so they overlap
//                          the many short ones.
//  * local-only VDCE     — VdceSiteScheduler with AccessDomain::kLocalSite:
//                          isolates the value of wide-area (k-site)
//                          scheduling (E2).
//
// All baselines share ScheduleBuilder bookkeeping, so reported schedule
// lengths are directly comparable.  Tasks are processed in topological
// order (parents first) — required for data-ready computation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sched/host_selection.hpp"
#include "sched/schedule_builder.hpp"
#include "sched/support.hpp"

namespace vdce::sched {

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;

 private:
  std::uint64_t seed_;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;
};

class MinLoadScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "min-load"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;
};

class MinMinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "min-min"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;
};

class MaxMinScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "max-min"; }
  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;
};

/// Factory covering every named scheduler in the bench harness, including
/// "vdce-level", "vdce-level-paper" and "vdce-local".
common::Expected<std::unique_ptr<Scheduler>> make_scheduler(
    const std::string& name, std::uint64_t seed = 42);

}  // namespace vdce::sched
