// Deadline/budget-constrained (DBC) scheduling strategies
// (docs/ECONOMY.md; Buyya/Murshed/Abramson, arXiv cs/0203020).
//
// Two registry strategies turn the economy plane's prices (econ::CostModel
// via SchedulerContext::prices) and the policy's deadline/budget constraints
// into placement decisions:
//
//  * "dbc-cost" — cost-optimisation: minimise quoted spend subject to the
//    deadline.  Rank by upward rank (b-level); for each ready task keep the
//    candidates whose projected finish plus the mean remaining path still
//    meets the deadline, and among those take the cheapest quote (compute
//    price x predicted time + in-edge transfer prices).  When no candidate
//    can meet the deadline, fall back to earliest finish — best effort, the
//    admission controller reports the overrun.
//  * "dbc-time" — time-optimisation: minimise completion time subject to
//    the budget.  Same ranking; a candidate is affordable iff the spend
//    committed so far + its quote + an optimistic floor for the unplaced
//    remainder (each task at its cheapest feasible host, transfers free)
//    stays within budget.  Among affordable candidates take the earliest
//    finish; when none is affordable, take the cheapest — minimising the
//    overrun that the kBudgetExceeded admission gate will then reject.
//
// With no prices in the context or no constraints in the policy there is no
// economic objective, and both strategies delegate to the default VDCE
// assignment phase (assign_with_outputs) under their own policy — placements
// byte-identical to "vdce-level"/"vdce-level-paper" across the whole
// objective x priority grid (tests/test_differential.cpp pins this), so the
// strategies inherit the staleness grid, ExecutionReport attribution, and
// every existing plane for free.
#pragma once

#include <string>

#include "sched/policy.hpp"
#include "sched/strategy.hpp"

namespace vdce::sched {

class DbcStrategy final : public SchedulerStrategy {
 public:
  enum class Mode { kCost, kTime };

  DbcStrategy(Mode mode, SchedulingPolicy policy)
      : mode_(mode), policy_(std::move(policy)) {}

  [[nodiscard]] std::string name() const override {
    return mode_ == Mode::kCost ? "dbc-cost" : "dbc-time";
  }

  common::Expected<ResourceAllocationTable> assign(
      const afg::Afg& graph, const SchedulerContext& context,
      const std::vector<HostSelectionOutput>& outputs) override;

 private:
  Mode mode_;
  SchedulingPolicy policy_;
};

}  // namespace vdce::sched
