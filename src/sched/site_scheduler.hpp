// Site Scheduler Algorithm — Figure 2 of the paper.
//
//   1. Receive the application flow graph from the Application Editor.
//   2. Select the k nearest VDCE neighbour sites S_remote = {S1..Sk}.
//   3. Multicast the AFG to each site in S_remote.
//   4. Call the Host-Selection Algorithm (local and remote sites).
//   5. Receive each site's host-selection output.
//   6. ready_tasks = entry nodes.
//   7. For each task in ready_tasks (highest level first):
//        - entry task / no input required:
//            assign to the site minimizing Predict(task, R_j);
//        - otherwise:
//            Time_total(task, S_j) = transfer_time(S_parent, S_j) x file_size
//                                     + Predict(task, R_j)
//            assign to the site minimizing Time_total;
//        store the allocation, remove the task from ready_tasks, add its
//        children (once all their parents are placed).
//
// Priorities come from the level computation (levels.hpp): "the node with a
// higher level value will have a higher priority for scheduling" (§3).
//
// Two fidelity modes, selectable for ablation (bench_site_scheduler):
//  * kPaperObjective  — the literal Fig. 2 objective: per-site transfer
//    term plus the static host-selection prediction, ignoring machine
//    occupancy.  Matches the pseudocode exactly.
//  * kAvailabilityAware (default) — same structure, but a site's candidate
//    machine list is re-ranked by earliest *finish* given current machine
//    occupancy and per-edge data arrival, which is what any list scheduler
//    must do once several tasks land on the same best machine.  This is the
//    behaviour the prototype's "best available resources" phrasing implies.
#pragma once

#include <string>

#include "sched/host_selection.hpp"
#include "sched/policy.hpp"
#include "sched/schedule_builder.hpp"
#include "sched/support.hpp"

namespace vdce::sched {

/// Deprecated alias: the scheduler-strategy plane replaced the raw option
/// struct with the SchedulingPolicy value type (sched/policy.hpp).  Every
/// pre-existing field kept its name and default, so code written against
/// the alias compiles and behaves unchanged; spell SchedulingPolicy and
/// select algorithms via `policy.strategy`.  No in-tree code uses the alias
/// any more; it will be removed in a future release (docs/SCHEDULING.md).
using SiteSchedulerOptions
    [[deprecated("use sched::SchedulingPolicy (sched/policy.hpp); "
                 "see docs/SCHEDULING.md for the removal schedule")]] =
        SchedulingPolicy;

/// The assignment phase of Fig. 2 (steps 6-7), taking host-selection
/// outputs that were already collected — locally by VdceSiteScheduler, or
/// over the fabric by the distributed runtime (real AFG multicast).
/// `outputs` must contain one entry per candidate site, local site first.
common::Expected<ResourceAllocationTable> assign_with_outputs(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<HostSelectionOutput>& outputs,
    const SchedulingPolicy& options, const std::string& scheduler_name);

/// The candidate site set of Fig. 2 steps 1-2: the local site plus its k
/// nearest neighbours, clipped by the user's access domain.
std::vector<common::SiteId> candidate_site_set(
    const SchedulerContext& context, const SchedulingPolicy& options);

class VdceSiteScheduler final : public Scheduler {
 public:
  explicit VdceSiteScheduler(SchedulingPolicy options = {})
      : options_(options) {}

  [[nodiscard]] std::string name() const override {
    return options_.objective == SiteObjective::kPaperObjective
               ? "vdce-level-paper"
               : "vdce-level";
  }

  common::Expected<ResourceAllocationTable> schedule(
      const afg::Afg& graph, const SchedulerContext& context) override;

 private:
  SchedulingPolicy options_;
};

}  // namespace vdce::sched
