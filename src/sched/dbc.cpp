#include "sched/dbc.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "afg/levels.hpp"
#include "econ/econ.hpp"
#include "sched/schedule_builder.hpp"
#include "sched/site_scheduler.hpp"

namespace vdce::sched {

namespace {

/// One feasible (site, machine, predicted) option for a sequential task.
struct Option {
  common::SiteId site;
  RankedHost host;
};

/// Per-task feasible options plus the mean-cost model the rank computation
/// shares with the list variants, extended with the cheapest single-host
/// compute quote per task (the optimistic floor dbc-time budgets against).
struct Precomputed {
  std::vector<db::TaskPerfRecord> perf;
  std::vector<std::vector<Option>> options;  ///< by task id
  std::vector<double> mean_exec;             ///< by task id
  std::vector<double> min_quote;             ///< by task id; cheapest compute
  net::LinkSpec lan;
  net::LinkSpec wan;

  [[nodiscard]] double edge_time(const afg::Afg& graph,
                                 const afg::Edge& e) const {
    double bytes = graph.edge_bytes(e);
    return 0.5 * (lan.transfer_time(bytes) + wan.transfer_time(bytes));
  }
};

common::Expected<Precomputed> precompute(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<common::SiteId>& sites, const econ::CostModel& prices) {
  Precomputed pre;
  const db::SiteRepository& local_repo = context.repo(context.local_site);
  pre.perf.resize(graph.task_count());
  pre.options.resize(graph.task_count());
  pre.mean_exec.resize(graph.task_count(), 0.0);
  pre.min_quote.resize(graph.task_count(), 0.0);
  for (const afg::TaskNode& node : graph.tasks()) {
    auto record = resolve_perf(node, local_repo.tasks());
    if (!record) return record.error();
    pre.perf[node.id.value()] = *record;
    for (common::SiteId s : sites) {
      for (RankedHost& rh : HostSelectionAlgorithm::feasible_hosts(
               node, pre.perf[node.id.value()], s, context.repo(s),
               *context.predictor)) {
        pre.options[node.id.value()].push_back(Option{s, std::move(rh)});
      }
    }
    if (pre.options[node.id.value()].empty()) {
      return common::Error{common::ErrorCode::kNoFeasibleResource,
                           "no feasible machine for " + node.instance_name};
    }
    double acc = 0.0;
    double cheapest = 0.0;
    bool have = false;
    for (const Option& o : pre.options[node.id.value()]) {
      acc += o.host.predicted;
      const double quote =
          prices.cpu_price(o.host.record.host, o.host.record.speed_mflops) *
          o.host.predicted;
      if (!have || quote < cheapest) {
        have = true;
        cheapest = quote;
      }
    }
    pre.mean_exec[node.id.value()] =
        acc / static_cast<double>(pre.options[node.id.value()].size());
    // A parallel group costs at least num_nodes single-host quotes, so the
    // single-host minimum stays a valid lower bound for every node kind.
    pre.min_quote[node.id.value()] = cheapest;
  }
  pre.lan = context.topology->site(context.local_site).lan;
  pre.wan = context.topology->default_wan();
  return pre;
}

/// Fig. 3 group rule at the cheapest bidding site (by time, as every other
/// strategy places groups — the DBC refinements below only arbitrate the
/// sequential options).
common::Expected<HostBid> parallel_bid(const afg::TaskNode& node,
                                       const db::TaskPerfRecord& perf,
                                       const std::vector<common::SiteId>& sites,
                                       const SchedulerContext& context) {
  common::Expected<HostBid> best =
      common::Error{common::ErrorCode::kNoFeasibleResource,
                    "no site can host parallel task " + node.instance_name};
  for (common::SiteId s : sites) {
    auto bid = HostSelectionAlgorithm::best_bid(node, perf, s, context.repo(s),
                                                *context.predictor);
    if (bid && (!best || bid->predicted < best->predicted)) best = bid;
  }
  return best;
}

/// The constrained list scheduler shared by both modes.
common::Expected<ResourceAllocationTable> schedule_constrained(
    const afg::Afg& graph, const SchedulerContext& context,
    const SchedulingPolicy& policy, DbcStrategy::Mode mode,
    const std::string& scheduler_name) {
  assert(context.topology != nullptr && context.predictor != nullptr);
  assert(context.prices != nullptr);
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  const econ::CostModel& prices = *context.prices;
  const auto sites = candidate_site_set(context, policy);
  auto pre = precompute(graph, context, sites, prices);
  if (!pre) return pre.error();

  // Upward rank (b-level): mean execution plus mean edge time down to an
  // exit node.  rank - mean_exec estimates the path *after* a task
  // finishes, which is what the deadline check needs.
  auto ranks = afg::compute_levels_with_comm(
      graph,
      [&](const afg::TaskNode& node) { return pre->mean_exec[node.id.value()]; },
      [&](const afg::Edge& e) { return pre->edge_time(graph, e); });
  if (!ranks) return ranks.error();

  ScheduleBuilder builder(graph, *context.topology);
  const common::HostId staging =
      context.topology->site(context.local_site).server;

  ReadyQueue ready;
  std::vector<std::size_t> waiting(graph.task_count(), 0);
  for (const afg::TaskNode& t : graph.tasks()) {
    waiting[t.id.value()] = graph.parents(t.id).size();
  }
  for (afg::TaskId t : graph.entry_tasks()) {
    ready.push(t, ranks->level[t.value()]);
  }

  // Budget bookkeeping: quotes committed so far plus the optimistic floor
  // for everything not yet placed.
  double committed = 0.0;
  double floor_rest = 0.0;
  for (double q : pre->min_quote) floor_rest += q;
  // Final placements by task id, for in-edge transfer pricing.
  std::vector<common::HostId> primary(graph.task_count());
  std::vector<common::SiteId> placed_site(graph.task_count());

  // Quote for running `task` on `host` (one of the group) — in-edge
  // transfers are priced once, against the primary host.
  auto transfer_quote = [&](afg::TaskId task, common::HostId host,
                            common::SiteId site) {
    double q = 0.0;
    for (const afg::Edge& e : graph.in_edges(task)) {
      q += prices.transfer_cost(graph.edge_bytes(e),
                                primary[e.from.value()] == host,
                                placed_site[e.from.value()] == site);
    }
    return q;
  };

  std::size_t placed = 0;
  while (!ready.empty()) {
    const afg::TaskId task = ready.pop();
    const afg::TaskNode& node = graph.task(task);
    double charge = 0.0;

    if (node.props.mode == afg::ComputationMode::kParallel &&
        node.props.num_nodes > 1) {
      auto bid = parallel_bid(node, pre->perf[task.value()], sites, context);
      if (!bid) return bid.error();
      builder.place(task, bid->site, bid->hosts, bid->predicted, staging);
      primary[task.value()] = bid->hosts.front();
      placed_site[task.value()] = bid->site;
      const db::SiteRepository& repo = context.repo(bid->site);
      for (common::HostId h : bid->hosts) {
        auto rec = repo.resources().find(h);
        const double speed = rec ? rec->speed_mflops : 100.0;
        charge += prices.cpu_price(h, speed) * bid->predicted;
      }
      charge += transfer_quote(task, bid->hosts.front(), bid->site);
    } else {
      const std::vector<Option>& options = pre->options[task.value()];
      const double tail =
          std::max(0.0, ranks->level[task.value()] - pre->mean_exec[task.value()]);
      const Option* best = nullptr;
      double best_finish = 0.0;
      double best_quote = 0.0;
      bool best_ok = false;  ///< best satisfies the binding constraint
      for (const Option& o : options) {
        const double finish =
            builder.earliest_start(task, o.host.record.host, staging) +
            o.host.predicted;
        const double quote =
            prices.cpu_price(o.host.record.host, o.host.record.speed_mflops) *
                o.host.predicted +
            transfer_quote(task, o.host.record.host, o.site);
        bool ok = true;
        bool better = false;
        if (mode == DbcStrategy::Mode::kCost) {
          // Deadline-feasible iff this finish leaves the mean remaining
          // path enough room; among feasible, cheapest quote wins.
          ok = policy.deadline <= 0.0 || finish + tail <= policy.deadline;
          if (ok == best_ok) {
            better = ok ? (quote < best_quote ||
                           (quote == best_quote && finish < best_finish))
                        : finish < best_finish;
          } else {
            better = ok;
          }
        } else {
          // Budget-affordable iff the committed quotes, this quote, and the
          // optimistic floor for the rest still fit; among affordable,
          // earliest finish wins.
          ok = policy.budget <= 0.0 ||
               committed + quote +
                       (floor_rest - pre->min_quote[task.value()]) <=
                   policy.budget;
          if (ok == best_ok) {
            better = ok ? (finish < best_finish ||
                           (finish == best_finish && quote < best_quote))
                        : (quote < best_quote ||
                           (quote == best_quote && finish < best_finish));
          } else {
            better = ok;
          }
        }
        if (best == nullptr || better) {
          best = &o;
          best_finish = finish;
          best_quote = quote;
          best_ok = ok;
        }
      }
      builder.place(task, best->site, {best->host.record.host},
                    best->host.predicted, staging);
      primary[task.value()] = best->host.record.host;
      placed_site[task.value()] = best->site;
      charge = best_quote;
    }

    committed += charge;
    floor_rest -= pre->min_quote[task.value()];
    ++placed;
    for (afg::TaskId child : graph.children(task)) {
      if (--waiting[child.value()] == 0) {
        ready.push(child, ranks->level[child.value()]);
      }
    }
  }
  if (placed != graph.task_count()) {
    return common::Error{common::ErrorCode::kInternal,
                         scheduler_name + " placed " + std::to_string(placed) +
                             " of " + std::to_string(graph.task_count()) +
                             " tasks"};
  }
  return builder.build(graph.name(), scheduler_name);
}

}  // namespace

common::Expected<ResourceAllocationTable> DbcStrategy::assign(
    const afg::Afg& graph, const SchedulerContext& context,
    const std::vector<HostSelectionOutput>& outputs) {
  const bool economic =
      context.prices != nullptr &&
      (policy_.deadline > 0.0 || policy_.budget > 0.0);
  if (!economic) {
    // No prices or no constraints: there is no economic objective, so the
    // placement is exactly the default time-optimising assignment phase
    // under this policy — byte-identical to vdce-level/vdce-level-paper
    // (tests/test_differential.cpp), only the attribution name differs.
    return assign_with_outputs(graph, context, outputs, policy_, name());
  }
  return schedule_constrained(graph, context, policy_, mode_, name());
}

}  // namespace vdce::sched
