// Host reservations for multi-tenant co-scheduling (docs/TENANCY.md).
//
// The prototype's execution model is host-exclusive: a machine runs one
// VDCE task at a time, and the daemons on it coordinate one application's
// plan.  When several applications are in flight concurrently, the
// scheduler must therefore never hand the same machine to two of them —
// the classic grid double-booking bug.  This table is the shared source of
// truth: the coordinator acquires every host of an application's resource
// allocation table when execution starts (plus any host a recovery
// re-placement adds), and releases them all when the application
// completes.  Scheduling rounds and recovery re-placements consult the
// table through SchedulerContext and skip machines held by *other*
// applications, deterministically re-ranking the remaining candidates.
//
// With a single application in flight the table never reports a conflict,
// so every code path that consults it behaves bit-identically to the
// pre-tenancy scheduler (tests/test_tenancy.cpp proves this
// differentially).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace vdce::sched {

class ReservationTable {
 public:
  /// Reserve `hosts` for `app`.  Hosts already held by the same app are
  /// ignored (idempotent — recovery re-acquires freely); hosts held by a
  /// *different* app are counted in conflicts() and left with their current
  /// holder (callers filter reserved hosts before choosing, so a conflict
  /// here means a caller bypassed the filter).
  void acquire(common::AppId app, const std::vector<common::HostId>& hosts);

  /// Release every host held by `app`.  No-op for unknown apps.
  void release(common::AppId app);

  /// The app holding `host`, or an invalid id when the host is free.
  [[nodiscard]] common::AppId holder(common::HostId host) const;

  /// True when `host` is held by an application other than `app`.
  [[nodiscard]] bool reserved_by_other(common::HostId host,
                                       common::AppId app) const;

  /// True when any host is held by an application other than `app` — the
  /// signal the tenancy layer uses to distinguish "infeasible because
  /// concurrent applications occupy the candidates" (defer and retry) from
  /// "infeasible outright" (fail).
  [[nodiscard]] bool any_other(common::AppId app) const;

  /// Hosts currently held by `app` (unspecified order; empty if none).
  [[nodiscard]] std::vector<common::HostId> hosts_of(common::AppId app) const;

  [[nodiscard]] std::size_t held_count() const noexcept {
    return holder_.size();
  }
  [[nodiscard]] std::size_t app_count() const noexcept {
    return by_app_.size();
  }
  /// Attempts to acquire a host already held by a different app.
  [[nodiscard]] std::uint64_t conflicts() const noexcept { return conflicts_; }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> holder_;  ///< host -> app
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_app_;
  std::uint64_t conflicts_ = 0;
};

}  // namespace vdce::sched
