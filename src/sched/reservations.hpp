// Host reservations for multi-tenant co-scheduling (docs/TENANCY.md) and
// advance reservations over time-windowed resources (docs/RESERVATIONS.md).
//
// Two layers share this file:
//
//  * ReservationTable — the instantaneous host -> app holder map.  The
//    prototype's execution model is host-exclusive: a machine runs one
//    VDCE task at a time, and the daemons on it coordinate one
//    application's plan.  When several applications are in flight
//    concurrently, the scheduler must therefore never hand the same
//    machine to two of them — the classic grid double-booking bug.  This
//    table is the shared source of truth: the coordinator acquires every
//    host of an application's resource allocation table when execution
//    starts (plus any host a recovery re-placement adds), and releases
//    them all when the application completes.  Scheduling rounds and
//    recovery re-placements consult the table through SchedulerContext and
//    skip machines held by *other* applications, deterministically
//    re-ranking the remaining candidates.
//
//  * WindowTable — the time-indexed generalisation (ROADMAP item 2,
//    modelled on the Prajapati & Shah advance-reservation simulator,
//    arXiv:1211.1447).  A booking commits `[start, end)` windows of host
//    capacity (optionally a link-bandwidth fraction) ahead of time; the
//    site scheduler places non-owners *around* committed windows and a
//    conservative-backfill pass fills the gaps — a backfilled application
//    may never delay a committed window's start.  Booking ids are issued
//    in commit order, so every tie resolves deterministically by
//    (user, seq).  The instantaneous table is the degenerate zero-window
//    case: with no bookings every WindowTable query is a constant-false
//    no-op and every code path behaves bit-identically to the pre-window
//    scheduler (tests/test_reservations_differential.cpp proves this).
//
// With a single application in flight the instantaneous table never
// reports a conflict, so every code path that consults it behaves
// bit-identically to the pre-tenancy scheduler (tests/test_tenancy.cpp
// proves this differentially).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace vdce::sched {

class ReservationTable {
 public:
  /// Reserve `hosts` for `app`.  Hosts already held by the same app are
  /// ignored (idempotent — recovery re-acquires freely); hosts held by a
  /// *different* app are counted in conflicts() and left with their current
  /// holder (callers filter reserved hosts before choosing, so a conflict
  /// here means a caller bypassed the filter).
  void acquire(common::AppId app, const std::vector<common::HostId>& hosts);

  /// Release every host held by `app`.  No-op for unknown apps.
  void release(common::AppId app);

  /// The app holding `host`, or an invalid id when the host is free.
  [[nodiscard]] common::AppId holder(common::HostId host) const;

  /// True when `host` is held by an application other than `app`.
  [[nodiscard]] bool reserved_by_other(common::HostId host,
                                       common::AppId app) const;

  /// True when any host is held by an application other than `app` — the
  /// signal the tenancy layer uses to distinguish "infeasible because
  /// concurrent applications occupy the candidates" (defer and retry) from
  /// "infeasible outright" (fail).
  [[nodiscard]] bool any_other(common::AppId app) const;

  /// Hosts currently held by `app`, in ascending host-id order (empty if
  /// none).  The order is part of the contract: callers iterate the result
  /// to acquire, log, and re-rank, and an unspecified order here was a
  /// latent nondeterminism trap for the window generalisation
  /// (tests/test_reservations.cpp asserts it).
  [[nodiscard]] std::vector<common::HostId> hosts_of(common::AppId app) const;

  [[nodiscard]] std::size_t held_count() const noexcept {
    return holder_.size();
  }
  [[nodiscard]] std::size_t app_count() const noexcept {
    return by_app_.size();
  }
  /// Attempts to acquire a host already held by a different app.
  [[nodiscard]] std::uint64_t conflicts() const noexcept { return conflicts_; }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> holder_;  ///< host -> app
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_app_;
  std::uint64_t conflicts_ = 0;
};

// ---------------------------------------------------------------------------
// Time-windowed advance reservations (docs/RESERVATIONS.md)
// ---------------------------------------------------------------------------

/// One committed capacity window.  Hosts are exclusive for `[start, end)`;
/// the optional link window reserves a bandwidth fraction of one directed
/// fabric link for the same interval.
struct Window {
  std::uint64_t id = 0;              ///< booking id, issued in commit order
  std::string user;                  ///< committing account (tie-break key)
  common::SimTime start = 0.0;
  common::SimTime end = 0.0;
  std::vector<common::HostId> hosts; ///< ascending host-id order
  /// Optional directed link-bandwidth window: reserve `link_fraction` of
  /// the src->dst link's capacity for [start, end).  Fraction 0 (default)
  /// books no link.  Overlapping link windows conflict when their fractions
  /// sum past 1.0.
  common::HostId link_src;
  common::HostId link_dst;
  double link_fraction = 0.0;
  /// Application currently scheduled/executing under this booking (invalid
  /// until the owner's submission is released into scheduling).
  common::AppId owner_app;
  /// Incremented each time a host of this window was re-placed after a
  /// crash (chaos interaction; docs/RESERVATIONS.md).
  int displacements = 0;

  [[nodiscard]] bool contains_host(common::HostId h) const;
  /// True when the window's interval intersects [s, e).
  [[nodiscard]] bool overlaps(common::SimTime s, common::SimTime e) const {
    return start < e && s < end;
  }
};

/// The time-indexed reservation plane.  Extends the instantaneous table —
/// which keeps its exact pre-window behaviour — with committed `[start,
/// end)` windows.  RuntimeCore owns one WindowTable shared by every site
/// coordinator; VdceEnvironment::reserve() is the only committer.
///
/// Determinism: booking ids are a monotone sequence issued in commit
/// order, windows_of() returns (start, id)-sorted snapshots, and
/// displacement picks the lowest-id feasible replacement host — no
/// iteration order ever depends on hashing.
class WindowTable : public ReservationTable {
 public:
  /// Commit a window.  Fails with kReservationConflict when any requested
  /// host already has a committed window intersecting [start, end), or the
  /// requested link fraction oversubscribes the link within the interval.
  /// Interval and host validity are the caller's job (the environment
  /// validates against the topology and the clock and reports kNotFound /
  /// kInvalidArgument there).  First committed wins; later conflicting
  /// requests are rejected, counted in window_conflicts().
  common::Expected<std::uint64_t> book(Window window);

  /// Remove a booking (frees its hosts/link for the whole interval).
  /// kNotFound for unknown ids.
  common::Status cancel(std::uint64_t booking);

  /// The committed window for `booking`, or null.
  [[nodiscard]] const Window* window(std::uint64_t booking) const;

  /// Bind the application currently scheduled/executing under `booking`
  /// (invalid AppId unbinds).  The scheduler uses the binding to recognise
  /// the owner: the owner places *inside* its window's hosts, everyone
  /// else places around them.
  void bind_owner(std::uint64_t booking, common::AppId app);

  /// The booking `app` is currently bound to, or 0.
  [[nodiscard]] std::uint64_t booking_of(common::AppId app) const;

  /// Windows touching `host` with end > `after`, sorted by (start, id).
  [[nodiscard]] std::vector<const Window*> windows_of(
      common::HostId host, common::SimTime after = 0.0) const;

  /// True when a *foreign* (not owned by `app`) committed window makes
  /// `host` inadmissible at time `now` for an application expected to
  /// occupy it until `est_finish`:
  ///   * a foreign window is active (start <= now < end), or
  ///   * `backfill` is off and any foreign window is still pending, or
  ///   * the occupancy estimate is unknown (`est_finish` < 0 — conservative
  ///     backfill cannot prove safety without a duration), or
  ///   * `est_finish` crosses the next pending foreign window's start.
  /// With zero windows this is a constant-false single branch.
  [[nodiscard]] bool window_blocked(common::HostId host, common::AppId app,
                                    common::SimTime now,
                                    common::SimTime est_finish,
                                    bool backfill) const;

  /// Start of the earliest foreign pending window on `host` after `now`,
  /// or a negative value when none exists.
  [[nodiscard]] common::SimTime next_foreign_start(common::HostId host,
                                                   common::AppId app,
                                                   common::SimTime now) const;

  /// Crash recovery: re-place `host` out of every committed window that has
  /// not ended by `now`.  For each affected window the lowest-id host from
  /// `candidates` that is not already in the window and has no conflicting
  /// committed window over the interval replaces the dead one; when no
  /// candidate fits, the dead host is simply dropped from the window
  /// (degraded capacity beats a booking pinned to a corpse).  Returns the
  /// ids of every displaced booking, ascending.
  std::vector<std::uint64_t> displace_host(
      common::HostId host, common::SimTime now,
      const std::vector<common::HostId>& candidates);

  /// Committed windows with end > `now` (0 counts everything ever booked
  /// and not cancelled).
  [[nodiscard]] std::size_t window_count(common::SimTime now = 0.0) const;
  /// book() calls rejected for overlapping a committed window.
  [[nodiscard]] std::uint64_t window_conflicts() const noexcept {
    return window_conflicts_;
  }
  [[nodiscard]] bool has_windows() const noexcept { return !windows_.empty(); }

 private:
  [[nodiscard]] bool host_conflicts(const Window& w) const;
  [[nodiscard]] bool link_conflicts(const Window& w) const;

  std::vector<Window> windows_;  ///< ascending id order (commit order)
  std::uint64_t next_booking_ = 1;
  std::uint64_t window_conflicts_ = 0;
};

}  // namespace vdce::sched
