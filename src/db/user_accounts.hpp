// User-accounts database (§3): "each VDCE user account is represented by a
// 5-tuple: user name, password, user ID, priority, and access domain type."
// The Site Manager consults it to authenticate Application Editor
// connections before serving the editor to the browser.
//
// Passwords are stored salted-and-hashed (FNV-1a based).  The 1997 system
// predates modern KDFs; we keep the interface honest (no plaintext at rest)
// without pretending this is production crypto — see the doc comment on
// `hash_password`.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"

namespace vdce::db {

/// What parts of the environment an account may touch (the paper's "access
/// domain type").
enum class AccessDomain {
  kLocalSite,   ///< may only schedule onto the home site
  kNeighbors,   ///< home site plus its nearest-neighbour sites
  kGlobal,      ///< any VDCE site
};

constexpr const char* to_string(AccessDomain d) {
  switch (d) {
    case AccessDomain::kLocalSite: return "local";
    case AccessDomain::kNeighbors: return "neighbors";
    case AccessDomain::kGlobal: return "global";
  }
  return "?";
}

common::Expected<AccessDomain> parse_access_domain(const std::string& text);

struct UserAccount {
  std::string user_name;
  std::uint64_t password_hash = 0;
  std::uint64_t salt = 0;
  common::UserId user_id;
  int priority = 0;  ///< larger = more important; scheduler tiebreaker
  AccessDomain domain = AccessDomain::kLocalSite;
};

class UserAccountsDb {
 public:
  /// Create an account.  Fails with kAlreadyExists on duplicate user name.
  common::Expected<common::UserId> add_user(const std::string& user_name,
                                            const std::string& password,
                                            int priority, AccessDomain domain);

  /// Check credentials; returns the account on success, kAuthFailed
  /// otherwise (deliberately the same error for unknown user and wrong
  /// password).
  common::Expected<UserAccount> authenticate(const std::string& user_name,
                                             const std::string& password) const;

  common::Expected<UserAccount> find(const std::string& user_name) const;
  common::Expected<UserAccount> find(common::UserId id) const;

  common::Status remove_user(const std::string& user_name);
  common::Status set_priority(const std::string& user_name, int priority);

  [[nodiscard]] std::size_t size() const noexcept { return accounts_.size(); }
  [[nodiscard]] std::vector<UserAccount> all() const;

  /// Text persistence: one account per line, '|'-separated escaped fields.
  [[nodiscard]] std::string serialize() const;
  static common::Expected<UserAccountsDb> deserialize(const std::string& text);

  /// Salted FNV-1a.  Documented weakness: FNV is not a password KDF; it
  /// stands in for the crypt(3) the 1997 prototype would have used while
  /// keeping the storage format hash-shaped.
  static std::uint64_t hash_password(const std::string& password,
                                     std::uint64_t salt);

 private:
  std::unordered_map<std::string, UserAccount> accounts_;  // by user name
  common::UserId::value_type next_id_ = 0;
};

}  // namespace vdce::db
