// Task-performance database (§3): "provides performance characteristics for
// each task in the system and is used to predict the performance of a task
// on a given resource.  Each task implementation is specified by several
// parameters such as computation size, communication size, required memory
// size, etc."
//
// Two kinds of data live here:
//  1. per-task-implementation parameters (TaskPerfRecord) seeded when a
//     task library registers itself, and
//  2. measured execution times per (task, host) pair, updated by the Site
//     Manager after each application completes (§4.1: "it updates the
//     task-performance database with the execution time after an
//     application execution is completed").  Measurements sharpen the
//     prediction model over time (experiment E3).
//
// The record also stores the "base processor" execution time that the list
// scheduler's level computation uses for node computation costs (§3).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace vdce::db {

/// Static performance characteristics of one task implementation.
struct TaskPerfRecord {
  std::string task_name;          ///< library-qualified, e.g. "matrix.lu_decomposition"
  double computation_mflop = 0.0; ///< work per invocation at reference input size
  double communication_bytes = 0.0;  ///< output volume produced per invocation
  double required_memory_mb = 0.0;
  /// Measured execution time on the base (reference) processor; this is the
  /// computation cost used in level computation.
  common::SimDuration base_exec_time = 0.0;
  /// Fraction of the task that parallelizes (Amdahl); 1.0 = fully parallel.
  double parallel_fraction = 0.0;
};

/// Running average of measured times of a task on one specific host.
struct MeasuredTime {
  double mean = 0.0;
  std::size_t count = 0;

  void add(double sample) {
    ++count;
    mean += (sample - mean) / static_cast<double>(count);
  }
};

class TaskPerformanceDb {
 public:
  /// Register or replace a task implementation's parameters.
  void register_task(TaskPerfRecord record);

  common::Expected<TaskPerfRecord> find(const std::string& task_name) const;
  [[nodiscard]] bool contains(const std::string& task_name) const {
    return records_.contains(task_name);
  }

  /// Record a completed execution of `task_name` on `host` (Site Manager,
  /// post-execution).
  common::Status record_execution(const std::string& task_name,
                                  common::HostId host,
                                  common::SimDuration elapsed);

  /// Measured mean time of the task on the host, if any executions have
  /// been recorded.  The prediction model prefers this over the analytic
  /// estimate once it exists.
  [[nodiscard]] std::optional<MeasuredTime> measured(
      const std::string& task_name, common::HostId host) const;

  [[nodiscard]] std::vector<TaskPerfRecord> all_tasks() const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Text persistence: "task|..." record lines plus "meas|..." lines for
  /// the per-(task, host) measured means.
  [[nodiscard]] std::string serialize() const;
  static common::Expected<TaskPerformanceDb> deserialize(
      const std::string& text);

 private:
  std::unordered_map<std::string, TaskPerfRecord> records_;
  // Keyed by task name; inner map keyed by host.
  std::unordered_map<std::string,
                     std::unordered_map<common::HostId, MeasuredTime>>
      measurements_;
};

}  // namespace vdce::db
