// Resource-performance database (§3): "resource (machine and network)
// attributes or parameters such as host name, IP address, architecture
// type, OS type, total memory size of the machine, recent workload
// measurements, and available memory size."
//
// This is the scheduler's view of the machines — distinct from the ground
// truth in net::Topology.  The Monitor → Group Manager → Site Manager
// pipeline (§4.1) copies measurements into this database; the Host
// Selection Algorithm reads them.  The gap between the two (staleness,
// significant-change filtering) is itself an experimental variable (E4).
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace vdce::db {

/// One workload sample as forwarded by a Group Manager.
struct WorkloadSample {
  common::SimTime time = 0.0;
  double cpu_load = 0.0;      ///< 0 = idle, 1 = one busy cpu's worth
  double available_mb = 0.0;  ///< free memory at sample time
};

/// A machine's record: static attributes plus the recent measurement window.
struct ResourceRecord {
  common::HostId host;
  common::SiteId site;
  std::string host_name;
  std::string ip;
  std::string arch;
  std::string os;
  std::string machine_type;
  double speed_mflops = 0.0;
  double total_memory_mb = 0.0;
  bool up = true;

  /// Most recent samples, oldest first; bounded by kHistoryLen.
  std::deque<WorkloadSample> workload_history;

  static constexpr std::size_t kHistoryLen = 16;

  /// Latest known load; 0 when no sample has arrived yet (optimistic, like
  /// the prototype's freshly-registered hosts).
  [[nodiscard]] double current_load() const {
    return workload_history.empty() ? 0.0 : workload_history.back().cpu_load;
  }
  [[nodiscard]] double available_mb() const {
    return workload_history.empty() ? total_memory_mb
                                    : workload_history.back().available_mb;
  }
  [[nodiscard]] common::SimTime last_sample_time() const {
    return workload_history.empty() ? -1.0 : workload_history.back().time;
  }
};

class ResourcePerformanceDb {
 public:
  /// Register a machine (done at site bring-up from the topology).
  common::Status register_host(ResourceRecord record);

  common::Expected<ResourceRecord> find(common::HostId host) const;
  common::Expected<ResourceRecord> find(const std::string& host_name) const;

  /// Append a workload measurement (Site Manager, on Group Manager report).
  common::Status record_workload(common::HostId host, WorkloadSample sample);

  /// Mark a host up/down (Site Manager, on failure detection — the paper's
  /// "the host is then marked as 'down' at the site's
  /// resource-performance database").
  common::Status set_host_up(common::HostId host, bool up);

  /// All *up* hosts at a site — the candidate set R_set the Host Selection
  /// Algorithm retrieves (Fig. 3, step 2).
  [[nodiscard]] std::vector<ResourceRecord> available_hosts(
      common::SiteId site) const;

  [[nodiscard]] std::vector<ResourceRecord> all_hosts() const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Text persistence: one host per line ('|'-separated escaped fields),
  /// including the retained workload-sample window.
  [[nodiscard]] std::string serialize() const;
  static common::Expected<ResourcePerformanceDb> deserialize(
      const std::string& text);

 private:
  std::unordered_map<common::HostId, ResourceRecord> records_;
};

}  // namespace vdce::db
