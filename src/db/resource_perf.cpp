#include "db/resource_perf.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace vdce::db {

common::Status ResourcePerformanceDb::register_host(ResourceRecord record) {
  if (records_.contains(record.host)) {
    return common::Error{common::ErrorCode::kAlreadyExists,
                         "host already registered: " + record.host_name};
  }
  records_.emplace(record.host, std::move(record));
  return common::Status::success();
}

common::Expected<ResourceRecord> ResourcePerformanceDb::find(
    common::HostId host) const {
  auto it = records_.find(host);
  if (it == records_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "host not in resource db: id " +
                             std::to_string(host.value())};
  }
  return it->second;
}

common::Expected<ResourceRecord> ResourcePerformanceDb::find(
    const std::string& host_name) const {
  for (const auto& [id, rec] : records_) {
    if (rec.host_name == host_name) return rec;
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "host not in resource db: " + host_name};
}

common::Status ResourcePerformanceDb::record_workload(common::HostId host,
                                                      WorkloadSample sample) {
  auto it = records_.find(host);
  if (it == records_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "workload for unknown host id " +
                             std::to_string(host.value())};
  }
  auto& history = it->second.workload_history;
  history.push_back(sample);
  while (history.size() > ResourceRecord::kHistoryLen) history.pop_front();
  return common::Status::success();
}

common::Status ResourcePerformanceDb::set_host_up(common::HostId host,
                                                  bool up) {
  auto it = records_.find(host);
  if (it == records_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "status for unknown host id " +
                             std::to_string(host.value())};
  }
  it->second.up = up;
  return common::Status::success();
}

std::vector<ResourceRecord> ResourcePerformanceDb::available_hosts(
    common::SiteId site) const {
  std::vector<ResourceRecord> out;
  for (const auto& [id, rec] : records_) {
    if (rec.site == site && rec.up) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const ResourceRecord& a, const ResourceRecord& b) {
              return a.host < b.host;
            });
  return out;
}

std::string ResourcePerformanceDb::serialize() const {
  std::string out;
  for (const ResourceRecord& r : all_hosts()) {
    out += std::to_string(r.host.value()) + "|" +
           std::to_string(r.site.value()) + "|" +
           common::escape_field(r.host_name) + "|" +
           common::escape_field(r.ip) + "|" + common::escape_field(r.arch) +
           "|" + common::escape_field(r.os) + "|" +
           common::escape_field(r.machine_type) + "|" +
           common::format_double(r.speed_mflops, 6) + "|" +
           common::format_double(r.total_memory_mb, 3) + "|" +
           (r.up ? "1" : "0");
    for (const WorkloadSample& s : r.workload_history) {
      out += "|" + common::format_double(s.time, 6) + ";" +
             common::format_double(s.cpu_load, 6) + ";" +
             common::format_double(s.available_mb, 3);
    }
    out += "\n";
  }
  return out;
}

common::Expected<ResourcePerformanceDb> ResourcePerformanceDb::deserialize(
    const std::string& text) {
  ResourcePerformanceDb db;
  for (const std::string& line : common::split(text, '\n')) {
    if (common::trim(line).empty()) continue;
    auto fields = common::split(line, '|');
    if (fields.size() < 10) {
      return common::Error{common::ErrorCode::kParseError,
                           "bad resource line: " + line};
    }
    ResourceRecord rec;
    auto host = common::parse_uint(fields[0]);
    auto site = common::parse_uint(fields[1]);
    auto name = common::unescape_field(fields[2]);
    auto ip = common::unescape_field(fields[3]);
    auto arch = common::unescape_field(fields[4]);
    auto os = common::unescape_field(fields[5]);
    auto type = common::unescape_field(fields[6]);
    auto speed = common::parse_double(fields[7]);
    auto memory = common::parse_double(fields[8]);
    if (!host || !site || !name || !ip || !arch || !os || !type || !speed ||
        !memory) {
      return common::Error{common::ErrorCode::kParseError,
                           "bad resource fields: " + line};
    }
    rec.host = common::HostId(static_cast<common::HostId::value_type>(*host));
    rec.site = common::SiteId(static_cast<common::SiteId::value_type>(*site));
    rec.host_name = *name;
    rec.ip = *ip;
    rec.arch = *arch;
    rec.os = *os;
    rec.machine_type = *type;
    rec.speed_mflops = *speed;
    rec.total_memory_mb = *memory;
    rec.up = fields[9] == "1";
    for (std::size_t i = 10; i < fields.size(); ++i) {
      auto parts = common::split(fields[i], ';');
      if (parts.size() != 3) {
        return common::Error{common::ErrorCode::kParseError,
                             "bad workload sample: " + fields[i]};
      }
      auto t = common::parse_double(parts[0]);
      auto load = common::parse_double(parts[1]);
      auto avail = common::parse_double(parts[2]);
      if (!t || !load || !avail) {
        return common::Error{common::ErrorCode::kParseError,
                             "bad workload sample: " + fields[i]};
      }
      rec.workload_history.push_back(WorkloadSample{*t, *load, *avail});
    }
    auto st = db.register_host(std::move(rec));
    if (!st.ok()) return st.error();
  }
  return db;
}

std::vector<ResourceRecord> ResourcePerformanceDb::all_hosts() const {
  std::vector<ResourceRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const ResourceRecord& a, const ResourceRecord& b) {
              return a.host < b.host;
            });
  return out;
}

}  // namespace vdce::db
