#include "db/task_perf.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace vdce::db {

void TaskPerformanceDb::register_task(TaskPerfRecord record) {
  records_[record.task_name] = std::move(record);
}

common::Expected<TaskPerfRecord> TaskPerformanceDb::find(
    const std::string& task_name) const {
  auto it = records_.find(task_name);
  if (it == records_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "task not in task-performance db: " + task_name};
  }
  return it->second;
}

common::Status TaskPerformanceDb::record_execution(
    const std::string& task_name, common::HostId host,
    common::SimDuration elapsed) {
  if (!records_.contains(task_name)) {
    return common::Error{common::ErrorCode::kNotFound,
                         "execution of unknown task: " + task_name};
  }
  measurements_[task_name][host].add(elapsed);
  return common::Status::success();
}

std::optional<MeasuredTime> TaskPerformanceDb::measured(
    const std::string& task_name, common::HostId host) const {
  auto it = measurements_.find(task_name);
  if (it == measurements_.end()) return std::nullopt;
  auto jt = it->second.find(host);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::string TaskPerformanceDb::serialize() const {
  std::string out;
  for (const TaskPerfRecord& r : all_tasks()) {
    out += "task|" + common::escape_field(r.task_name) + "|" +
           common::format_double(r.computation_mflop, 6) + "|" +
           common::format_double(r.communication_bytes, 3) + "|" +
           common::format_double(r.required_memory_mb, 3) + "|" +
           common::format_double(r.base_exec_time, 9) + "|" +
           common::format_double(r.parallel_fraction, 6) + "\n";
  }
  // Deterministic measurement order: by task name then host id.
  std::vector<std::string> names;
  for (const auto& [name, by_host] : measurements_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::vector<std::pair<common::HostId, MeasuredTime>> entries(
        measurements_.at(name).begin(), measurements_.at(name).end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [host, measured] : entries) {
      out += "meas|" + common::escape_field(name) + "|" +
             std::to_string(host.value()) + "|" +
             common::format_double(measured.mean, 9) + "|" +
             std::to_string(measured.count) + "\n";
    }
  }
  return out;
}

common::Expected<TaskPerformanceDb> TaskPerformanceDb::deserialize(
    const std::string& text) {
  TaskPerformanceDb db;
  for (const std::string& line : common::split(text, '\n')) {
    if (common::trim(line).empty()) continue;
    auto fields = common::split(line, '|');
    if (fields[0] == "task" && fields.size() == 7) {
      auto name = common::unescape_field(fields[1]);
      auto mflop = common::parse_double(fields[2]);
      auto bytes = common::parse_double(fields[3]);
      auto mem = common::parse_double(fields[4]);
      auto base = common::parse_double(fields[5]);
      auto pf = common::parse_double(fields[6]);
      if (!name || !mflop || !bytes || !mem || !base || !pf) {
        return common::Error{common::ErrorCode::kParseError,
                             "bad task record: " + line};
      }
      TaskPerfRecord rec;
      rec.task_name = *name;
      rec.computation_mflop = *mflop;
      rec.communication_bytes = *bytes;
      rec.required_memory_mb = *mem;
      rec.base_exec_time = *base;
      rec.parallel_fraction = *pf;
      db.register_task(std::move(rec));
      continue;
    }
    if (fields[0] == "meas" && fields.size() == 5) {
      auto name = common::unescape_field(fields[1]);
      auto host = common::parse_uint(fields[2]);
      auto mean = common::parse_double(fields[3]);
      auto count = common::parse_uint(fields[4]);
      if (!name || !host || !mean || !count) {
        return common::Error{common::ErrorCode::kParseError,
                             "bad measurement record: " + line};
      }
      MeasuredTime measured;
      measured.mean = *mean;
      measured.count = static_cast<std::size_t>(*count);
      db.measurements_[*name][common::HostId(
          static_cast<common::HostId::value_type>(*host))] = measured;
      continue;
    }
    return common::Error{common::ErrorCode::kParseError,
                         "bad task-performance line: " + line};
  }
  return db;
}

std::vector<TaskPerfRecord> TaskPerformanceDb::all_tasks() const {
  std::vector<TaskPerfRecord> out;
  out.reserve(records_.size());
  for (const auto& [name, rec] : records_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const TaskPerfRecord& a, const TaskPerfRecord& b) {
              return a.task_name < b.task_name;
            });
  return out;
}

}  // namespace vdce::db
