// Site repository (§3): "Each site has a site repository for storing
// user-accounts information, task and resource parameters that are used by
// the scheduler."  One per site; owned by that site's VDCE server and
// accessed through its Site Manager (which "bridges the VDCE modules to the
// site databases", §1).
#pragma once

#include <memory>

#include "common/ids.hpp"
#include "db/resource_perf.hpp"
#include "db/task_constraints.hpp"
#include "db/task_perf.hpp"
#include "db/user_accounts.hpp"
#include "net/topology.hpp"

namespace vdce::db {

class SiteRepository {
 public:
  explicit SiteRepository(common::SiteId site) : site_(site) {}

  [[nodiscard]] common::SiteId site() const noexcept { return site_; }

  UserAccountsDb& users() noexcept { return users_; }
  const UserAccountsDb& users() const noexcept { return users_; }

  ResourcePerformanceDb& resources() noexcept { return resources_; }
  const ResourcePerformanceDb& resources() const noexcept { return resources_; }

  TaskPerformanceDb& tasks() noexcept { return tasks_; }
  const TaskPerformanceDb& tasks() const noexcept { return tasks_; }

  TaskConstraintsDb& constraints() noexcept { return constraints_; }
  const TaskConstraintsDb& constraints() const noexcept { return constraints_; }

  /// Populate the resource-performance database from the site's hosts in
  /// the topology (bring-up registration; live values arrive later through
  /// the monitoring pipeline).
  void register_site_hosts(const net::Topology& topology);

  /// Persist all four databases as text files under `directory` (created
  /// if absent): users.db, resources.db, tasks.db, constraints.db.
  common::Status save_to(const std::string& directory) const;
  /// Restore a repository saved with save_to.
  static common::Expected<SiteRepository> load_from(
      const std::string& directory, common::SiteId site);

 private:
  common::SiteId site_;
  UserAccountsDb users_;
  ResourcePerformanceDb resources_;
  TaskPerformanceDb tasks_;
  TaskConstraintsDb constraints_;
};

}  // namespace vdce::db
