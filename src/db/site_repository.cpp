#include "db/site_repository.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace vdce::db {

namespace {

common::Status write_file(const std::filesystem::path& path,
                          const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot write " + path.string()};
  }
  out << content;
  return common::Status::success();
}

common::Expected<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot read " + path.string()};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

void SiteRepository::register_site_hosts(const net::Topology& topology) {
  for (common::HostId hid : topology.site(site_).hosts) {
    const net::Host& h = topology.host(hid);
    ResourceRecord rec;
    rec.host = h.id;
    rec.site = h.site;
    rec.host_name = h.spec.name;
    rec.ip = h.spec.ip;
    rec.arch = h.spec.arch;
    rec.os = h.spec.os;
    rec.machine_type = h.spec.machine_type;
    rec.speed_mflops = h.spec.speed_mflops;
    rec.total_memory_mb = h.spec.memory_mb;
    rec.up = h.state.up;
    (void)resources_.register_host(std::move(rec));
  }
}

common::Status SiteRepository::save_to(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot create " + directory + ": " + ec.message()};
  }
  const std::filesystem::path dir(directory);
  if (auto st = write_file(dir / "users.db", users_.serialize()); !st.ok()) {
    return st;
  }
  if (auto st = write_file(dir / "resources.db", resources_.serialize());
      !st.ok()) {
    return st;
  }
  if (auto st = write_file(dir / "tasks.db", tasks_.serialize()); !st.ok()) {
    return st;
  }
  return write_file(dir / "constraints.db", constraints_.serialize());
}

common::Expected<SiteRepository> SiteRepository::load_from(
    const std::string& directory, common::SiteId site) {
  const std::filesystem::path dir(directory);
  auto users_text = read_file(dir / "users.db");
  auto resources_text = read_file(dir / "resources.db");
  auto tasks_text = read_file(dir / "tasks.db");
  auto constraints_text = read_file(dir / "constraints.db");
  if (!users_text) return users_text.error();
  if (!resources_text) return resources_text.error();
  if (!tasks_text) return tasks_text.error();
  if (!constraints_text) return constraints_text.error();

  auto users = UserAccountsDb::deserialize(*users_text);
  auto resources = ResourcePerformanceDb::deserialize(*resources_text);
  auto tasks = TaskPerformanceDb::deserialize(*tasks_text);
  auto constraints = TaskConstraintsDb::deserialize(*constraints_text);
  if (!users) return users.error();
  if (!resources) return resources.error();
  if (!tasks) return tasks.error();
  if (!constraints) return constraints.error();

  SiteRepository repo(site);
  repo.users_ = std::move(*users);
  repo.resources_ = std::move(*resources);
  repo.tasks_ = std::move(*tasks);
  repo.constraints_ = std::move(*constraints);
  return repo;
}

}  // namespace vdce::db
