#include "db/user_accounts.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace vdce::db {

common::Expected<AccessDomain> parse_access_domain(const std::string& text) {
  if (text == "local") return AccessDomain::kLocalSite;
  if (text == "neighbors") return AccessDomain::kNeighbors;
  if (text == "global") return AccessDomain::kGlobal;
  return common::Error{common::ErrorCode::kParseError,
                       "bad access domain: " + text};
}

std::uint64_t UserAccountsDb::hash_password(const std::string& password,
                                            std::uint64_t salt) {
  std::uint64_t h = 14695981039346656037ULL ^ salt;
  for (unsigned char c : password) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // A second pass over the salt bytes so equal passwords with different
  // salts diverge even for short inputs.
  for (int i = 0; i < 8; ++i) {
    h ^= (salt >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

common::Expected<common::UserId> UserAccountsDb::add_user(
    const std::string& user_name, const std::string& password, int priority,
    AccessDomain domain) {
  if (user_name.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "empty user name"};
  }
  if (accounts_.contains(user_name)) {
    return common::Error{common::ErrorCode::kAlreadyExists,
                         "user exists: " + user_name};
  }
  UserAccount acct;
  acct.user_name = user_name;
  // Deterministic salt derived from the name: persistence round-trips and
  // tests stay reproducible.  Independent accounts still get distinct salts.
  acct.salt = hash_password(user_name, 0x5157bd1e2f09add5ULL);
  acct.password_hash = hash_password(password, acct.salt);
  acct.user_id = common::UserId(next_id_++);
  acct.priority = priority;
  acct.domain = domain;
  accounts_.emplace(user_name, acct);
  return acct.user_id;
}

common::Expected<UserAccount> UserAccountsDb::authenticate(
    const std::string& user_name, const std::string& password) const {
  auto it = accounts_.find(user_name);
  if (it == accounts_.end() ||
      it->second.password_hash != hash_password(password, it->second.salt)) {
    return common::Error{common::ErrorCode::kAuthFailed,
                         "bad credentials for " + user_name};
  }
  return it->second;
}

common::Expected<UserAccount> UserAccountsDb::find(
    const std::string& user_name) const {
  auto it = accounts_.find(user_name);
  if (it == accounts_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "no user " + user_name};
  }
  return it->second;
}

common::Expected<UserAccount> UserAccountsDb::find(common::UserId id) const {
  for (const auto& [name, acct] : accounts_) {
    if (acct.user_id == id) return acct;
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "no user id " + std::to_string(id.value())};
}

common::Status UserAccountsDb::remove_user(const std::string& user_name) {
  if (accounts_.erase(user_name) == 0) {
    return common::Error{common::ErrorCode::kNotFound, "no user " + user_name};
  }
  return common::Status::success();
}

common::Status UserAccountsDb::set_priority(const std::string& user_name,
                                            int priority) {
  auto it = accounts_.find(user_name);
  if (it == accounts_.end()) {
    return common::Error{common::ErrorCode::kNotFound, "no user " + user_name};
  }
  it->second.priority = priority;
  return common::Status::success();
}

std::vector<UserAccount> UserAccountsDb::all() const {
  std::vector<UserAccount> out;
  out.reserve(accounts_.size());
  for (const auto& [name, acct] : accounts_) out.push_back(acct);
  std::sort(out.begin(), out.end(), [](const UserAccount& a, const UserAccount& b) {
    return a.user_id < b.user_id;
  });
  return out;
}

std::string UserAccountsDb::serialize() const {
  std::string out;
  for (const UserAccount& a : all()) {
    out += common::escape_field(a.user_name) + "|" +
           std::to_string(a.password_hash) + "|" + std::to_string(a.salt) +
           "|" + std::to_string(a.user_id.value()) + "|" +
           std::to_string(a.priority) + "|" + to_string(a.domain) + "\n";
  }
  return out;
}

common::Expected<UserAccountsDb> UserAccountsDb::deserialize(
    const std::string& text) {
  UserAccountsDb db;
  for (const std::string& line : common::split(text, '\n')) {
    if (common::trim(line).empty()) continue;
    auto fields = common::split(line, '|');
    if (fields.size() != 6) {
      return common::Error{common::ErrorCode::kParseError,
                           "bad account line: " + line};
    }
    auto name = common::unescape_field(fields[0]);
    if (!name) return name.error();
    auto hash = common::parse_uint(fields[1]);
    auto salt = common::parse_uint(fields[2]);
    auto id = common::parse_int(fields[3]);
    auto priority = common::parse_int(fields[4]);
    auto domain = parse_access_domain(fields[5]);
    if (!hash) return hash.error();
    if (!salt) return salt.error();
    if (!id) return id.error();
    if (!priority) return priority.error();
    if (!domain) return domain.error();

    UserAccount acct;
    acct.user_name = *name;
    acct.password_hash = *hash;
    acct.salt = *salt;
    acct.user_id = common::UserId(static_cast<common::UserId::value_type>(*id));
    acct.priority = static_cast<int>(*priority);
    acct.domain = *domain;
    db.next_id_ = std::max(db.next_id_, acct.user_id.value() + 1);
    db.accounts_.emplace(acct.user_name, std::move(acct));
  }
  return db;
}

}  // namespace vdce::db
