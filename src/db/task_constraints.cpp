#include "db/task_constraints.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace vdce::db {

void TaskConstraintsDb::register_executable(const std::string& task_name,
                                            common::HostId host,
                                            std::string path) {
  paths_[task_name][host] = std::move(path);
}

void TaskConstraintsDb::register_everywhere(
    const std::string& task_name, const std::vector<common::HostId>& hosts) {
  for (common::HostId h : hosts) {
    register_executable(task_name, h, "/usr/vdce/tasks/" + task_name);
  }
}

common::Expected<std::string> TaskConstraintsDb::executable_path(
    const std::string& task_name, common::HostId host) const {
  auto it = paths_.find(task_name);
  if (it != paths_.end()) {
    auto jt = it->second.find(host);
    if (jt != it->second.end()) return jt->second;
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "no executable for " + task_name + " on host id " +
                           std::to_string(host.value())};
}

bool TaskConstraintsDb::runnable_on(const std::string& task_name,
                                    common::HostId host) const {
  auto it = paths_.find(task_name);
  return it != paths_.end() && it->second.contains(host);
}

bool TaskConstraintsDb::constrains(const std::string& task_name) const {
  auto it = paths_.find(task_name);
  return it != paths_.end() && !it->second.empty();
}

std::vector<common::HostId> TaskConstraintsDb::hosts_for(
    const std::string& task_name) const {
  std::vector<common::HostId> out;
  auto it = paths_.find(task_name);
  if (it != paths_.end()) {
    out.reserve(it->second.size());
    for (const auto& [host, path] : it->second) out.push_back(host);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string TaskConstraintsDb::serialize() const {
  std::vector<std::string> names;
  for (const auto& [name, by_host] : paths_) names.push_back(name);
  std::sort(names.begin(), names.end());
  std::string out;
  for (const std::string& name : names) {
    std::vector<std::pair<common::HostId, std::string>> entries(
        paths_.at(name).begin(), paths_.at(name).end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [host, path] : entries) {
      out += common::escape_field(name) + "|" + std::to_string(host.value()) +
             "|" + common::escape_field(path) + "\n";
    }
  }
  return out;
}

common::Expected<TaskConstraintsDb> TaskConstraintsDb::deserialize(
    const std::string& text) {
  TaskConstraintsDb db;
  for (const std::string& line : common::split(text, '\n')) {
    if (common::trim(line).empty()) continue;
    auto fields = common::split(line, '|');
    if (fields.size() != 3) {
      return common::Error{common::ErrorCode::kParseError,
                           "bad constraint line: " + line};
    }
    auto name = common::unescape_field(fields[0]);
    auto host = common::parse_uint(fields[1]);
    auto path = common::unescape_field(fields[2]);
    if (!name || !host || !path) {
      return common::Error{common::ErrorCode::kParseError,
                           "bad constraint fields: " + line};
    }
    db.register_executable(
        *name, common::HostId(static_cast<common::HostId::value_type>(*host)),
        *path);
  }
  return db;
}

}  // namespace vdce::db
