// Task-constraints database (§3): "used to store the location information
// of each task (i.e., the absolute path of the task executable) for each
// host."  A task can only be scheduled onto hosts that have an installed
// executable for it; this is the feasibility filter the Host Selection
// Algorithm applies to its candidate resource set.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"

namespace vdce::db {

class TaskConstraintsDb {
 public:
  /// Declare that `host` has an executable for `task_name` at `path`.
  void register_executable(const std::string& task_name, common::HostId host,
                           std::string path);

  /// Convenience: declare the task installed on every host in `hosts` under
  /// a conventional path (used by site bring-up for library tasks).
  void register_everywhere(const std::string& task_name,
                           const std::vector<common::HostId>& hosts);

  /// Where the executable lives on `host`, or kNotFound.
  common::Expected<std::string> executable_path(const std::string& task_name,
                                                common::HostId host) const;

  [[nodiscard]] bool runnable_on(const std::string& task_name,
                                 common::HostId host) const;

  /// All hosts that can run the task (unordered).
  [[nodiscard]] std::vector<common::HostId> hosts_for(
      const std::string& task_name) const;

  /// True when any executable is registered for the task — equivalent to
  /// `!hosts_for(task_name).empty()` without materialising the host list.
  [[nodiscard]] bool constrains(const std::string& task_name) const;

  [[nodiscard]] std::size_t size() const noexcept { return paths_.size(); }

  /// Text persistence: one "task|host|path" line per installed executable.
  [[nodiscard]] std::string serialize() const;
  static common::Expected<TaskConstraintsDb> deserialize(
      const std::string& text);

 private:
  // task name -> (host -> absolute path)
  std::unordered_map<std::string,
                     std::unordered_map<common::HostId, std::string>>
      paths_;
};

}  // namespace vdce::db
