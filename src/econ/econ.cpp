#include "econ/econ.hpp"

#include <vector>

namespace vdce::econ {

double CostModel::host_price(const net::Topology& topology,
                             common::HostId host) const {
  return cpu_price(host, topology.host(host).spec.speed_mflops);
}

double CostModel::edge_cost(const net::Topology& topology, common::HostId from,
                            common::HostId to, double bytes) const {
  const bool same_host = from == to;
  const bool same_site =
      topology.host(from).site == topology.host(to).site;
  return transfer_cost(bytes, same_host, same_site);
}

SpendBreakdown estimate_spend(const afg::Afg& graph,
                              const sched::ResourceAllocationTable& table,
                              const net::Topology& topology,
                              const CostModel& model) {
  SpendBreakdown spend;
  // Task ids are dense [0, task_count); index the table once instead of
  // calling the linear find() per edge endpoint.
  std::vector<const sched::Assignment*> by_task(graph.task_count(), nullptr);
  for (const sched::Assignment& a : table.assignments) {
    if (a.task.value() < by_task.size()) by_task[a.task.value()] = &a;
  }
  for (const sched::Assignment& a : table.assignments) {
    for (common::HostId h : a.hosts) {
      spend.compute += model.host_price(topology, h) * a.predicted_time;
    }
  }
  for (const afg::Edge& e : graph.edges()) {
    const sched::Assignment* from = e.from.value() < by_task.size()
                                        ? by_task[e.from.value()]
                                        : nullptr;
    const sched::Assignment* to =
        e.to.value() < by_task.size() ? by_task[e.to.value()] : nullptr;
    if (from == nullptr || to == nullptr) continue;  // partial table
    spend.transfer += model.edge_cost(topology, from->primary_host(),
                                      to->primary_host(),
                                      graph.edge_bytes(e));
  }
  return spend;
}

}  // namespace vdce::econ
