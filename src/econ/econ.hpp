// Economy plane (docs/ECONOMY.md): the cost model that turns the paper's
// time-only site scheduler into a compute market.
//
// A global computing environment serving many users cannot arbitrate demand
// on completion time alone — Nimrod/G (Buyya et al., arXiv cs/0009021) and
// the DBC scheduling algorithms (Buyya/Murshed/Abramson, arXiv cs/0203020)
// attach *prices* to resources and *deadline/budget constraints* to users:
//
//  * every host quotes a per-CPU-second price (proportional to its speed by
//    default, so "fast" and "cheap" genuinely trade off);
//  * every link class quotes a per-MB transfer price (LAN cheap, WAN dear,
//    same-host free);
//  * a user submits with Constraints{deadline, budget}; the dbc-cost and
//    dbc-time strategies (sched/dbc.hpp) optimise one subject to the other,
//    and the admission controller rejects provably unaffordable submissions
//    with a typed kBudgetExceeded error.
//
// Charging model: spend is *quoted*, not metered — a task is charged its
// predicted execution time (at placement) times its hosts' prices, and an
// edge is charged its bytes times the placed link's price, exactly as a
// grid broker agrees a fixed-price contract before dispatch.  Because every
// placement decision (initial scheduling *and* recovery re-placement) is
// budget-checked against the same quote function, "spend never exceeds
// budget once admitted" holds by construction rather than by luck.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "afg/graph.hpp"
#include "common/ids.hpp"
#include "net/topology.hpp"
#include "sched/types.hpp"

namespace vdce::econ {

/// User-level economic constraints on a submission.  Units: `deadline` is
/// seconds of simulated time from release; `budget` is G$ (grid dollars).
/// Zero means "unconstrained" for either axis.
struct Constraints {
  double deadline = 0.0;
  double budget = 0.0;

  [[nodiscard]] bool active() const { return deadline > 0.0 || budget > 0.0; }
};

/// Per-resource prices.  Deterministic defaults derive from the static host
/// specs, so two environments built from the same topology always agree on
/// every quote (the differential and replay suites depend on this).
struct CostModel {
  /// G$ per CPU-second on a reference 100-MFLOPS machine.  A host's price
  /// scales linearly with its advertised speed — the Nimrod/G convention
  /// that makes cost-vs-time a real trade-off instead of "fastest is also
  /// cheapest".
  double base_cpu_rate = 1.0;
  /// G$ per megabyte moved over an intra-site LAN link.
  double lan_price_per_mb = 0.01;
  /// G$ per megabyte moved over an inter-site WAN link.
  double wan_price_per_mb = 0.10;
  /// Per-host overrides (host id value -> G$ per CPU-second), for markets
  /// where a provider prices off the speed curve.
  std::unordered_map<std::uint32_t, double> host_price_override;

  /// A host's per-CPU-second price given its advertised speed (the
  /// resource-performance database view — schedulers never read topology
  /// ground truth, but static specs are identical in both).
  [[nodiscard]] double cpu_price(common::HostId host,
                                 double speed_mflops) const {
    auto it = host_price_override.find(host.value());
    if (it != host_price_override.end()) return it->second;
    return base_cpu_rate * speed_mflops / 100.0;
  }

  /// Per-MB price of the link class between two placements.
  [[nodiscard]] double mb_price(bool same_host, bool same_site) const {
    if (same_host) return 0.0;
    return same_site ? lan_price_per_mb : wan_price_per_mb;
  }

  [[nodiscard]] double transfer_cost(double bytes, bool same_host,
                                     bool same_site) const {
    return (bytes / 1e6) * mb_price(same_host, same_site);
  }

  // --- topology-aware conveniences (runtime / report side) -----------------
  [[nodiscard]] double host_price(const net::Topology& topology,
                                  common::HostId host) const;
  [[nodiscard]] double edge_cost(const net::Topology& topology,
                                 common::HostId from, common::HostId to,
                                 double bytes) const;
};

/// Spend split by what the money bought, mirroring the causal phase
/// breakdown's exact-tiling discipline: compute + transfer == total(),
/// bit-for-bit (both components are plain sums, no normalisation).
struct SpendBreakdown {
  double compute = 0.0;   ///< Σ task: predicted CPU-seconds x host prices
  double transfer = 0.0;  ///< Σ edge: bytes x placed link's per-MB price

  [[nodiscard]] double total() const { return compute + transfer; }
};

/// Quoted spend of an allocation table: every assignment charged at its
/// predicted time on its hosts' prices, every edge at the price of the link
/// between the placed primary hosts.  Used identically at admission (gate
/// against the budget), at recovery re-placement (gate the repaired table),
/// and at completion (the report's spend()), so all three always agree.
[[nodiscard]] SpendBreakdown estimate_spend(
    const afg::Afg& graph, const sched::ResourceAllocationTable& table,
    const net::Topology& topology, const CostModel& model);

}  // namespace vdce::econ
