#include "predict/model.hpp"

#include <algorithm>
#include <cassert>

namespace vdce::predict {

double Predictor::effective_mflops(const db::ResourceRecord& host) {
  // A load of L background-busy CPUs' worth leaves the task 1/(1+L) of the
  // machine under fair scheduling.
  return host.speed_mflops / (1.0 + std::max(0.0, host.current_load()));
}

common::Expected<common::SimDuration> Predictor::predict(
    const db::TaskPerfRecord& task, const db::ResourceRecord& host,
    const db::TaskPerformanceDb* measured_db) const {
  // Single-host fast path: same arithmetic as the group overload with n = 1,
  // without materialising a one-element std::vector<ResourceRecord> (a full
  // record copy — five strings plus the workload history) per call.  The
  // scheduler evaluates this once per (task, host) pair, so the copy was the
  // dominant cost of host selection on large grids.
  if (task.required_memory_mb > host.total_memory_mb) {
    return common::Error{
        common::ErrorCode::kNoFeasibleResource,
        task.task_name + " needs " +
            std::to_string(task.required_memory_mb) + "MB; " + host.host_name +
            " has " + std::to_string(host.total_memory_mb) + "MB"};
  }
  if (measured_db != nullptr) {
    auto m = measured_db->measured(task.task_name, host.host);
    if (m && m->count >= options_.min_measurements) return m->mean;
  }
  const double slowest = effective_mflops(host);
  if (slowest <= 0.0) {
    return common::Error{common::ErrorCode::kNoFeasibleResource,
                         "host reports non-positive effective speed"};
  }
  double time = task.computation_mflop / slowest;
  if (task.required_memory_mb > host.available_mb()) {
    time *= options_.paging_penalty;
  }
  return time;
}

common::Expected<common::SimDuration> Predictor::predict(
    const db::TaskPerfRecord& task,
    const std::vector<db::ResourceRecord>& hosts,
    const db::TaskPerformanceDb* measured_db) const {
  if (hosts.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "predict: no hosts given"};
  }

  // Feasibility: memory must fit in each node's total memory.
  for (const db::ResourceRecord& h : hosts) {
    if (task.required_memory_mb > h.total_memory_mb) {
      return common::Error{
          common::ErrorCode::kNoFeasibleResource,
          task.task_name + " needs " +
              std::to_string(task.required_memory_mb) + "MB; " + h.host_name +
              " has " + std::to_string(h.total_memory_mb) + "MB"};
    }
  }

  // Measured path (sequential placements only: parallel groups vary).
  if (hosts.size() == 1 && measured_db != nullptr) {
    auto m = measured_db->measured(task.task_name, hosts.front().host);
    if (m && m->count >= options_.min_measurements) return m->mean;
  }

  // Analytic path.  The slowest effective node gates both the serial part
  // (which runs on one node) and the parallel part (bulk-synchronous: the
  // group advances at the pace of its slowest member).
  double slowest = effective_mflops(hosts.front());
  for (const db::ResourceRecord& h : hosts) {
    slowest = std::min(slowest, effective_mflops(h));
  }
  if (slowest <= 0.0) {
    return common::Error{common::ErrorCode::kNoFeasibleResource,
                         "host reports non-positive effective speed"};
  }

  const auto n = static_cast<double>(hosts.size());
  const double pf = std::clamp(task.parallel_fraction, 0.0, 1.0);
  double time;
  if (hosts.size() == 1) {
    time = task.computation_mflop / slowest;
  } else {
    time = task.computation_mflop * (1.0 - pf) / slowest +
           task.computation_mflop * pf / (slowest * n) +
           options_.parallel_sync_overhead * n;
  }

  // Paging penalty when the task does not fit in *available* memory.
  for (const db::ResourceRecord& h : hosts) {
    if (task.required_memory_mb > h.available_mb()) {
      time *= options_.paging_penalty;
      break;
    }
  }
  return time;
}

double GroundTruthModel::rate_mflops(
    const db::TaskPerfRecord& task, const std::vector<common::HostId>& hosts,
    bool exclude_own_share) const {
  assert(!hosts.empty());
  double slowest = 0.0;
  bool first = true;
  double min_avail_mb = 0.0;
  for (common::HostId hid : hosts) {
    const net::Host& h = topology_.host(hid);
    double load = h.state.cpu_load;
    if (exclude_own_share) load = std::max(0.0, load - 1.0);
    double eff = h.spec.speed_mflops / (1.0 + std::max(0.0, load));
    if (first || eff < slowest) slowest = eff;
    if (first || h.state.available_mb < min_avail_mb) {
      min_avail_mb = h.state.available_mb;
    }
    first = false;
  }
  slowest = std::max(slowest, 1e-6);

  const auto n = static_cast<double>(hosts.size());
  const double pf = std::clamp(task.parallel_fraction, 0.0, 1.0);
  double time;
  if (hosts.size() == 1) {
    time = task.computation_mflop / slowest;
  } else {
    time = task.computation_mflop * (1.0 - pf) / slowest +
           task.computation_mflop * pf / (slowest * n) +
           options_.parallel_sync_overhead * n;
  }
  if (task.required_memory_mb > min_avail_mb) time *= options_.paging_penalty;
  time = std::max(time, 1e-9);
  return std::max(task.computation_mflop, 1e-3) / time;
}

common::SimDuration GroundTruthModel::actual_time(
    const db::TaskPerfRecord& task, const std::vector<common::HostId>& hosts,
    common::Rng& rng) const {
  assert(!hosts.empty());

  // Same formula as the Predictor, but over live topology state.
  double slowest = 0.0;
  bool first = true;
  double min_avail_mb = 0.0;
  for (common::HostId hid : hosts) {
    const net::Host& h = topology_.host(hid);
    double eff = h.spec.speed_mflops / (1.0 + std::max(0.0, h.state.cpu_load));
    if (first || eff < slowest) slowest = eff;
    if (first || h.state.available_mb < min_avail_mb) {
      min_avail_mb = h.state.available_mb;
    }
    first = false;
  }
  slowest = std::max(slowest, 1e-6);

  const auto n = static_cast<double>(hosts.size());
  const double pf = std::clamp(task.parallel_fraction, 0.0, 1.0);
  double time;
  if (hosts.size() == 1) {
    time = task.computation_mflop / slowest;
  } else {
    time = task.computation_mflop * (1.0 - pf) / slowest +
           task.computation_mflop * pf / (slowest * n) +
           options_.parallel_sync_overhead * n;
  }
  if (task.required_memory_mb > min_avail_mb) time *= options_.paging_penalty;

  if (noise_cv_ > 0.0) {
    // Multiplicative log-ish noise, floored so time stays positive.
    time *= rng.normal(1.0, noise_cv_, 0.05);
  }
  return time;
}

}  // namespace vdce::predict
