// Performance prediction — "the core of the given built-in scheduling
// algorithms is the performance prediction phase, which is provided by
// separate function evaluations of each task on each resource" (§3).
//
// The model follows the practical NOW-prediction approach the paper cites
// (Yan & Zhang): a task's time on a non-dedicated host is its work divided
// by the host's *effective* speed, where effective speed is the nominal
// speed degraded by the measured background load; memory pressure adds a
// paging penalty.  Two refinements from the paper's design:
//
//  * Measured history wins: once the task-performance database has recorded
//    executions of this task on this host (the Site Manager writes them
//    after every run, §4.1), the measured mean replaces the analytic
//    estimate — prediction sharpens as the system is used (experiment E3).
//
//  * Parallel tasks (computation mode "parallel", N nodes) follow an
//    Amdahl split: the serial fraction runs at one node's effective speed,
//    the parallel fraction is divided across the N selected nodes, and a
//    per-node synchronization overhead is charged.
//
// Prediction consumes the *database view* of a resource (ResourceRecord),
// never topology ground truth: the scheduler can only be as good as its
// monitoring pipeline, and that gap is measured by benches E3/E4.
#pragma once

#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "db/resource_perf.hpp"
#include "db/task_perf.hpp"
#include "net/topology.hpp"

namespace vdce::predict {

struct ModelOptions {
  /// Measured mean is trusted once at least this many runs were recorded.
  std::size_t min_measurements = 1;
  /// Per-node synchronization overhead for parallel tasks (seconds).
  common::SimDuration parallel_sync_overhead = 0.01;
  /// Multiplier applied when required memory exceeds available memory
  /// (paging); infeasible if required exceeds *total* memory.
  double paging_penalty = 4.0;
};

class Predictor {
 public:
  explicit Predictor(ModelOptions options = {}) : options_(options) {}

  /// Predict(task_i, R_j) for a sequential placement, or a parallel task on
  /// `nodes` homogeneous-ish hosts (pass the actual records selected; the
  /// slowest one gates the parallel part).  Fails with kNoFeasibleResource
  /// when the task cannot run there at all (memory exceeds total).
  common::Expected<common::SimDuration> predict(
      const db::TaskPerfRecord& task,
      const std::vector<db::ResourceRecord>& hosts,
      const db::TaskPerformanceDb* measured_db = nullptr) const;

  /// Single-host convenience overload.
  common::Expected<common::SimDuration> predict(
      const db::TaskPerfRecord& task, const db::ResourceRecord& host,
      const db::TaskPerformanceDb* measured_db = nullptr) const;

  /// Effective sustainable MFLOPS of a host under its last measured load.
  [[nodiscard]] static double effective_mflops(const db::ResourceRecord& host);

  [[nodiscard]] const ModelOptions& options() const noexcept { return options_; }

 private:
  ModelOptions options_;
};

/// Ground truth: what an execution *actually* costs on the live topology.
/// Same functional form as the Predictor but reading true host state and
/// adding multiplicative noise — the gap between this and the prediction is
/// precisely what experiments E3/E6 quantify.
class GroundTruthModel {
 public:
  /// `noise_cv` is the coefficient of variation of the multiplicative noise
  /// (0 = perfectly deterministic executions).
  GroundTruthModel(const net::Topology& topology, double noise_cv,
                   ModelOptions options = {})
      : topology_(topology), noise_cv_(noise_cv), options_(options) {}

  /// Actual execution time of `task` on live hosts `hosts` (parallel tasks
  /// pass all assigned nodes).  Never fails: an overloaded host just runs
  /// slowly.
  common::SimDuration actual_time(const db::TaskPerfRecord& task,
                                  const std::vector<common::HostId>& hosts,
                                  common::Rng& rng) const;

  /// Instantaneous progress rate (MFLOP/s) of the task under *current* live
  /// loads.  The Data Manager executes tasks in quanta, re-reading this
  /// rate at each quantum boundary, so background-load changes mid-run
  /// speed tasks up or slow them down — the behaviour the overload-
  /// rescheduling experiment (E6) depends on.  When `exclude_own_share` is
  /// true, each host's load is reduced by 1.0 first (the caller has already
  /// added the task's own contribution to the topology).
  double rate_mflops(const db::TaskPerfRecord& task,
                     const std::vector<common::HostId>& hosts,
                     bool exclude_own_share) const;

 private:
  const net::Topology& topology_;
  double noise_cv_;
  ModelOptions options_;
};

}  // namespace vdce::predict
