// Application store — the editor's server-side save space.
//
// §2: the Application Editor is served from the VDCE Server; applications a
// user draws are kept at the site so they can be reopened, shared, and
// resubmitted.  The store keeps each user's applications as AFG DSL text,
// validated at save time, and persists to a directory of
// "<user>/<app-name>.afg" files.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"

namespace vdce::editor {

class AppStore {
 public:
  /// Save (or replace) an application under the user's name space.  The
  /// graph is validated first; invalid applications are rejected the way
  /// the editor would refuse to save a broken canvas.
  common::Status save(const std::string& user, const afg::Afg& graph);

  /// Load a saved application by name.
  common::Expected<afg::Afg> load(const std::string& user,
                                  const std::string& app_name) const;

  common::Status remove(const std::string& user, const std::string& app_name);

  /// Application names saved by a user, sorted.
  [[nodiscard]] std::vector<std::string> list(const std::string& user) const;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Persist every application as "<dir>/<user>/<app-name>.afg".
  common::Status save_to(const std::string& directory) const;
  static common::Expected<AppStore> load_from(const std::string& directory);

 private:
  // user -> app name -> DSL text.
  std::map<std::string, std::map<std::string, std::string>> apps_;
};

}  // namespace vdce::editor
