#include "editor/builder.hpp"

#include <cassert>
#include <utility>

namespace vdce::editor {

afg::TaskNode& TaskHandle::node() { return graph_->task(id_); }

TaskHandle& TaskHandle::sequential() {
  node().props.mode = afg::ComputationMode::kSequential;
  node().props.num_nodes = 1;
  return *this;
}

TaskHandle& TaskHandle::parallel(int nodes) {
  assert(nodes >= 1);
  node().props.mode = afg::ComputationMode::kParallel;
  node().props.num_nodes = nodes;
  return *this;
}

TaskHandle& TaskHandle::prefer_machine_type(const std::string& type) {
  node().props.preferred_machine_type = type;
  return *this;
}

TaskHandle& TaskHandle::prefer_machine(const std::string& host_name) {
  node().props.preferred_machine = host_name;
  return *this;
}

TaskHandle& TaskHandle::input_file(const std::string& path,
                                   double size_bytes) {
  node().props.inputs.push_back(afg::FileSpec{path, size_bytes, false});
  return *this;
}

TaskHandle& TaskHandle::dataflow_input() {
  node().props.inputs.push_back(afg::FileSpec{"", 0.0, true});
  return *this;
}

TaskHandle& TaskHandle::output_file(const std::string& path,
                                    double size_bytes) {
  node().props.outputs.push_back(afg::FileSpec{path, size_bytes, false});
  return *this;
}

TaskHandle& TaskHandle::output_data(double size_bytes) {
  node().props.outputs.push_back(afg::FileSpec{"", size_bytes, false});
  return *this;
}

TaskHandle& TaskHandle::request_service(const std::string& service) {
  node().props.services.push_back(service);
  return *this;
}

TaskHandle AppBuilder::task(const std::string& instance_name,
                            const std::string& task_name) {
  auto id = try_task(instance_name, task_name);
  assert(id.has_value());
  return TaskHandle(graph_, *id);
}

common::Expected<afg::TaskId> AppBuilder::try_task(
    const std::string& instance_name, const std::string& task_name) {
  return graph_.add_task(instance_name, task_name, afg::TaskProperties{});
}

common::Expected<int> AppBuilder::link(const TaskHandle& src,
                                       const TaskHandle& dst, int from_port) {
  afg::TaskNode& to = graph_.task(dst.id());
  // Ensure the source port exists; an editor would refuse the gesture,
  // here we default a data output so simple graphs need no explicit sizes.
  afg::TaskNode& from = graph_.task(src.id());
  while (from.out_ports() <= from_port) {
    from.props.outputs.push_back(afg::FileSpec{"", 0.0, false});
  }
  int to_port = to.in_ports();
  to.props.inputs.push_back(afg::FileSpec{"", 0.0, true});
  auto st = graph_.connect(src.id(), from_port, dst.id(), to_port);
  if (!st.ok()) return st.error();
  return to_port;
}

common::Status AppBuilder::connect(const TaskHandle& src, int from_port,
                                   const TaskHandle& dst, int to_port) {
  return graph_.connect(src.id(), from_port, dst.id(), to_port);
}

common::Expected<afg::Afg> AppBuilder::build() {
  auto st = graph_.validate();
  if (!st.ok()) return st.error();
  return std::exchange(graph_, afg::Afg{});
}

}  // namespace vdce::editor
