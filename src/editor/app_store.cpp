#include "editor/app_store.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "editor/dsl.hpp"

namespace vdce::editor {

common::Status AppStore::save(const std::string& user, const afg::Afg& graph) {
  if (user.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument, "empty user"};
  }
  if (graph.name().empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "application needs a name to be saved"};
  }
  auto valid = graph.validate();
  if (!valid.ok()) return valid;
  apps_[user][graph.name()] = write_afg(graph);
  return common::Status::success();
}

common::Expected<afg::Afg> AppStore::load(const std::string& user,
                                          const std::string& app_name) const {
  auto user_it = apps_.find(user);
  if (user_it != apps_.end()) {
    auto app_it = user_it->second.find(app_name);
    if (app_it != user_it->second.end()) return parse_afg(app_it->second);
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "no saved application '" + app_name + "' for " + user};
}

common::Status AppStore::remove(const std::string& user,
                                const std::string& app_name) {
  auto user_it = apps_.find(user);
  if (user_it == apps_.end() || user_it->second.erase(app_name) == 0) {
    return common::Error{common::ErrorCode::kNotFound,
                         "no saved application '" + app_name + "'"};
  }
  if (user_it->second.empty()) apps_.erase(user_it);
  return common::Status::success();
}

std::vector<std::string> AppStore::list(const std::string& user) const {
  std::vector<std::string> out;
  auto user_it = apps_.find(user);
  if (user_it != apps_.end()) {
    for (const auto& [name, text] : user_it->second) out.push_back(name);
  }
  return out;
}

std::size_t AppStore::size() const noexcept {
  std::size_t total = 0;
  for (const auto& [user, apps] : apps_) total += apps.size();
  return total;
}

namespace {

/// File-system-safe rendering of an application name ("Linear Equation
/// Solver" -> "Linear_Equation_Solver").
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }
  return out;
}

}  // namespace

common::Status AppStore::save_to(const std::string& directory) const {
  for (const auto& [user, apps] : apps_) {
    std::filesystem::path dir = std::filesystem::path(directory) / user;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return common::Error{common::ErrorCode::kIoError,
                           "cannot create " + dir.string()};
    }
    for (const auto& [name, text] : apps) {
      std::ofstream out(dir / (sanitize(name) + ".afg"), std::ios::trunc);
      if (!out) {
        return common::Error{common::ErrorCode::kIoError,
                             "cannot write " + name};
      }
      out << text;
    }
  }
  return common::Status::success();
}

common::Expected<AppStore> AppStore::load_from(const std::string& directory) {
  AppStore store;
  std::error_code ec;
  for (const auto& user_dir :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!user_dir.is_directory()) continue;
    const std::string user = user_dir.path().filename().string();
    for (const auto& file : std::filesystem::directory_iterator(user_dir)) {
      if (file.path().extension() != ".afg") continue;
      std::ifstream in(file.path());
      std::ostringstream buffer;
      buffer << in.rdbuf();
      auto graph = parse_afg(buffer.str());
      if (!graph) return graph.error();
      auto st = store.save(user, *graph);
      if (!st.ok()) return st.error();
    }
  }
  if (ec) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot read " + directory + ": " + ec.message()};
  }
  return store;
}

}  // namespace vdce::editor
