// Editor presentation helpers: the task-properties panel and library menus.
//
// `render_properties_panel` reproduces the paper's Figure-1 "TASK
// PROPERTIES WINDOW" content for a task instance; `render_afg_summary`
// prints the flow graph; `render_library_menu` lists the menu-driven task
// libraries a user picks from (§2).  These back the examples' console
// output and the visualization service.
#pragma once

#include <string>

#include "afg/graph.hpp"
#include "tasklib/registry.hpp"

namespace vdce::editor {

/// Figure-1-style panel, e.g.:
///   Task <LU_Decomposition>
///     Computation Type: <parallel>
///     Number of Nodes: 2
///     Preferred Machine Type: <any>
///     Preferred Machine: <any>
///     Input: <1> </users/VDCE/user_k/matrix_A.dat, SIZE=124880>
///     Output: <1> <dataflow consumer(s): Forward_Substitution>
std::string render_properties_panel(const afg::Afg& graph, afg::TaskId id);

/// Multi-line textual rendering of the whole application flow graph.
std::string render_afg_summary(const afg::Afg& graph);

/// The menu of a task library as the editor would display it.
std::string render_library_menu(const tasklib::TaskRegistry& registry,
                                const std::string& library);

}  // namespace vdce::editor
