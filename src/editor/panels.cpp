#include "editor/panels.hpp"

#include "common/strings.hpp"

namespace vdce::editor {

std::string render_properties_panel(const afg::Afg& graph, afg::TaskId id) {
  const afg::TaskNode& t = graph.task(id);
  std::string out;
  out += "Task <" + t.instance_name + ">  (impl: " + t.task_name + ")\n";
  out += "  Computation Type: <" + std::string(to_string(t.props.mode)) + ">\n";
  out += "  Number of Nodes: " + std::to_string(t.props.num_nodes) + "\n";
  out += "  Preferred Machine Type: <" +
         (t.props.preferred_machine_type.empty() ? "any"
                                                 : t.props.preferred_machine_type) +
         ">\n";
  out += "  Preferred Machine: <" +
         (t.props.preferred_machine.empty() ? "any" : t.props.preferred_machine) +
         ">\n";

  out += "  Input: <" + std::to_string(t.in_ports()) + ">";
  for (const afg::FileSpec& f : t.props.inputs) {
    if (f.dataflow) {
      out += " <dataflow>";
    } else if (!f.path.empty()) {
      out += " <" + f.path + ", SIZE=" + common::format_double(f.size_bytes, 0) + ">";
    } else {
      out += " <none>";
    }
  }
  out += "\n";

  out += "  Output: <" + std::to_string(t.out_ports()) + ">";
  for (int p = 0; p < t.out_ports(); ++p) {
    const afg::FileSpec& f = t.props.outputs[static_cast<std::size_t>(p)];
    if (!f.path.empty()) {
      out += " <" + f.path + ", SIZE=" + common::format_double(f.size_bytes, 0) + ">";
    } else {
      // Name the consumers so the panel shows where data flows.
      std::string consumers;
      for (const afg::Edge& e : graph.out_edges(id)) {
        if (e.from_port != p) continue;
        if (!consumers.empty()) consumers += ", ";
        consumers += graph.task(e.to).instance_name;
      }
      out += " <data";
      if (f.size_bytes > 0) {
        out += ", SIZE=" + common::format_double(f.size_bytes, 0);
      }
      if (!consumers.empty()) out += " -> " + consumers;
      out += ">";
    }
  }
  out += "\n";

  if (!t.props.services.empty()) {
    out += "  Services: " + common::join(t.props.services, ", ") + "\n";
  }
  return out;
}

std::string render_afg_summary(const afg::Afg& graph) {
  std::string out = "Application Flow Graph: " + graph.name() + "\n";
  out += "  tasks: " + std::to_string(graph.task_count()) +
         ", edges: " + std::to_string(graph.edges().size()) + "\n";
  for (const afg::TaskNode& t : graph.tasks()) {
    out += "  [" + std::to_string(t.id.value()) + "] " + t.instance_name +
           " (" + t.task_name + ", " + to_string(t.props.mode);
    if (t.props.mode == afg::ComputationMode::kParallel) {
      out += " x" + std::to_string(t.props.num_nodes);
    }
    out += ")";
    auto children = graph.children(t.id);
    if (!children.empty()) {
      out += " ->";
      for (afg::TaskId c : children) out += " " + graph.task(c).instance_name;
    }
    out += "\n";
  }
  return out;
}

std::string render_library_menu(const tasklib::TaskRegistry& registry,
                                const std::string& library) {
  std::string out = "Library <" + library + ">:\n";
  for (const std::string& name : registry.tasks_in_library(library)) {
    auto perf = registry.perf(name);
    out += "  " + name;
    if (perf) {
      out += "  (" + common::format_double(perf->computation_mflop, 0) +
             " MFLOP, base " + common::format_double(perf->base_exec_time, 2) +
             "s, mem " + common::format_double(perf->required_memory_mb, 0) +
             "MB)";
    }
    out += "\n";
  }
  return out;
}

}  // namespace vdce::editor
