// Application builder — the programmatic face of the paper's web-based
// Application Editor (§2).
//
// The editor's workflow is: pick tasks from menu-driven libraries, drop
// them on the canvas, wire their ports, then fill each task's properties
// panel.  AppBuilder mirrors that workflow in code:
//
//   AppBuilder app("Linear Equation Solver");
//   auto lu = app.task("LU_Decomposition", "matrix.lu_decomposition")
//                 .parallel(2)
//                 .input_file("/users/VDCE/user_k/matrix_A.dat", 124'880)
//                 .output_data(800'000);
//   auto fwd = app.task("Forward", "matrix.forward_substitution")
//                 .prefer_machine_type("SUN solaris");
//   app.link(lu, fwd);          // output port -> fresh dataflow input port
//   afg::Afg graph = app.build().value();
//
// See DESIGN.md "Substitutions" for why this replaces the web GUI: the
// scheduler and runtime consume only the AFG the editor produced.
#pragma once

#include <string>

#include "afg/graph.hpp"
#include "common/expected.hpp"

namespace vdce::editor {

class AppBuilder;

/// Chainable handle to one task being configured (the "properties panel").
class TaskHandle {
 public:
  [[nodiscard]] afg::TaskId id() const noexcept { return id_; }

  TaskHandle& sequential();
  TaskHandle& parallel(int nodes);
  TaskHandle& prefer_machine_type(const std::string& type);
  TaskHandle& prefer_machine(const std::string& host_name);

  /// Append an input port bound to a user file of known size.
  TaskHandle& input_file(const std::string& path, double size_bytes);
  /// Append an input port to be fed by a parent task (dataflow).
  TaskHandle& dataflow_input();
  /// Append an output port writing a user file.
  TaskHandle& output_file(const std::string& path, double size_bytes);
  /// Append an anonymous output port carrying `size_bytes` downstream.
  TaskHandle& output_data(double size_bytes);
  /// Request a runtime service ("io", "console", "visualization").
  TaskHandle& request_service(const std::string& service);

 private:
  friend class AppBuilder;
  TaskHandle(afg::Afg& graph, afg::TaskId id) : graph_(&graph), id_(id) {}
  afg::TaskNode& node();

  afg::Afg* graph_;
  afg::TaskId id_;
};

class AppBuilder {
 public:
  explicit AppBuilder(const std::string& application_name)
      : graph_(application_name) {}

  /// Place a task instance on the canvas.  Panics (assert) on duplicate
  /// instance names in debug builds; use try_task for checked creation.
  TaskHandle task(const std::string& instance_name,
                  const std::string& task_name);
  common::Expected<afg::TaskId> try_task(const std::string& instance_name,
                                         const std::string& task_name);

  /// Wire src's output port `from_port` to a *new* dataflow input port on
  /// dst — the common editor gesture.  Returns the input port index used.
  common::Expected<int> link(const TaskHandle& src, const TaskHandle& dst,
                             int from_port = 0);

  /// Explicit port wiring (both ports must already exist).
  common::Status connect(const TaskHandle& src, int from_port,
                         const TaskHandle& dst, int to_port);

  /// Validate and hand over the finished AFG.  The builder is left empty.
  common::Expected<afg::Afg> build();

  /// Peek at the graph under construction (tests).
  [[nodiscard]] const afg::Afg& graph() const noexcept { return graph_; }

 private:
  afg::Afg graph_;
};

}  // namespace vdce::editor
