// AFG description language — the textual serialization of an application.
//
// The paper's editor saved applications server-side after the user drew
// them; this DSL is the equivalent on-disk form.  It is deliberately
// line-oriented and diff-friendly:
//
//   application "Linear Equation Solver"
//
//   task LU_Decomposition matrix.lu_decomposition {
//     mode parallel
//     nodes 2
//     machine_type any
//     machine any
//     input file /users/VDCE/user_k/matrix_A.dat 124880
//     output data 800000
//     service visualization
//   }
//
//   connect LU_Decomposition:0 -> Forward_Substitution:0
//
// `input dataflow` declares a port to be fed by an edge; `connect` lines
// may also mark existing file inputs as dataflow (matching the editor's
// behaviour when the user wires a port that had a file bound).
#pragma once

#include <string>

#include "afg/graph.hpp"
#include "common/expected.hpp"

namespace vdce::editor {

/// Serialize an AFG to DSL text (round-trips through parse_afg).
std::string write_afg(const afg::Afg& graph);

/// Parse DSL text into an AFG.  Errors carry the offending line number.
common::Expected<afg::Afg> parse_afg(const std::string& text);

}  // namespace vdce::editor
