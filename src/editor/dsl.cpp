#include "editor/dsl.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace vdce::editor {

namespace {

std::string quote(const std::string& s) { return "\"" + s + "\""; }

common::Error line_error(std::size_t line_no, const std::string& what) {
  return common::Error{common::ErrorCode::kParseError,
                       "line " + std::to_string(line_no) + ": " + what};
}

/// Parse "Name:port" into its pieces.
common::Expected<std::pair<std::string, int>> parse_endpoint(
    const std::string& text, std::size_t line_no) {
  auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 >= text.size()) {
    return line_error(line_no, "expected 'task:port', got '" + text + "'");
  }
  auto port = common::parse_int(text.substr(colon + 1));
  if (!port || *port < 0) {
    return line_error(line_no, "bad port in '" + text + "'");
  }
  return std::make_pair(text.substr(0, colon), static_cast<int>(*port));
}

}  // namespace

std::string write_afg(const afg::Afg& graph) {
  std::string out = "application " + quote(graph.name()) + "\n";

  for (const afg::TaskNode& t : graph.tasks()) {
    out += "\ntask " + t.instance_name + " " + t.task_name + " {\n";
    out += "  mode " + std::string(to_string(t.props.mode)) + "\n";
    out += "  nodes " + std::to_string(t.props.num_nodes) + "\n";
    out += "  machine_type " +
           (t.props.preferred_machine_type.empty()
                ? "any"
                : quote(t.props.preferred_machine_type)) +
           "\n";
    out += "  machine " +
           (t.props.preferred_machine.empty() ? "any"
                                              : quote(t.props.preferred_machine)) +
           "\n";
    for (const afg::FileSpec& f : t.props.inputs) {
      if (f.dataflow) {
        out += "  input dataflow\n";
      } else if (!f.path.empty()) {
        out += "  input file " + f.path + " " +
               common::format_double(f.size_bytes, 0) + "\n";
      } else {
        out += "  input none\n";
      }
    }
    for (const afg::FileSpec& f : t.props.outputs) {
      if (!f.path.empty()) {
        out += "  output file " + f.path + " " +
               common::format_double(f.size_bytes, 0) + "\n";
      } else {
        out += "  output data " + common::format_double(f.size_bytes, 0) + "\n";
      }
    }
    for (const std::string& s : t.props.services) {
      out += "  service " + s + "\n";
    }
    out += "}\n";
  }

  if (!graph.edges().empty()) out += "\n";
  for (const afg::Edge& e : graph.edges()) {
    out += "connect " + graph.task(e.from).instance_name + ":" +
           std::to_string(e.from_port) + " -> " +
           graph.task(e.to).instance_name + ":" + std::to_string(e.to_port) +
           "\n";
  }
  return out;
}

common::Expected<afg::Afg> parse_afg(const std::string& text) {
  afg::Afg graph;
  bool saw_application = false;

  // Current task block being accumulated, if any.
  bool in_task = false;
  std::string task_instance;
  std::string task_impl;
  afg::TaskProperties props;
  std::size_t task_line = 0;

  struct PendingEdge {
    std::string from;
    int from_port;
    std::string to;
    int to_port;
    std::size_t line_no;
  };
  std::vector<PendingEdge> pending_edges;

  auto strip_quotes = [](std::string s) {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
      return s.substr(1, s.size() - 2);
    }
    return s;
  };

  const auto lines = common::split(text, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    std::string_view line = common::trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;

    auto tokens = common::split_ws(line);
    const std::string& head = tokens[0];

    if (head == "application") {
      if (tokens.size() < 2) return line_error(line_no, "application needs a name");
      // Re-join so quoted names may contain spaces.
      std::string name(common::trim(line.substr(std::string("application").size())));
      graph.set_name(strip_quotes(name));
      saw_application = true;
      continue;
    }

    if (head == "task") {
      if (in_task) return line_error(line_no, "nested task block");
      if (tokens.size() != 4 || tokens[3] != "{") {
        return line_error(line_no, "expected: task <instance> <impl> {");
      }
      in_task = true;
      task_instance = tokens[1];
      task_impl = tokens[2];
      props = afg::TaskProperties{};
      task_line = line_no;
      continue;
    }

    if (head == "}") {
      if (!in_task) return line_error(line_no, "unmatched '}'");
      auto id = graph.add_task(task_instance, task_impl, std::move(props));
      if (!id) return line_error(task_line, id.error().message);
      in_task = false;
      continue;
    }

    if (in_task) {
      if (head == "mode") {
        if (tokens.size() != 2) return line_error(line_no, "mode needs a value");
        if (tokens[1] == "sequential") {
          props.mode = afg::ComputationMode::kSequential;
        } else if (tokens[1] == "parallel") {
          props.mode = afg::ComputationMode::kParallel;
        } else {
          return line_error(line_no, "bad mode '" + tokens[1] + "'");
        }
      } else if (head == "nodes") {
        if (tokens.size() != 2) return line_error(line_no, "nodes needs a count");
        auto n = common::parse_int(tokens[1]);
        if (!n || *n < 1) return line_error(line_no, "bad node count");
        props.num_nodes = static_cast<int>(*n);
      } else if (head == "machine_type") {
        if (tokens.size() < 2) return line_error(line_no, "machine_type needs a value");
        std::string v(common::trim(line.substr(head.size())));
        props.preferred_machine_type = (v == "any") ? "" : strip_quotes(v);
      } else if (head == "machine") {
        if (tokens.size() < 2) return line_error(line_no, "machine needs a value");
        std::string v(common::trim(line.substr(head.size())));
        props.preferred_machine = (v == "any") ? "" : strip_quotes(v);
      } else if (head == "input") {
        if (tokens.size() == 2 && tokens[1] == "dataflow") {
          props.inputs.push_back(afg::FileSpec{"", 0.0, true});
        } else if (tokens.size() == 2 && tokens[1] == "none") {
          props.inputs.push_back(afg::FileSpec{"", 0.0, false});
        } else if (tokens.size() == 4 && tokens[1] == "file") {
          auto size = common::parse_double(tokens[3]);
          if (!size || *size < 0) return line_error(line_no, "bad input size");
          props.inputs.push_back(afg::FileSpec{tokens[2], *size, false});
        } else {
          return line_error(line_no,
                            "expected: input dataflow | input none | "
                            "input file <path> <bytes>");
        }
      } else if (head == "output") {
        if (tokens.size() == 3 && tokens[1] == "data") {
          auto size = common::parse_double(tokens[2]);
          if (!size || *size < 0) return line_error(line_no, "bad output size");
          props.outputs.push_back(afg::FileSpec{"", *size, false});
        } else if (tokens.size() == 4 && tokens[1] == "file") {
          auto size = common::parse_double(tokens[3]);
          if (!size || *size < 0) return line_error(line_no, "bad output size");
          props.outputs.push_back(afg::FileSpec{tokens[2], *size, false});
        } else {
          return line_error(
              line_no, "expected: output data <bytes> | output file <path> <bytes>");
        }
      } else if (head == "service") {
        if (tokens.size() != 2) return line_error(line_no, "service needs a name");
        props.services.push_back(tokens[1]);
      } else {
        return line_error(line_no, "unknown task property '" + head + "'");
      }
      continue;
    }

    if (head == "connect") {
      if (tokens.size() != 4 || tokens[2] != "->") {
        return line_error(line_no, "expected: connect A:p -> B:q");
      }
      auto from = parse_endpoint(tokens[1], line_no);
      auto to = parse_endpoint(tokens[3], line_no);
      if (!from) return from.error();
      if (!to) return to.error();
      pending_edges.push_back(PendingEdge{from->first, from->second, to->first,
                                          to->second, line_no});
      continue;
    }

    return line_error(line_no, "unknown directive '" + head + "'");
  }

  if (in_task) return line_error(task_line, "unterminated task block");
  if (!saw_application) {
    return common::Error{common::ErrorCode::kParseError,
                         "missing 'application' line"};
  }

  for (const PendingEdge& e : pending_edges) {
    auto from = graph.find_task(e.from);
    auto to = graph.find_task(e.to);
    if (!from) return line_error(e.line_no, from.error().message);
    if (!to) return line_error(e.line_no, to.error().message);
    auto st = graph.connect(*from, e.from_port, *to, e.to_port);
    if (!st.ok()) return line_error(e.line_no, st.error().message);
  }
  return graph;
}

}  // namespace vdce::editor
