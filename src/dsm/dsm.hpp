// Distributed Shared Memory — the paper's stated future work (§5): "We are
// also implementing a distributed shared memory model that will allow VDCE
// users to describe their applications using a shared memory paradigm."
//
// Design: an object-granularity, home-based MSI invalidation protocol —
// the standard software-DSM recipe of the era (Ivy/TreadMarks lineage),
// matched to VDCE's fabric:
//
//  * Every shared object has a *home* host.  The home holds the directory
//    (current owner, copyset of sharers) and the fallback copy.
//  * Read miss: ask the home (dsm.get).  If another host owns a modified
//    copy the home recalls it (dsm.fetch -> dsm.fetch_resp, owner
//    downgrades M->S), then answers with data; the reader joins the
//    copyset.
//  * Write miss/upgrade: the home invalidates every sharer (dsm.inv ->
//    dsm.inv_ack), recalls the owner if any, then grants exclusive
//    ownership with the data.
//  * The home serializes requests per object (a queue of pending requests
//    drains one at a time), which gives sequential consistency per object;
//    cross-object ordering is the application's job via the lock manager.
//
//  * Locks: a home-based queue lock (dsm.lock / dsm.unlock / dsm.grant).
//    Acquire/release plus the invalidation protocol give the usual
//    data-race-free programming model.
//
// The client API is asynchronous — simulated time passes while the
// protocol runs — so "threads" of a shared-memory application are
// continuation chains:
//
//   client.acquire("lock", [&](){
//     client.read("counter", [&](tasklib::Value v) {
//       int c = std::any_cast<int>(v);
//       client.write("counter", c + 1, [&](){
//         client.release("lock", [](){});
//       });
//     });
//   });
//
// Statistics (hits, misses, invalidations, forwards, bytes) feed the DSM
// experiment (bench_dsm), which contrasts sharing patterns against raw
// message passing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "net/fabric.hpp"
#include "tasklib/registry.hpp"

namespace vdce::dsm {

/// Cache state of an object at one node (MSI).
enum class CacheState { kInvalid, kShared, kModified };

constexpr const char* to_string(CacheState s) {
  switch (s) {
    case CacheState::kInvalid: return "I";
    case CacheState::kShared: return "S";
    case CacheState::kModified: return "M";
  }
  return "?";
}

struct DsmStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t owner_recalls = 0;
  std::uint64_t lock_grants = 0;

  void reset() { *this = DsmStats{}; }
};

class DsmRuntime;

/// Per-host client handle.  All operations are asynchronous: the callback
/// fires (possibly later in simulated time) when the operation completes.
class DsmClient {
 public:
  using ReadCallback = std::function<void(tasklib::Value)>;
  using DoneCallback = std::function<void()>;

  /// Read the object's current value (S or M locally, else fetched).
  void read(const std::string& name, ReadCallback on_value);

  /// Write a new value (acquires exclusive ownership first).
  void write(const std::string& name, tasklib::Value value,
             DoneCallback on_done);

  /// Acquire / release a named mutex (FIFO queue at its home).
  void acquire(const std::string& lock_name, DoneCallback on_acquired);
  void release(const std::string& lock_name, DoneCallback on_released);

  /// Arrive at a named barrier of `parties` participants; the callback
  /// fires once all parties of the current generation have arrived.  The
  /// barrier is reusable (generations are implicit).
  void barrier(const std::string& barrier_name, std::size_t parties,
               DoneCallback on_released);

  [[nodiscard]] common::HostId host() const noexcept { return host_; }
  /// Local cache state of an object (tests/observability).
  [[nodiscard]] CacheState state(const std::string& name) const;

 private:
  friend class DsmRuntime;
  DsmClient(DsmRuntime& runtime, common::HostId host)
      : runtime_(&runtime), host_(host) {}
  DsmRuntime* runtime_;
  common::HostId host_;
};

/// The DSM service: owns per-host protocol state and binds to the fabric
/// alongside the regular host agents (its messages are routed here by type
/// prefix "dsm.").
class DsmRuntime {
 public:
  /// `home_of` maps an object/lock name to its home host; defaults to a
  /// deterministic hash over the topology's hosts.
  DsmRuntime(net::Fabric& fabric, std::vector<common::HostId> hosts);

  DsmRuntime(const DsmRuntime&) = delete;
  DsmRuntime& operator=(const DsmRuntime&) = delete;

  /// Create (or reset) a shared object with an initial value, stored at its
  /// home.  `size_bytes` is charged to the wire for every data transfer.
  void define_object(const std::string& name, tasklib::Value initial,
                     double size_bytes);

  /// Client handle for code "running on" `host`.
  [[nodiscard]] DsmClient client(common::HostId host);

  /// Dispatch a "dsm.*" message (called by the environment's host agents).
  void handle(const net::Message& message);

  [[nodiscard]] common::HostId home_of(const std::string& name) const;
  [[nodiscard]] const DsmStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// The value at the home (after recalling the owner it is authoritative;
  /// tests use it for final-state checks without protocol traffic).
  [[nodiscard]] common::Expected<tasklib::Value> home_value(
      const std::string& name) const;

 private:
  friend class DsmClient;

  struct ObjectHome {
    tasklib::Value value;            ///< valid when no remote owner
    double size_bytes = 256;
    common::HostId owner;            ///< valid() when a host holds M
    std::set<common::HostId> sharers;
    /// Requests serialized at the home; front is in service.
    struct Pending {
      common::HostId requester;
      bool exclusive = false;
      std::uint64_t op = 0;
      tasklib::Value new_value;  ///< for write requests: the value to install
    };
    std::deque<Pending> queue;
    bool busy = false;
    int inv_acks_outstanding = 0;
  };

  struct CachedCopy {
    CacheState state = CacheState::kInvalid;
    tasklib::Value value;
  };

  struct LockHome {
    bool held = false;
    common::HostId holder;
    std::deque<std::pair<common::HostId, std::uint64_t>> waiters;
  };

  struct BarrierHome {
    /// Arrivals of the current generation: (host, op) pairs released
    /// together when the generation fills.
    std::vector<std::pair<common::HostId, std::uint64_t>> arrived;
  };

  struct LocalOps {
    // Continuations keyed by operation id.
    std::unordered_map<std::uint64_t, DsmClient::ReadCallback> reads;
    std::unordered_map<std::uint64_t, DsmClient::DoneCallback> dones;
    // Per (host, object) cache.
    std::unordered_map<std::string, CachedCopy> cache;
  };

  void client_read(common::HostId host, const std::string& name,
                   DsmClient::ReadCallback cb);
  void client_write(common::HostId host, const std::string& name,
                    tasklib::Value value, DsmClient::DoneCallback cb);
  void client_acquire(common::HostId host, const std::string& name,
                      DsmClient::DoneCallback cb);
  void client_release(common::HostId host, const std::string& name,
                      DsmClient::DoneCallback cb);
  void client_barrier(common::HostId host, const std::string& name,
                      std::size_t parties, DsmClient::DoneCallback cb);

  void home_service_next(const std::string& name);
  void home_grant(const std::string& name, const ObjectHome::Pending& req);
  void send(common::HostId from, common::HostId to, const std::string& type,
            double bytes, std::any payload);

  net::Fabric& fabric_;
  std::vector<common::HostId> hosts_;
  std::map<std::string, ObjectHome> objects_;  ///< indexed at the home
  std::map<std::string, LockHome> locks_;
  std::map<std::string, BarrierHome> barriers_;
  std::unordered_map<common::HostId, LocalOps> local_;
  DsmStats stats_;
  std::uint64_t next_op_ = 1;
};

}  // namespace vdce::dsm
