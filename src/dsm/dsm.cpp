#include "dsm/dsm.hpp"

#include <any>
#include <cassert>
#include <functional>

namespace vdce::dsm {

namespace {

// Wire payloads (internal to the protocol).
struct GetReq {
  std::string name;
  std::uint64_t op;
  common::HostId requester;
  bool exclusive;
  tasklib::Value new_value;  ///< writes carry the value to install
};
struct DataGrant {
  std::string name;
  std::uint64_t op;
  bool exclusive;
  tasklib::Value value;
};
struct Fetch {
  std::string name;
  bool downgrade;  ///< true: owner keeps a shared copy
};
struct FetchResp {
  std::string name;
  common::HostId from;
  bool downgraded;
  tasklib::Value value;
};
struct Inv {
  std::string name;
};
struct InvAck {
  std::string name;
  common::HostId from;
};
struct LockReq {
  std::string name;
  std::uint64_t op;
  common::HostId requester;
};
struct LockGrant {
  std::string name;
  std::uint64_t op;
};
struct Unlock {
  std::string name;
  std::uint64_t op;
  common::HostId requester;
};
struct BarrierArrive {
  std::string name;
  std::uint64_t op;
  common::HostId requester;
  std::size_t parties;
};

constexpr double kCtrlBytes = 96;

}  // namespace

// ---- client API ----------------------------------------------------------------

void DsmClient::read(const std::string& name, ReadCallback on_value) {
  runtime_->client_read(host_, name, std::move(on_value));
}

void DsmClient::write(const std::string& name, tasklib::Value value,
                      DoneCallback on_done) {
  runtime_->client_write(host_, name, std::move(value), std::move(on_done));
}

void DsmClient::acquire(const std::string& lock_name,
                        DoneCallback on_acquired) {
  runtime_->client_acquire(host_, lock_name, std::move(on_acquired));
}

void DsmClient::release(const std::string& lock_name,
                        DoneCallback on_released) {
  runtime_->client_release(host_, lock_name, std::move(on_released));
}

void DsmClient::barrier(const std::string& barrier_name, std::size_t parties,
                        DoneCallback on_released) {
  runtime_->client_barrier(host_, barrier_name, parties,
                           std::move(on_released));
}

CacheState DsmClient::state(const std::string& name) const {
  auto host_it = runtime_->local_.find(host_);
  if (host_it == runtime_->local_.end()) return CacheState::kInvalid;
  auto obj_it = host_it->second.cache.find(name);
  return obj_it == host_it->second.cache.end() ? CacheState::kInvalid
                                               : obj_it->second.state;
}

// ---- runtime ---------------------------------------------------------------------

DsmRuntime::DsmRuntime(net::Fabric& fabric, std::vector<common::HostId> hosts)
    : fabric_(fabric), hosts_(std::move(hosts)) {
  assert(!hosts_.empty());
}

common::HostId DsmRuntime::home_of(const std::string& name) const {
  return hosts_[std::hash<std::string>{}(name) % hosts_.size()];
}

void DsmRuntime::define_object(const std::string& name, tasklib::Value initial,
                               double size_bytes) {
  ObjectHome home;
  home.value = std::move(initial);
  home.size_bytes = size_bytes;
  objects_[name] = std::move(home);
  // Reset any cached copies from a previous definition.
  for (auto& [host, ops] : local_) ops.cache.erase(name);
}

DsmClient DsmRuntime::client(common::HostId host) {
  return DsmClient(*this, host);
}

common::Expected<tasklib::Value> DsmRuntime::home_value(
    const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "no DSM object " + name};
  }
  if (it->second.owner.valid()) {
    // A remote M copy is authoritative; consult it directly (in-process
    // shortcut for tests — protocol code never calls this).
    auto host_it = local_.find(it->second.owner);
    if (host_it != local_.end()) {
      auto obj_it = host_it->second.cache.find(name);
      if (obj_it != host_it->second.cache.end()) return obj_it->second.value;
    }
  }
  return it->second.value;
}

void DsmRuntime::send(common::HostId from, common::HostId to,
                      const std::string& type, double bytes,
                      std::any payload) {
  (void)fabric_.send(net::Message{from, to, type, bytes, std::move(payload)});
}

void DsmRuntime::client_read(common::HostId host, const std::string& name,
                             DsmClient::ReadCallback cb) {
  LocalOps& ops = local_[host];
  auto cached = ops.cache.find(name);
  if (cached != ops.cache.end() &&
      cached->second.state != CacheState::kInvalid) {
    ++stats_.read_hits;
    cb(cached->second.value);
    return;
  }
  ++stats_.read_misses;
  std::uint64_t op = next_op_++;
  ops.reads[op] = std::move(cb);
  send(host, home_of(name), "dsm.get", kCtrlBytes,
       GetReq{name, op, host, /*exclusive=*/false, {}});
}

void DsmRuntime::client_write(common::HostId host, const std::string& name,
                              tasklib::Value value,
                              DsmClient::DoneCallback cb) {
  LocalOps& ops = local_[host];
  auto cached = ops.cache.find(name);
  if (cached != ops.cache.end() &&
      cached->second.state == CacheState::kModified) {
    ++stats_.write_hits;
    cached->second.value = std::move(value);
    cb();
    return;
  }
  ++stats_.write_misses;
  std::uint64_t op = next_op_++;
  ops.dones[op] = std::move(cb);
  send(host, home_of(name), "dsm.get", kCtrlBytes,
       GetReq{name, op, host, /*exclusive=*/true, std::move(value)});
}

void DsmRuntime::client_acquire(common::HostId host, const std::string& name,
                                DsmClient::DoneCallback cb) {
  std::uint64_t op = next_op_++;
  local_[host].dones[op] = std::move(cb);
  send(host, home_of("lock:" + name), "dsm.lock", kCtrlBytes,
       LockReq{name, op, host});
}

void DsmRuntime::client_release(common::HostId host, const std::string& name,
                                DsmClient::DoneCallback cb) {
  std::uint64_t op = next_op_++;
  local_[host].dones[op] = std::move(cb);
  send(host, home_of("lock:" + name), "dsm.unlock", kCtrlBytes,
       Unlock{name, op, host});
}

void DsmRuntime::client_barrier(common::HostId host, const std::string& name,
                                std::size_t parties,
                                DsmClient::DoneCallback cb) {
  std::uint64_t op = next_op_++;
  local_[host].dones[op] = std::move(cb);
  send(host, home_of("barrier:" + name), "dsm.barrier", kCtrlBytes,
       BarrierArrive{name, op, host, parties});
}

// ---- home side -------------------------------------------------------------------

void DsmRuntime::home_service_next(const std::string& name) {
  ObjectHome& obj = objects_.at(name);
  if (obj.busy || obj.queue.empty()) return;
  obj.busy = true;
  const ObjectHome::Pending& req = obj.queue.front();
  const common::HostId home = home_of(name);

  obj.inv_acks_outstanding = 0;
  if (req.exclusive) {
    // Recall a remote owner; invalidate every sharer except the requester.
    if (obj.owner.valid() && obj.owner != req.requester) {
      ++stats_.owner_recalls;
      ++obj.inv_acks_outstanding;
      send(home, obj.owner, "dsm.fetch", kCtrlBytes,
           Fetch{name, /*downgrade=*/false});
    }
    for (common::HostId sharer : obj.sharers) {
      if (sharer == req.requester) continue;
      ++stats_.invalidations_sent;
      ++obj.inv_acks_outstanding;
      send(home, sharer, "dsm.inv", kCtrlBytes, Inv{name});
    }
  } else if (obj.owner.valid() && obj.owner != req.requester) {
    // Read while another host holds M: downgrade the owner to S.
    ++stats_.owner_recalls;
    ++obj.inv_acks_outstanding;
    send(home, obj.owner, "dsm.fetch", kCtrlBytes,
         Fetch{name, /*downgrade=*/true});
  }

  if (obj.inv_acks_outstanding == 0) home_grant(name, req);
}

void DsmRuntime::home_grant(const std::string& name,
                            const ObjectHome::Pending& req) {
  ObjectHome& obj = objects_.at(name);
  const common::HostId home = home_of(name);

  if (req.exclusive) {
    obj.sharers.clear();
    obj.owner = req.requester;
    // The new value is installed at the owner; the home copy is stale until
    // the next recall.
    send(home, req.requester, "dsm.data", obj.size_bytes,
         DataGrant{name, req.op, true, req.new_value});
  } else {
    obj.sharers.insert(req.requester);
    send(home, req.requester, "dsm.data", obj.size_bytes,
         DataGrant{name, req.op, false, obj.value});
  }
  obj.queue.pop_front();
  obj.busy = false;
  home_service_next(name);
}

// ---- message dispatch ---------------------------------------------------------------

void DsmRuntime::handle(const net::Message& message) {
  const std::string& type = message.type;

  if (type == "dsm.get") {
    const auto& req = std::any_cast<const GetReq&>(message.payload);
    ObjectHome& obj = objects_.at(req.name);
    obj.queue.push_back(ObjectHome::Pending{req.requester, req.exclusive,
                                            req.op, req.new_value});
    home_service_next(req.name);
    return;
  }

  if (type == "dsm.fetch") {
    const auto& fetch = std::any_cast<const Fetch&>(message.payload);
    LocalOps& ops = local_[message.dst];
    auto cached = ops.cache.find(fetch.name);
    tasklib::Value value;
    if (cached != ops.cache.end()) {
      value = cached->second.value;
      cached->second.state =
          fetch.downgrade ? CacheState::kShared : CacheState::kInvalid;
    }
    const ObjectHome& obj = objects_.at(fetch.name);
    send(message.dst, message.src, "dsm.fetch_resp", obj.size_bytes,
         FetchResp{fetch.name, message.dst, fetch.downgrade, std::move(value)});
    return;
  }

  if (type == "dsm.fetch_resp") {
    const auto& resp = std::any_cast<const FetchResp&>(message.payload);
    ObjectHome& obj = objects_.at(resp.name);
    obj.value = resp.value;
    if (resp.downgraded) {
      obj.sharers.insert(resp.from);  // the old owner keeps a shared copy
    }
    obj.owner = common::HostId{};
    if (--obj.inv_acks_outstanding == 0 && !obj.queue.empty()) {
      home_grant(resp.name, obj.queue.front());
    }
    return;
  }

  if (type == "dsm.inv") {
    const auto& inv = std::any_cast<const Inv&>(message.payload);
    LocalOps& ops = local_[message.dst];
    auto cached = ops.cache.find(inv.name);
    if (cached != ops.cache.end()) {
      cached->second.state = CacheState::kInvalid;
      cached->second.value = {};
    }
    send(message.dst, message.src, "dsm.inv_ack", kCtrlBytes,
         InvAck{inv.name, message.dst});
    return;
  }

  if (type == "dsm.inv_ack") {
    const auto& ack = std::any_cast<const InvAck&>(message.payload);
    ObjectHome& obj = objects_.at(ack.name);
    obj.sharers.erase(ack.from);
    if (--obj.inv_acks_outstanding == 0 && !obj.queue.empty()) {
      home_grant(ack.name, obj.queue.front());
    }
    return;
  }

  if (type == "dsm.data") {
    const auto& grant = std::any_cast<const DataGrant&>(message.payload);
    LocalOps& ops = local_[message.dst];
    CachedCopy& copy = ops.cache[grant.name];
    copy.state = grant.exclusive ? CacheState::kModified : CacheState::kShared;
    copy.value = grant.value;
    if (grant.exclusive) {
      auto done = ops.dones.find(grant.op);
      if (done != ops.dones.end()) {
        auto cb = std::move(done->second);
        ops.dones.erase(done);
        cb();
      }
    } else {
      auto read = ops.reads.find(grant.op);
      if (read != ops.reads.end()) {
        auto cb = std::move(read->second);
        ops.reads.erase(read);
        cb(copy.value);
      }
    }
    return;
  }

  if (type == "dsm.lock") {
    const auto& req = std::any_cast<const LockReq&>(message.payload);
    LockHome& lock = locks_[req.name];
    if (!lock.held) {
      lock.held = true;
      lock.holder = req.requester;
      ++stats_.lock_grants;
      send(message.dst, req.requester, "dsm.lock_grant", kCtrlBytes,
           LockGrant{req.name, req.op});
    } else {
      lock.waiters.emplace_back(req.requester, req.op);
    }
    return;
  }

  if (type == "dsm.lock_grant") {
    const auto& grant = std::any_cast<const LockGrant&>(message.payload);
    LocalOps& ops = local_[message.dst];
    auto done = ops.dones.find(grant.op);
    if (done != ops.dones.end()) {
      auto cb = std::move(done->second);
      ops.dones.erase(done);
      cb();
    }
    return;
  }

  if (type == "dsm.barrier") {
    const auto& arrive = std::any_cast<const BarrierArrive&>(message.payload);
    BarrierHome& barrier = barriers_[arrive.name];
    barrier.arrived.emplace_back(arrive.requester, arrive.op);
    if (barrier.arrived.size() >= arrive.parties) {
      // Generation complete: release every arrival (reuse lock_grant as the
      // generic completion message) and reset for the next generation.
      auto generation = std::move(barrier.arrived);
      barrier.arrived.clear();
      for (const auto& [host, op] : generation) {
        send(message.dst, host, "dsm.lock_grant", kCtrlBytes,
             LockGrant{arrive.name, op});
      }
    }
    return;
  }

  if (type == "dsm.unlock") {
    const auto& req = std::any_cast<const Unlock&>(message.payload);
    LockHome& lock = locks_[req.name];
    assert(lock.held);
    // Acknowledge the releaser, then pass the lock down the FIFO.
    send(message.dst, req.requester, "dsm.lock_grant", kCtrlBytes,
         LockGrant{req.name, req.op});
    if (lock.waiters.empty()) {
      lock.held = false;
      lock.holder = common::HostId{};
    } else {
      auto [next_host, next_op] = lock.waiters.front();
      lock.waiters.pop_front();
      lock.holder = next_host;
      ++stats_.lock_grants;
      send(message.dst, next_host, "dsm.lock_grant", kCtrlBytes,
           LockGrant{req.name, next_op});
    }
    return;
  }
}

}  // namespace vdce::dsm
