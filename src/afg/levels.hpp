// Level computation for list scheduling (§3).
//
// "The VDCE scheduling heuristic uses the level of each node to determine
// its priority. ... The level of a node in the graph is computed as the
// largest sum of computation costs along the path from the node to an exit
// node.  For the computation cost, the task (node) execution time on the
// base processor ... is used.  In VDCE the level of each node of an
// application flow graph is determined before the execution of the
// scheduling algorithm."
//
// Note the paper's definition is computation-only (no edge costs in the
// level), distinguishing it from HEFT-style upward rank; the bench suite's
// ablation (bench_schedule_length) quantifies that choice.
#pragma once

#include <functional>
#include <vector>

#include "afg/graph.hpp"
#include "common/expected.hpp"

namespace vdce::afg {

/// Maps a task to its computation cost on the base processor.  Usually
/// backed by the task-performance database's `base_exec_time`.
using CostFn = std::function<double(const TaskNode&)>;

/// Per-task levels, indexed by TaskId value.
struct Levels {
  std::vector<double> level;

  [[nodiscard]] double of(TaskId id) const { return level.at(id.value()); }

  /// Task ids ordered by decreasing level (higher level = higher priority);
  /// ties broken by task id for determinism.
  [[nodiscard]] std::vector<TaskId> by_priority() const;
};

/// Compute levels bottom-up over the DAG.  Fails if the graph is cyclic.
common::Expected<Levels> compute_levels(const Afg& graph, const CostFn& cost);

/// Variant including communication costs on edges (upward rank); used by
/// the ablation benches to compare against the paper's computation-only
/// levels.  `edge_cost(e)` should return the expected transfer time of the
/// edge's data over a representative link.
common::Expected<Levels> compute_levels_with_comm(
    const Afg& graph, const CostFn& cost,
    const std::function<double(const Edge&)>& edge_cost);

}  // namespace vdce::afg
