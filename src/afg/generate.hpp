// Synthetic AFG generators for tests and benchmarks.
//
// The paper evaluates on applications like the Linear Equation Solver
// (Fig. 1); its claims about the scheduler ("minimize the schedule length")
// need a population of graphs to quantify.  These generators produce the
// standard shapes of the list-scheduling literature the paper builds on
// (Adam/Chandy/Dickson, Kwok/Ahmad): layered random DAGs, fork-join
// pipelines, in-trees/out-trees, and independent task bags.
#pragma once

#include <string>

#include "afg/graph.hpp"
#include "common/rng.hpp"

namespace vdce::afg {

/// Parameters of a layered random DAG.
struct LayeredDagSpec {
  std::size_t tasks = 50;
  std::size_t width = 5;                ///< max tasks per layer
  double edge_density = 0.5;            ///< P(edge) between adjacent layers
  double min_mflop = 50.0;              ///< per-task computation size range
  double max_mflop = 2000.0;
  double min_output_bytes = 1e4;        ///< per-edge data volume range
  double max_output_bytes = 1e7;
  double parallel_task_fraction = 0.0;  ///< fraction made parallel (2-4 nodes)
  std::string task_library = "synthetic";
};

/// Random layered DAG.  Every non-entry task is guaranteed at least one
/// parent in the previous layer, so the graph is weakly connected per layer
/// chain and has no isolated "accidental entries".
Afg make_layered_dag(const LayeredDagSpec& spec, common::Rng& rng,
                     const std::string& name = "layered");

/// Fork-join: entry -> `width` parallel branches of `depth` tasks -> join.
Afg make_fork_join(std::size_t width, std::size_t depth, double mflop,
                   double output_bytes, const std::string& name = "forkjoin");

/// Linear chain of `length` tasks (pipeline).
Afg make_chain(std::size_t length, double mflop, double output_bytes,
               const std::string& name = "chain");

/// Bag of `count` independent tasks (parameter sweep shape).
Afg make_independent(std::size_t count, double mflop,
                     const std::string& name = "bag");

/// Binary in-tree (reduction) with `leaves` leaf tasks.
Afg make_reduction_tree(std::size_t leaves, double mflop, double output_bytes,
                        const std::string& name = "reduce");

/// The Figure-1 Linear Equation Solver skeleton with synthetic task names.
/// (The real-kernel version lives in the editor/tasklib layer; this one is
/// for scheduler-only tests that must not depend on tasklib.)
Afg make_linear_solver_shape(double matrix_bytes,
                             const std::string& name = "lin-solver");

}  // namespace vdce::afg
