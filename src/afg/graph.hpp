// Application flow graph (AFG).
//
// §2 of the paper: building an application is "building the application
// flow graph (AFG), and specifying the task properties of the application."
// An AFG is a DAG whose nodes are task *instances* (each referring to a
// task-library implementation by name) with logical input/output ports, and
// whose edges connect an output port of one task to an input port of
// another.  An input port fed by an edge is marked `dataflow` — exactly the
// marking visible in the paper's Figure 1 task-properties panels
// ("Input: <2> <dataflow, dataflow>").
//
// Task properties mirror the editor's popup panel: computation mode
// (sequential/parallel), number of nodes for parallel tasks, preferred
// machine type / specific machine, and input/output file specs with sizes
// (e.g. "matrix_A.dat, SIZE=124.88K" in Figure 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"

namespace vdce::afg {

using common::TaskId;

enum class ComputationMode { kSequential, kParallel };

constexpr const char* to_string(ComputationMode m) {
  return m == ComputationMode::kSequential ? "sequential" : "parallel";
}

/// An input or output file binding on a port.  `dataflow` inputs are
/// produced by a parent task at runtime; non-dataflow inputs name a file in
/// the user's VDCE store (or a URL via the I/O service).
struct FileSpec {
  std::string path;         ///< e.g. "/users/VDCE/user_k/matrix_A.dat"; empty for dataflow
  double size_bytes = 0.0;  ///< known size; 0 = unknown until runtime
  bool dataflow = false;    ///< supplied by a parent task via an edge

  [[nodiscard]] std::string describe() const {
    return dataflow ? "dataflow" : path;
  }
};

/// The editor's task-properties panel for one task instance.
struct TaskProperties {
  ComputationMode mode = ComputationMode::kSequential;
  int num_nodes = 1;  ///< processors used by a parallel implementation
  std::string preferred_machine_type;  ///< empty = "<any>"
  std::string preferred_machine;       ///< specific host name; empty = "<any>"
  std::vector<FileSpec> inputs;        ///< one per input port
  std::vector<FileSpec> outputs;       ///< one per output port
  std::vector<std::string> services;   ///< requested runtime services
};

/// A node of the AFG: an instance of a library task.
struct TaskNode {
  TaskId id;
  std::string instance_name;  ///< unique within the application
  std::string task_name;      ///< library implementation, e.g. "matrix.lu"
  TaskProperties props;

  [[nodiscard]] int in_ports() const {
    return static_cast<int>(props.inputs.size());
  }
  [[nodiscard]] int out_ports() const {
    return static_cast<int>(props.outputs.size());
  }
};

/// A dataflow edge between logical ports.
struct Edge {
  TaskId from;
  int from_port = 0;
  TaskId to;
  int to_port = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// The application flow graph.  Mutating operations validate port ranges
/// and reject duplicate connections immediately; acyclicity is checked by
/// `validate()` (called by the scheduler before interpreting the graph).
class Afg {
 public:
  Afg() = default;
  explicit Afg(std::string application_name)
      : name_(std::move(application_name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Add a task instance.  Fails if `instance_name` already exists.
  common::Expected<TaskId> add_task(const std::string& instance_name,
                                    const std::string& task_name,
                                    TaskProperties props);

  /// Connect from.out_port -> to.in_port.  Marks the target input as
  /// dataflow.  Fails on bad ids/ports, duplicate in-edges on a port, or
  /// self loops.
  common::Status connect(TaskId from, int from_port, TaskId to, int to_port);

  // --- queries ----------------------------------------------------------
  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] const TaskNode& task(TaskId id) const;
  [[nodiscard]] TaskNode& task(TaskId id);
  [[nodiscard]] const std::vector<TaskNode>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] common::Expected<TaskId> find_task(
      const std::string& instance_name) const;

  [[nodiscard]] std::vector<TaskId> parents(TaskId id) const;
  [[nodiscard]] std::vector<TaskId> children(TaskId id) const;
  [[nodiscard]] std::vector<Edge> in_edges(TaskId id) const;
  [[nodiscard]] std::vector<Edge> out_edges(TaskId id) const;

  /// Zero-allocation adjacency for hot paths: indices into `edges()` of the
  /// edges entering / leaving `id`, in edge insertion order (the same order
  /// `in_edges()`/`out_edges()` return — callers that sum floating-point
  /// transfer costs rely on that order being identical).
  [[nodiscard]] const std::vector<std::uint32_t>& in_edge_ids(TaskId id) const;
  [[nodiscard]] const std::vector<std::uint32_t>& out_edge_ids(TaskId id) const;
  [[nodiscard]] const Edge& edge(std::uint32_t edge_id) const {
    return edges_[edge_id];
  }
  [[nodiscard]] std::size_t in_degree(TaskId id) const {
    return in_edge_ids(id).size();
  }

  /// Entry nodes: no parents.  Exit nodes: no children.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// True if the task needs no input files at all (every input is either
  /// absent or dataflow-free) — the Fig. 2 "does not require input" case.
  [[nodiscard]] bool requires_input(TaskId id) const;

  /// Bytes flowing along an edge: the producing output port's declared
  /// size.
  [[nodiscard]] double edge_bytes(const Edge& e) const;

  /// Structural validation: acyclicity plus port-consistency.  Returns the
  /// first problem found.
  [[nodiscard]] common::Status validate() const;

  /// Topological order (stable: ties broken by insertion id).  Fails with
  /// kCycleDetected on a cyclic graph.
  [[nodiscard]] common::Expected<std::vector<TaskId>> topological_order() const;

 private:
  std::string name_;
  std::vector<TaskNode> tasks_;
  std::vector<Edge> edges_;
  // Adjacency index maintained by connect(): per-task edge ids into edges_,
  // kept in insertion order.  Edges are never removed, so the index never
  // goes stale.
  std::vector<std::vector<std::uint32_t>> in_index_;
  std::vector<std::vector<std::uint32_t>> out_index_;
};

}  // namespace vdce::afg
