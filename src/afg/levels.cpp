#include "afg/levels.hpp"

#include <algorithm>

namespace vdce::afg {

std::vector<TaskId> Levels::by_priority() const {
  std::vector<TaskId> order(level.size());
  for (std::size_t i = 0; i < level.size(); ++i) {
    order[i] = TaskId(static_cast<TaskId::value_type>(i));
  }
  std::sort(order.begin(), order.end(), [this](TaskId a, TaskId b) {
    if (level[a.value()] != level[b.value()]) {
      return level[a.value()] > level[b.value()];
    }
    return a < b;
  });
  return order;
}

namespace {

common::Expected<Levels> compute_impl(
    const Afg& graph, const CostFn& cost,
    const std::function<double(const Edge&)>* edge_cost) {
  auto order = graph.topological_order();
  if (!order) return order.error();

  Levels levels;
  levels.level.assign(graph.task_count(), 0.0);

  // Walk the topological order backwards: children are finalized before
  // their parents, so one pass suffices.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    TaskId id = *it;
    const TaskNode& node = graph.task(id);
    double best_child = 0.0;
    for (const Edge& e : graph.out_edges(id)) {
      double via = levels.level[e.to.value()];
      if (edge_cost != nullptr) via += (*edge_cost)(e);
      best_child = std::max(best_child, via);
    }
    levels.level[id.value()] = cost(node) + best_child;
  }
  return levels;
}

}  // namespace

common::Expected<Levels> compute_levels(const Afg& graph, const CostFn& cost) {
  return compute_impl(graph, cost, nullptr);
}

common::Expected<Levels> compute_levels_with_comm(
    const Afg& graph, const CostFn& cost,
    const std::function<double(const Edge&)>& edge_cost) {
  return compute_impl(graph, cost, &edge_cost);
}

}  // namespace vdce::afg
