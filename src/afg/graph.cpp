#include "afg/graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace vdce::afg {

common::Expected<TaskId> Afg::add_task(const std::string& instance_name,
                                       const std::string& task_name,
                                       TaskProperties props) {
  if (instance_name.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "empty task instance name"};
  }
  for (const TaskNode& t : tasks_) {
    if (t.instance_name == instance_name) {
      return common::Error{common::ErrorCode::kAlreadyExists,
                           "duplicate task instance: " + instance_name};
    }
  }
  if (props.num_nodes < 1) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "num_nodes must be >= 1 for " + instance_name};
  }
  if (props.mode == ComputationMode::kSequential && props.num_nodes != 1) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "sequential task cannot request multiple nodes: " +
                             instance_name};
  }
  TaskId id(static_cast<TaskId::value_type>(tasks_.size()));
  tasks_.push_back(TaskNode{id, instance_name, task_name, std::move(props)});
  in_index_.emplace_back();
  out_index_.emplace_back();
  return id;
}

common::Status Afg::connect(TaskId from, int from_port, TaskId to,
                            int to_port) {
  if (from.value() >= tasks_.size() || to.value() >= tasks_.size()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "connect: unknown task id"};
  }
  if (from == to) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "connect: self loop on " + task(from).instance_name};
  }
  const TaskNode& src = task(from);
  TaskNode& dst = task(to);
  if (from_port < 0 || from_port >= src.out_ports()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "connect: bad output port " + std::to_string(from_port) +
                             " on " + src.instance_name};
  }
  if (to_port < 0 || to_port >= dst.in_ports()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "connect: bad input port " + std::to_string(to_port) +
                             " on " + dst.instance_name};
  }
  for (std::uint32_t idx : in_index_[to.value()]) {
    if (edges_[idx].to_port == to_port) {
      return common::Error{common::ErrorCode::kAlreadyExists,
                           "input port " + std::to_string(to_port) + " of " +
                               dst.instance_name + " already connected"};
    }
  }
  const auto edge_id = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(Edge{from, from_port, to, to_port});
  out_index_[from.value()].push_back(edge_id);
  in_index_[to.value()].push_back(edge_id);
  dst.props.inputs[static_cast<std::size_t>(to_port)].dataflow = true;
  dst.props.inputs[static_cast<std::size_t>(to_port)].path.clear();
  return common::Status::success();
}

const TaskNode& Afg::task(TaskId id) const {
  assert(id.value() < tasks_.size());
  return tasks_[id.value()];
}

TaskNode& Afg::task(TaskId id) {
  assert(id.value() < tasks_.size());
  return tasks_[id.value()];
}

common::Expected<TaskId> Afg::find_task(
    const std::string& instance_name) const {
  for (const TaskNode& t : tasks_) {
    if (t.instance_name == instance_name) return t.id;
  }
  return common::Error{common::ErrorCode::kNotFound,
                       "no task instance " + instance_name};
}

std::vector<TaskId> Afg::parents(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(in_index_[id.value()].size());
  for (std::uint32_t idx : in_index_[id.value()]) {
    TaskId from = edges_[idx].from;
    if (std::find(out.begin(), out.end(), from) == out.end()) {
      out.push_back(from);
    }
  }
  return out;
}

std::vector<TaskId> Afg::children(TaskId id) const {
  std::vector<TaskId> out;
  out.reserve(out_index_[id.value()].size());
  for (std::uint32_t idx : out_index_[id.value()]) {
    TaskId to = edges_[idx].to;
    if (std::find(out.begin(), out.end(), to) == out.end()) {
      out.push_back(to);
    }
  }
  return out;
}

std::vector<Edge> Afg::in_edges(TaskId id) const {
  std::vector<Edge> out;
  out.reserve(in_index_[id.value()].size());
  for (std::uint32_t idx : in_index_[id.value()]) out.push_back(edges_[idx]);
  return out;
}

std::vector<Edge> Afg::out_edges(TaskId id) const {
  std::vector<Edge> out;
  out.reserve(out_index_[id.value()].size());
  for (std::uint32_t idx : out_index_[id.value()]) out.push_back(edges_[idx]);
  return out;
}

const std::vector<std::uint32_t>& Afg::in_edge_ids(TaskId id) const {
  assert(id.value() < in_index_.size());
  return in_index_[id.value()];
}

const std::vector<std::uint32_t>& Afg::out_edge_ids(TaskId id) const {
  assert(id.value() < out_index_.size());
  return out_index_[id.value()];
}

std::vector<TaskId> Afg::entry_tasks() const {
  std::vector<TaskId> out;
  for (const TaskNode& t : tasks_) {
    if (in_index_[t.id.value()].empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> Afg::exit_tasks() const {
  std::vector<TaskId> out;
  for (const TaskNode& t : tasks_) {
    if (out_index_[t.id.value()].empty()) out.push_back(t.id);
  }
  return out;
}

bool Afg::requires_input(TaskId id) const {
  for (const FileSpec& f : task(id).props.inputs) {
    if (f.dataflow || !f.path.empty()) return true;
  }
  return false;
}

double Afg::edge_bytes(const Edge& e) const {
  const TaskNode& src = task(e.from);
  assert(e.from_port >= 0 && e.from_port < src.out_ports());
  return src.props.outputs[static_cast<std::size_t>(e.from_port)].size_bytes;
}

common::Status Afg::validate() const {
  if (tasks_.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "AFG has no tasks"};
  }
  // Port bounds are enforced at connect(); re-check here for graphs built
  // by deserialization.
  for (const Edge& e : edges_) {
    const TaskNode& src = task(e.from);
    const TaskNode& dst = task(e.to);
    if (e.from_port < 0 || e.from_port >= src.out_ports() || e.to_port < 0 ||
        e.to_port >= dst.in_ports()) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "edge with out-of-range port between " +
                               src.instance_name + " and " + dst.instance_name};
    }
  }
  auto order = topological_order();
  if (!order) return order.error();
  return common::Status::success();
}

common::Expected<std::vector<TaskId>> Afg::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size(), 0);
  for (const Edge& e : edges_) ++in_degree[e.to.value()];

  // Min-heap on task id for a stable, deterministic order.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (const TaskNode& t : tasks_) {
    if (in_degree[t.id.value()] == 0) ready.push(t.id);
  }

  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    TaskId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (std::uint32_t idx : out_index_[id.value()]) {
      const Edge& e = edges_[idx];
      if (--in_degree[e.to.value()] == 0) ready.push(e.to);
    }
  }
  if (order.size() != tasks_.size()) {
    return common::Error{common::ErrorCode::kCycleDetected,
                         "application flow graph contains a cycle"};
  }
  return order;
}

}  // namespace vdce::afg
