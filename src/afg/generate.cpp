#include "afg/generate.hpp"

#include <cassert>
#include <vector>

namespace vdce::afg {

namespace {

/// Build a task with `fan_in` inputs and one output of `output_bytes`.
TaskProperties synth_props(int fan_in, double output_bytes,
                           ComputationMode mode = ComputationMode::kSequential,
                           int num_nodes = 1) {
  TaskProperties p;
  p.mode = mode;
  p.num_nodes = num_nodes;
  p.inputs.resize(static_cast<std::size_t>(fan_in));
  p.outputs.push_back(FileSpec{"", output_bytes, false});
  return p;
}

/// Synthetic tasks encode their computation size in the task name so the
/// bench harness can recover it without a shared registry:
/// "synthetic.w<mflop>".
std::string synth_task_name(const std::string& library, double mflop) {
  return library + ".w" + std::to_string(static_cast<long long>(mflop));
}

}  // namespace

Afg make_layered_dag(const LayeredDagSpec& spec, common::Rng& rng,
                     const std::string& name) {
  assert(spec.tasks > 0);
  assert(spec.width > 0);
  Afg graph(name);

  // Partition tasks into layers of random width in [1, spec.width].
  std::vector<std::vector<TaskId>> layers;
  std::size_t created = 0;
  while (created < spec.tasks) {
    std::size_t w = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(spec.width)));
    w = std::min(w, spec.tasks - created);
    // Fan-in sized to the worst case (whole previous layer); unused input
    // ports are legal — they model optional inputs left unconnected.
    int fan_in =
        layers.empty() ? 0 : static_cast<int>(layers.back().size());
    layers.emplace_back();
    for (std::size_t i = 0; i < w; ++i) {
      double mflop = rng.uniform(spec.min_mflop, spec.max_mflop);
      double out_bytes = rng.uniform(spec.min_output_bytes, spec.max_output_bytes);
      bool parallel = rng.chance(spec.parallel_task_fraction);
      int nodes = parallel ? static_cast<int>(rng.uniform_int(2, 4)) : 1;
      auto props = synth_props(fan_in, out_bytes,
                               parallel ? ComputationMode::kParallel
                                        : ComputationMode::kSequential,
                               parallel ? nodes : 1);
      auto id = graph.add_task(
          "t" + std::to_string(created), synth_task_name(spec.task_library, mflop),
          std::move(props));
      assert(id);
      layers.back().push_back(*id);
      ++created;
    }
  }

  // Wire adjacent layers: each child gets >= 1 parent; extra edges appear
  // with probability edge_density.
  for (std::size_t l = 1; l < layers.size(); ++l) {
    const auto& prev = layers[l - 1];
    for (TaskId child : layers[l]) {
      int port = 0;
      bool connected = false;
      for (TaskId parent : prev) {
        if (rng.chance(spec.edge_density)) {
          auto st = graph.connect(parent, 0, child, port++);
          assert(st.ok());
          connected = true;
        }
      }
      if (!connected) {
        TaskId parent = prev[rng.pick_index(prev.size())];
        auto st = graph.connect(parent, 0, child, port);
        assert(st.ok());
      }
    }
  }
  return graph;
}

Afg make_fork_join(std::size_t width, std::size_t depth, double mflop,
                   double output_bytes, const std::string& name) {
  assert(width > 0 && depth > 0);
  Afg graph(name);
  std::string task = synth_task_name("synthetic", mflop);

  auto entry = graph.add_task("fork", task, synth_props(0, output_bytes));
  assert(entry);
  std::vector<TaskId> last_of_branch;
  for (std::size_t b = 0; b < width; ++b) {
    TaskId prev = *entry;
    for (std::size_t d = 0; d < depth; ++d) {
      auto id = graph.add_task(
          "b" + std::to_string(b) + "_" + std::to_string(d), task,
          synth_props(1, output_bytes));
      assert(id);
      auto st = graph.connect(prev, 0, *id, 0);
      assert(st.ok());
      prev = *id;
    }
    last_of_branch.push_back(prev);
  }
  auto join = graph.add_task(
      "join", task, synth_props(static_cast<int>(width), output_bytes));
  assert(join);
  for (std::size_t b = 0; b < width; ++b) {
    auto st = graph.connect(last_of_branch[b], 0, *join, static_cast<int>(b));
    assert(st.ok());
  }
  return graph;
}

Afg make_chain(std::size_t length, double mflop, double output_bytes,
               const std::string& name) {
  assert(length > 0);
  Afg graph(name);
  std::string task = synth_task_name("synthetic", mflop);
  TaskId prev{};
  for (std::size_t i = 0; i < length; ++i) {
    auto id = graph.add_task("s" + std::to_string(i), task,
                             synth_props(i == 0 ? 0 : 1, output_bytes));
    assert(id);
    if (i > 0) {
      auto st = graph.connect(prev, 0, *id, 0);
      assert(st.ok());
    }
    prev = *id;
  }
  return graph;
}

Afg make_independent(std::size_t count, double mflop, const std::string& name) {
  assert(count > 0);
  Afg graph(name);
  std::string task = synth_task_name("synthetic", mflop);
  for (std::size_t i = 0; i < count; ++i) {
    auto id = graph.add_task("j" + std::to_string(i), task,
                             synth_props(0, 1e4));
    assert(id);
  }
  return graph;
}

Afg make_reduction_tree(std::size_t leaves, double mflop, double output_bytes,
                        const std::string& name) {
  assert(leaves > 0);
  Afg graph(name);
  std::string task = synth_task_name("synthetic", mflop);

  std::vector<TaskId> frontier;
  for (std::size_t i = 0; i < leaves; ++i) {
    auto id = graph.add_task("leaf" + std::to_string(i), task,
                             synth_props(0, output_bytes));
    assert(id);
    frontier.push_back(*id);
  }
  std::size_t next = 0;
  while (frontier.size() > 1) {
    std::vector<TaskId> parents;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      auto id = graph.add_task("red" + std::to_string(next++), task,
                               synth_props(2, output_bytes));
      assert(id);
      auto s1 = graph.connect(frontier[i], 0, *id, 0);
      auto s2 = graph.connect(frontier[i + 1], 0, *id, 1);
      assert(s1.ok() && s2.ok());
      parents.push_back(*id);
    }
    if (frontier.size() % 2 == 1) parents.push_back(frontier.back());
    frontier = std::move(parents);
  }
  return graph;
}

Afg make_linear_solver_shape(double matrix_bytes, const std::string& name) {
  Afg graph(name);
  // Mirrors Figure 1: LU-Decomposition and Matrix-Multiplication feed the
  // triangular solve stages producing vector_X.
  auto lu = graph.add_task("LU_Decomposition", synth_task_name("synthetic", 2000),
                           synth_props(0, matrix_bytes));
  auto mm = graph.add_task("Matrix_Multiplication",
                           synth_task_name("synthetic", 1500),
                           synth_props(0, matrix_bytes));
  auto fwd = graph.add_task("Forward_Substitution",
                            synth_task_name("synthetic", 400),
                            synth_props(2, matrix_bytes / 2));
  auto bwd = graph.add_task("Backward_Substitution",
                            synth_task_name("synthetic", 400),
                            synth_props(1, matrix_bytes / 4));
  assert(lu && mm && fwd && bwd);
  auto s1 = graph.connect(*lu, 0, *fwd, 0);
  auto s2 = graph.connect(*mm, 0, *fwd, 1);
  auto s3 = graph.connect(*fwd, 0, *bwd, 0);
  assert(s1.ok() && s2.ok() && s3.ok());
  return graph;
}

}  // namespace vdce::afg
