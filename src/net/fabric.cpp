#include "net/fabric.hpp"

#include <algorithm>
#include <utility>

namespace vdce::net {

void Fabric::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ != nullptr && obs_->metrics_on()) {
    static const char* kBytes[3] = {"fabric.transfer_bytes.loopback",
                                    "fabric.transfer_bytes.lan",
                                    "fabric.transfer_bytes.wan"};
    static const char* kLatency[3] = {"fabric.transfer_seconds.loopback",
                                      "fabric.transfer_seconds.lan",
                                      "fabric.transfer_seconds.wan"};
    for (int i = 0; i < 3; ++i) {
      bytes_hist_[i] = &obs_->metrics().histogram(kBytes[i]);
      latency_hist_[i] = &obs_->metrics().histogram(kLatency[i]);
    }
  } else {
    for (int i = 0; i < 3; ++i) bytes_hist_[i] = latency_hist_[i] = nullptr;
  }
}

Fabric::LinkClass Fabric::link_class(HostId src, HostId dst) const {
  if (src == dst) return LinkClass::kLoopback;
  return topology_.host(src).site == topology_.host(dst).site ? LinkClass::kLan
                                                              : LinkClass::kWan;
}

void Fabric::bind(HostId host, Handler handler) {
  assert(handler);
  // Bring-up binds every host in sequence; size the table once instead of
  // rehashing through the growth doublings at grid scale.
  if (handlers_.empty()) handlers_.reserve(topology_.host_count());
  handlers_[host] = std::move(handler);
}

void Fabric::unbind(HostId host) { handlers_.erase(host); }

common::Expected<common::SimTime> Fabric::send(Message msg) {
  assert(msg.src.valid() && msg.dst.valid());
  assert(msg.size_bytes >= 0.0);

  if (!topology_.host_up(msg.src)) {
    ++stats_.dropped_src_down;
    return common::Error{common::ErrorCode::kHostDown,
                         "source host is down: " + topology_.host(msg.src).spec.name};
  }

  ++stats_.sent;
  stats_.bytes_sent += msg.size_bytes;
  ++stats_.sent_by_type[msg.type];

  LinkSpec link = topology_.link_between(msg.src, msg.dst);
  if (fault_ != nullptr) {
    link = fault_->adjust_link(msg.src, msg.dst, link);
    if (fault_->should_drop(msg)) {
      // The sender observes a normal send (a lossy wire gives no feedback);
      // the message simply never arrives.
      ++stats_.dropped_injected;
      return engine_.now() + link.transfer_time(msg.size_bytes);
    }
  }

  common::SimTime when;
  if (shared_segments_ && msg.src != msg.dst) {
    // Queue behind earlier transfers on the same segment; occupy it for
    // the serialization time, then propagate.
    double serialization = msg.size_bytes / link.bandwidth_bps;
    common::SimTime& busy = segment_busy_until_[segment_key(msg.src, msg.dst)];
    common::SimTime start = std::max(engine_.now(), busy);
    busy = start + serialization;
    when = busy + link.latency;
  } else {
    when = engine_.now() + link.transfer_time(msg.size_bytes);
  }
  if (obs_ != nullptr) {
    const auto cls = static_cast<int>(link_class(msg.src, msg.dst));
    if (bytes_hist_[cls] != nullptr) {
      bytes_hist_[cls]->add(msg.size_bytes);
      latency_hist_[cls]->add(when - engine_.now());
    }
    if (obs_->trace_on()) {
      obs_->trace().span(
          "fabric", "fabric.transfer", engine_.now(), when, msg.src.value(),
          {obs::arg("type", msg.type), obs::arg("bytes", msg.size_bytes),
           obs::arg("src", msg.src.value()), obs::arg("dst", msg.dst.value())},
          obs::Causal{msg.cause.app, msg.cause.task, msg.cause.src_task, {}});
    }
  }
  engine_.schedule(when - engine_.now(),
                   [this, m = std::move(msg)]() mutable { deliver(std::move(m)); });
  return when;
}

std::uint64_t Fabric::segment_key(HostId src, HostId dst) const {
  common::SiteId a = topology_.host(src).site;
  common::SiteId b = topology_.host(dst).site;
  auto lo = std::min(a.value(), b.value());
  auto hi = std::max(a.value(), b.value());
  // Intra-site: (site, site) keys the LAN; inter-site: the ordered pair.
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void Fabric::multicast(HostId src, const std::vector<HostId>& dsts,
                       const std::string& type, double size_bytes,
                       const std::any& payload) {
  for (HostId dst : dsts) {
    // Failure of one destination must not abort the rest of the multicast.
    (void)send(Message{src, dst, type, size_bytes, payload});
  }
}

void Fabric::deliver(Message msg) {
  if (!topology_.host_up(msg.dst)) {
    ++stats_.dropped_dst_down;
    return;
  }
  auto it = handlers_.find(msg.dst);
  if (it == handlers_.end()) {
    ++stats_.dropped_unbound;
    return;
  }
  ++stats_.delivered;
  it->second(msg);
}

}  // namespace vdce::net
