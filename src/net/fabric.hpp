// Message fabric: the in-process substitute for VDCE's socket plumbing.
//
// Every control- and data-plane interaction in the paper — the Site Manager
// multicasting the resource allocation table, Group Managers sending echo
// packets, Data Manager proxies exchanging setup/ACK, inter-task transfers —
// is a message from one host to another.  The fabric delivers messages on
// the simulation clock after the topology's transfer time for the message
// size, and enforces failure semantics: messages to or from a down host are
// silently dropped (exactly the behaviour echo-based failure detection
// relies on, §4.1).
//
// Payloads are type-erased (std::any): control messages carry small structs
// defined by their sender/receiver pair, data messages carry byte buffers.
// The alternative — a closed variant of every message type — would couple
// this substrate to every layer above it.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace vdce::net {

/// Causal identity a sender may stamp on a message so the trace layer can
/// link the resulting `fabric.transfer` span into the per-application causal
/// DAG (obs/causal.hpp): which application the bytes belong to, which task
/// consumes them, and which task produced them.  All-default means "control
/// traffic" and adds nothing to the record.
struct MessageCause {
  std::uint32_t app = obs::kNoCausalId;
  std::uint32_t task = obs::kNoCausalId;      ///< consumer task
  std::uint32_t src_task = obs::kNoCausalId;  ///< producer task
};

struct Message {
  HostId src;
  HostId dst;
  std::string type;       ///< e.g. "echo", "rat", "dm.setup", "dm.data"
  double size_bytes = 64;  ///< wire size charged to the link (headers incl.)
  std::any payload;
  MessageCause cause;     ///< optional causal tag (data-plane traffic)
};

/// Per-fabric traffic counters, broken down by message type — the raw data
/// behind the monitoring-overhead experiment (E4) and Fig. 4's message-flow
/// accounting.
struct FabricStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_dst_down = 0;
  std::uint64_t dropped_src_down = 0;
  std::uint64_t dropped_unbound = 0;
  /// Messages dropped by an installed FaultInterceptor (partitions and
  /// transient-loss windows of the chaos plane).
  std::uint64_t dropped_injected = 0;
  double bytes_sent = 0.0;
  std::map<std::string, std::uint64_t> sent_by_type;

  void reset() { *this = FabricStats{}; }
};

/// Fault-injection hook (implemented by chaos::ChaosInjector).  Consulted on
/// every send: the interceptor may drop the message outright (a partition or
/// a transient-loss window) or degrade the link spec used to time the
/// transfer.  An interface so the net layer stays independent of the chaos
/// subsystem above it.
class FaultInterceptor {
 public:
  virtual ~FaultInterceptor() = default;

  /// True = silently drop this message (the sender still observes a normal
  /// send, exactly like a lossy wire).
  virtual bool should_drop(const Message& msg) = 0;

  /// Return the (possibly degraded) link spec to use for this transfer.
  virtual LinkSpec adjust_link(HostId src, HostId dst, LinkSpec link) = 0;
};

/// The fabric.  One per simulated environment; not thread-safe (runs inside
/// the single-threaded simulation).
///
/// Contention model: by default links have unlimited capacity (transfers
/// never interact).  With `set_shared_segments(true)` each LAN behaves as
/// the shared Ethernet segment of the era and each WAN site-pair as one
/// serial pipe: a transfer occupies its segment for `bytes/bandwidth`, and
/// concurrent transfers queue FIFO behind it (latency is propagation and is
/// not serialized).  Loopback traffic never contends.
class Fabric {
 public:
  using Handler = std::function<void(const Message&)>;

  Fabric(sim::Engine& engine, Topology& topology)
      : engine_(engine), topology_(topology) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Install the message dispatcher for a host (its "node daemon").  Each
  /// host has exactly one handler; layers above demultiplex on `type`.
  void bind(HostId host, Handler handler);

  /// Remove a host's handler (host decommissioned).
  void unbind(HostId host);

  /// Send a message.  Delivery is scheduled `transfer_time(src, dst, size)`
  /// in the future; the message is dropped if the source is down now or the
  /// destination is down / unbound at delivery time.  Returns the scheduled
  /// delivery time (even if the message may later be dropped), or an error
  /// if the source host is already down.
  common::Expected<common::SimTime> send(Message msg);

  /// Send the same message to many destinations ("multicast" in the paper —
  /// implemented as iterated unicast, as site-to-site multicast was).
  void multicast(HostId src, const std::vector<HostId>& dsts,
                 const std::string& type, double size_bytes,
                 const std::any& payload);

  [[nodiscard]] const FabricStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Attach a fault interceptor (null detaches).  See FaultInterceptor.
  void set_fault_interceptor(FaultInterceptor* interceptor) {
    fault_ = interceptor;
  }

  /// Attach the environment's observability instance (null detaches).  With
  /// metrics on, every send feeds per-link-class transfer histograms; with
  /// tracing on, every send records a `fabric.transfer` span from emission
  /// to scheduled delivery.  Disabled observability costs one branch.
  void set_observability(obs::Observability* obs);

  /// Enable/disable shared-segment contention (see class comment).
  void set_shared_segments(bool on) { shared_segments_ = on; }
  [[nodiscard]] bool shared_segments() const noexcept {
    return shared_segments_;
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] Topology& topology() noexcept { return topology_; }

 private:
  void deliver(Message msg);

  /// Segment identity for contention: one per site LAN, one per WAN pair.
  [[nodiscard]] std::uint64_t segment_key(HostId src, HostId dst) const;

  /// Link class of a (src, dst) pair for per-link metric breakdown.
  enum class LinkClass { kLoopback, kLan, kWan };
  [[nodiscard]] LinkClass link_class(HostId src, HostId dst) const;

  sim::Engine& engine_;
  Topology& topology_;
  std::unordered_map<HostId, Handler> handlers_;
  FabricStats stats_;
  FaultInterceptor* fault_ = nullptr;
  obs::Observability* obs_ = nullptr;
  /// Cached metric handles (valid for the registry's lifetime), so the send
  /// hot path never performs a name lookup.
  common::Stats* bytes_hist_[3] = {nullptr, nullptr, nullptr};
  common::Stats* latency_hist_[3] = {nullptr, nullptr, nullptr};
  bool shared_segments_ = false;
  /// When shared_segments_: time each segment finishes its queued transfers.
  std::unordered_map<std::uint64_t, common::SimTime> segment_busy_until_;
};

}  // namespace vdce::net
