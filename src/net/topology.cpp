#include "net/topology.hpp"

#include <algorithm>

namespace vdce::net {

SiteId Topology::add_site(std::string name, LinkSpec lan) {
  SiteId id(static_cast<common::SiteId::value_type>(sites_.size()));
  sites_.push_back(Site{id, std::move(name), HostId{}, lan, {}, {}});
  return id;
}

HostId Topology::add_host(SiteId site_id, HostSpec spec, int group_index) {
  assert(site_id.value() < sites_.size());
  assert(group_index >= 0);
  Site& s = sites_[site_id.value()];

  HostId id(static_cast<common::HostId::value_type>(hosts_.size()));

  // Create intermediate groups on demand so callers can use sparse indices.
  while (static_cast<int>(s.groups.size()) <= group_index) {
    GroupId gid(static_cast<common::GroupId::value_type>(groups_.size()));
    groups_.push_back(Group{gid, site_id, HostId{}, {}});
    s.groups.push_back(gid);
  }
  Group& g = groups_[s.groups[static_cast<std::size_t>(group_index)].value()];
  if (!g.leader.valid()) g.leader = id;
  g.members.push_back(id);

  Host h{id, site_id, g.id, std::move(spec), HostState{}};
  h.state.available_mb = h.spec.memory_mb;
  hosts_.push_back(std::move(h));

  if (!s.server.valid()) s.server = id;
  s.hosts.push_back(id);
  return id;
}

void Topology::set_wan_link(SiteId a, SiteId b, LinkSpec link) {
  assert(a != b);
  // First declaration wins, matching the first-match lookup semantics the
  // pre-hash-map implementation had.
  wan_links_.emplace(wan_key(a, b), link);
}

const Host& Topology::host(HostId id) const {
  assert(id.value() < hosts_.size());
  return hosts_[id.value()];
}

Host& Topology::host(HostId id) {
  assert(id.value() < hosts_.size());
  return hosts_[id.value()];
}

const Site& Topology::site(SiteId id) const {
  assert(id.value() < sites_.size());
  return sites_[id.value()];
}

const Group& Topology::group(GroupId id) const {
  assert(id.value() < groups_.size());
  return groups_[id.value()];
}

std::vector<Group> Topology::groups_in_site(SiteId id) const {
  std::vector<Group> out;
  for (GroupId gid : site(id).groups) out.push_back(group(gid));
  return out;
}

common::Expected<HostId> Topology::find_host(const std::string& name) const {
  for (const Host& h : hosts_) {
    if (h.spec.name == name) return h.id;
  }
  return common::Error{common::ErrorCode::kNotFound, "no host named " + name};
}

common::Expected<SiteId> Topology::find_site(const std::string& name) const {
  for (const Site& s : sites_) {
    if (s.name == name) return s.id;
  }
  return common::Error{common::ErrorCode::kNotFound, "no site named " + name};
}

std::uint64_t Topology::wan_key(SiteId a, SiteId b) {
  auto lo = std::min(a.value(), b.value());
  auto hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

LinkSpec Topology::wan_link(SiteId a, SiteId b) const {
  if (a == b) return site(a).lan;
  auto it = wan_links_.find(wan_key(a, b));
  return it != wan_links_.end() ? it->second : default_wan_;
}

LinkSpec Topology::link_between(HostId a, HostId b) const {
  if (a == b) return LinkSpec{0.0, 1e18};  // loopback: effectively free
  const Host& ha = host(a);
  const Host& hb = host(b);
  if (ha.site == hb.site) return site(ha.site).lan;
  return wan_link(ha.site, hb.site);
}

common::SimDuration Topology::transfer_time(HostId from, HostId to,
                                            double bytes) const {
  return link_between(from, to).transfer_time(bytes);
}

std::uint64_t Topology::link_key(HostId a, HostId b) const {
  // Tag bits keep the key spaces disjoint: 0 = loopback, 1 = the shared
  // default-WAN spec, (1<<62)|site = that site's LAN, (2<<62)|pair = an
  // explicitly declared WAN link.
  if (a == b) return 0;
  const Host& ha = host(a);
  const Host& hb = host(b);
  if (ha.site == hb.site) {
    return (std::uint64_t{1} << 62) | ha.site.value();
  }
  std::uint64_t key = wan_key(ha.site, hb.site);
  if (!wan_links_.contains(key)) return 1;
  return (std::uint64_t{2} << 62) | key;
}

common::SimDuration Topology::site_transfer_time(SiteId from, SiteId to,
                                                 double bytes) const {
  if (from == to) return site(from).lan.transfer_time(bytes);
  return wan_link(from, to).transfer_time(bytes);
}

std::vector<SiteId> Topology::nearest_sites(SiteId local, std::size_t k) const {
  std::vector<SiteId> remote;
  for (const Site& s : sites_) {
    if (s.id != local) remote.push_back(s.id);
  }
  std::sort(remote.begin(), remote.end(), [&](SiteId a, SiteId b) {
    auto la = wan_link(local, a).latency;
    auto lb = wan_link(local, b).latency;
    if (la != lb) return la < lb;
    return a < b;
  });
  if (remote.size() > k) remote.resize(k);
  return remote;
}

void Topology::set_host_up(HostId id, bool up) { host(id).state.up = up; }

void Topology::set_cpu_load(HostId id, double load) {
  assert(load >= 0.0);
  host(id).state.cpu_load = load;
}

void Topology::add_cpu_load(HostId id, double delta) {
  Host& h = host(id);
  h.state.cpu_load = std::max(0.0, h.state.cpu_load + delta);
}

}  // namespace vdce::net
