// Simulated wide-area topology: sites, hosts, and links.
//
// This substitutes for the paper's campus/wide-area testbed (§1: "VDCE is
// composed of distributed sites, each of which has one or more VDCE
// Servers").  A Topology is a set of *sites*; each site has a designated
// VDCE-server host, one or more *groups* of machines (each with a group
// leader, per §4.1), an intra-site LAN link model, and pairwise WAN links to
// other sites.  Hosts carry the resource attributes the paper's
// resource-performance database stores: name, IP, architecture, OS, memory,
// and a base processor speed used by the prediction model.
//
// The topology also carries dynamic state the runtime mutates: per-host
// up/down and current CPU load / available memory (the monitor daemons
// sample these; the ground truth lives here so experiments can inject load
// spikes and failures).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"

namespace vdce::net {

using common::GroupId;
using common::HostId;
using common::SiteId;

/// Static description of a machine (the schema of the paper's
/// resource-performance database, §3).
struct HostSpec {
  std::string name;          ///< e.g. "serval.eal.syr.edu"
  std::string ip;            ///< dotted quad, synthetic
  std::string arch;          ///< e.g. "sparc", "x86_64"
  std::string os;            ///< e.g. "sunos", "linux"
  std::string machine_type;  ///< user-facing class, e.g. "SUN solaris"
  double speed_mflops = 100.0;  ///< base processor speed
  double memory_mb = 256.0;     ///< total physical memory
};

/// Latency/bandwidth pair describing a link (LAN or WAN).
struct LinkSpec {
  common::SimDuration latency = 0.0;  ///< one-way, seconds
  double bandwidth_bps = 1e9;         ///< bytes per second

  /// Time to move `bytes` across this link.
  [[nodiscard]] common::SimDuration transfer_time(double bytes) const {
    assert(bandwidth_bps > 0.0);
    return latency + bytes / bandwidth_bps;
  }
};

/// Dynamic, runtime-mutable state of a host.  `cpu_load` is the ground
/// truth the monitor daemon samples: 0 = idle, 1 = fully busy with other
/// work; >1 means oversubscribed.
struct HostState {
  bool up = true;
  double cpu_load = 0.0;
  double available_mb = 0.0;  ///< free memory; initialized to spec memory
  int running_tasks = 0;      ///< VDCE tasks currently placed here
};

struct Host {
  HostId id;
  SiteId site;
  GroupId group;
  HostSpec spec;
  HostState state;
};

struct Group {
  GroupId id;
  SiteId site;
  HostId leader;               ///< the group-leader machine (runs GroupManager)
  std::vector<HostId> members;  ///< includes the leader
};

struct Site {
  SiteId id;
  std::string name;
  HostId server;  ///< the VDCE Server machine (runs SiteManager); first host added
  LinkSpec lan;   ///< intra-site link model
  std::vector<HostId> hosts;
  std::vector<GroupId> groups;
};

/// The network: owns all sites/hosts/groups and answers routing queries.
class Topology {
 public:
  /// Create a site with the given intra-site LAN characteristics.  The first
  /// host subsequently added becomes the VDCE Server machine.
  SiteId add_site(std::string name, LinkSpec lan);

  /// Add a host to `site`, placing it in group `group_index` (groups are
  /// created on demand; the first host added to a group is its leader).
  HostId add_host(SiteId site, HostSpec spec, int group_index = 0);

  /// Declare the WAN link between two distinct sites (symmetric).  Sites
  /// without an explicit link use `default_wan()`.
  void set_wan_link(SiteId a, SiteId b, LinkSpec link);

  void set_default_wan(LinkSpec link) { default_wan_ = link; }
  [[nodiscard]] LinkSpec default_wan() const { return default_wan_; }

  // --- lookups ---------------------------------------------------------
  [[nodiscard]] const Host& host(HostId id) const;
  [[nodiscard]] Host& host(HostId id);
  [[nodiscard]] const Site& site(SiteId id) const;
  [[nodiscard]] const Group& group(GroupId id) const;
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }
  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }
  [[nodiscard]] const std::vector<Site>& sites() const noexcept { return sites_; }
  [[nodiscard]] const std::vector<Host>& hosts() const noexcept { return hosts_; }
  [[nodiscard]] std::vector<Group> groups_in_site(SiteId id) const;

  /// Find a host by its DNS name (used by task-constraint lookups and the
  /// editor's "preferred machine" property).  Linear scan; host counts are
  /// small (10^2-10^3).
  [[nodiscard]] common::Expected<HostId> find_host(const std::string& name) const;
  [[nodiscard]] common::Expected<SiteId> find_site(const std::string& name) const;

  // --- routing / timing -------------------------------------------------
  /// The link model governing traffic between two hosts: a zero link for
  /// same-host, the site LAN for intra-site, the WAN link for inter-site.
  [[nodiscard]] LinkSpec link_between(HostId a, HostId b) const;
  [[nodiscard]] LinkSpec wan_link(SiteId a, SiteId b) const;

  /// Time to move `bytes` from `from` to `to`.
  [[nodiscard]] common::SimDuration transfer_time(HostId from, HostId to,
                                                  double bytes) const;

  /// A stable key identifying the link spec that governs traffic between
  /// the two hosts — equal keys guarantee identical `link_between()`
  /// results, so schedulers can memoize transfer times on (key, bytes).
  /// Valid only while the topology's links are unchanged.
  [[nodiscard]] std::uint64_t link_key(HostId a, HostId b) const;

  /// Inter-site transfer time used by the site scheduler (Fig. 2's
  /// `transfer_time(S_parent, S_j) * file_size` term).  Measured server to
  /// server.
  [[nodiscard]] common::SimDuration site_transfer_time(SiteId from, SiteId to,
                                                       double bytes) const;

  /// The k nearest remote sites of `local`, ordered by WAN latency then id —
  /// the neighbour set the Fig. 2 site scheduler multicasts the AFG to.
  [[nodiscard]] std::vector<SiteId> nearest_sites(SiteId local,
                                                  std::size_t k) const;

  // --- dynamic state ----------------------------------------------------
  void set_host_up(HostId id, bool up);
  void set_cpu_load(HostId id, double load);
  void add_cpu_load(HostId id, double delta);
  [[nodiscard]] bool host_up(HostId id) const { return host(id).state.up; }

 private:
  struct WanKey {
    SiteId a, b;
    bool operator==(const WanKey&) const = default;
  };

  [[nodiscard]] static std::uint64_t wan_key(SiteId a, SiteId b);

  std::vector<Site> sites_;
  std::vector<Host> hosts_;
  std::vector<Group> groups_;
  std::unordered_map<std::uint64_t, LinkSpec> wan_links_;  // by wan_key
  LinkSpec default_wan_{common::milliseconds(30), 1e7};
};

}  // namespace vdce::net
