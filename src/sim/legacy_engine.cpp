// Frozen pre-redesign kernel (see legacy_engine.hpp).  This is the old
// engine.cpp verbatim, renamed — keep its cost profile and semantics.
#include "sim/legacy_engine.hpp"

#include <utility>

namespace vdce::sim::legacy {

void LegacyEventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool LegacyEventHandle::pending() const {
  return cancelled_ && !*cancelled_ && cancelled_.use_count() > 1;
}

void LegacyTimerHandle::cancel() {
  if (stopped_) *stopped_ = true;
}

bool LegacyTimerHandle::active() const { return stopped_ && !*stopped_; }

LegacyEventHandle LegacyEngine::schedule(common::SimDuration delay,
                                         Callback fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

LegacyEventHandle LegacyEngine::schedule_at(common::SimTime when, Callback fn) {
  assert(when >= now_);
  assert(fn);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  return LegacyEventHandle(std::move(cancelled));
}

LegacyTimerHandle LegacyEngine::every(common::SimDuration period, Callback fn,
                                      common::SimDuration initial_delay) {
  assert(period > 0.0);
  auto stopped = std::make_shared<bool>(false);
  if (initial_delay < 0.0) initial_delay = period;

  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, period, fn = std::move(fn), stopped, weak]() {
    if (*stopped) return;
    fn();
    if (*stopped) return;
    if (auto self = weak.lock()) schedule(period, [self]() { (*self)(); });
  };
  schedule(initial_delay, [tick]() { (*tick)(); });
  return LegacyTimerHandle(std::move(stopped));
}

void LegacyEngine::step() {
  assert(!queue_.empty());
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  if (!*ev.cancelled) {
    ++fired_;
    ev.fn();
  }
}

std::size_t LegacyEngine::run() {
  std::uint64_t before = fired_;
  while (!queue_.empty()) step();
  return static_cast<std::size_t>(fired_ - before);
}

std::size_t LegacyEngine::run_until(common::SimTime until) {
  assert(until >= now_);
  std::uint64_t before = fired_;
  while (!queue_.empty() && queue_.top().time <= until) step();
  now_ = until;
  return static_cast<std::size_t>(fired_ - before);
}

std::size_t LegacyEngine::run_steps(std::size_t max_events) {
  std::uint64_t before = fired_;
  while (!queue_.empty() && fired_ - before < max_events) step();
  return static_cast<std::size_t>(fired_ - before);
}

}  // namespace vdce::sim::legacy
