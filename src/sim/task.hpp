// sim::Task — the event kernel's callback type.
//
// A move-only type-erased callable with fixed inline storage, sized so that
// every in-tree closure (the largest is the fabric's delivery lambda, which
// carries a whole net::Message) fits without touching the heap.  This is
// what makes the engine's schedule/fire/cancel loop allocation-free: a
// std::function would heap-allocate any capture larger than its small-buffer
// optimisation (typically 16 bytes — i.e. almost every real closure in this
// codebase), and the old kernel paid exactly that cost once per event.
//
// The size is a hard contract, not a heuristic: construction static_asserts
// that the callable fits, so a capture that outgrows the buffer is a compile
// error at the call site (fix it by capturing indices into owner-side state,
// as chaos::ChaosInjector does for its stale-monitor windows) rather than a
// silent fallback to allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vdce::sim {

class Task {
 public:
  /// Inline capture budget, in bytes.  Chosen to fit the largest in-tree
  /// closure with headroom (net::Fabric's `[this, m = std::move(msg)]` is
  /// ~96 bytes); revisit only with a size audit — every event slot in the
  /// engine arena embeds one Task.
  static constexpr std::size_t kInlineBytes = 128;

  Task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor) — callables convert
  // implicitly, exactly as they did with std::function.
  Task(F&& fn) {  // NOLINT
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "closure exceeds sim::Task inline storage; capture indices "
                  "into owner-side state instead of large objects");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "sim::Task requires nothrow-move-constructible closures "
                  "(arena slots relocate on vector growth)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
    if constexpr (std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      // Trivially relocatable closure (the common case: captures are PODs,
      // pointers, indices): one shared memcpy relocator for every size, so
      // the engine's move-out-then-invoke step is a plain copy instead of
      // an indirect per-type move+destroy pair.
      relocate_ = &trivial_relocate<sizeof(Fn)>;
    } else {
      relocate_ = [](void* src, void* dst) noexcept {
        Fn* f = static_cast<Fn*>(src);
        if (dst != nullptr) ::new (dst) Fn(std::move(*f));
        f->~Fn();
      };
    }
  }

  /// Assign a callable directly: destroys the old callable and constructs
  /// the new one in place.  The engine's emplace path uses this to build a
  /// closure straight into its arena slot with zero intermediate
  /// relocations.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task& operator=(F&& fn) {
    reset();
    ::new (static_cast<void*>(this)) Task(std::forward<F>(fn));
    return *this;
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (relocate_ != nullptr) relocate_(storage_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  template <std::size_t N>
  static void trivial_relocate(void* src, void* dst) noexcept {
    if (dst != nullptr) __builtin_memcpy(dst, src, N);
  }

  void move_from(Task& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (other.relocate_ != nullptr) other.relocate_(other.storage_, storage_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  /// Manual two-entry vtable: invoke, and relocate-or-destroy (dst==nullptr
  /// destroys in place; otherwise move-construct into dst then destroy src).
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* src, void* dst) noexcept = nullptr;
};

static_assert(sizeof(Task) == Task::kInlineBytes + 2 * sizeof(void*),
              "Task layout: inline buffer + two function pointers");

}  // namespace vdce::sim
