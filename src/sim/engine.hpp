// Discrete-event simulation kernel.
//
// VDCE's runtime daemons — monitor daemons measuring loads, group managers
// sending echo packets, site managers refreshing repositories, data-manager
// transfers, task executions — are all processes in simulated time.  The
// paper ran them as Unix daemons against the wall clock on a campus testbed;
// here they are callbacks against a virtual clock, which makes every
// experiment deterministic and lets a bench compress hours of monitoring
// into milliseconds (see DESIGN.md "Substitutions").
//
// The kernel is redesigned for zero per-event heap allocation (DESIGN.md
// "Event kernel"):
//
//   * Callbacks are sim::Task (task.hpp): fixed inline storage, so no
//     closure ever heap-allocates the way std::function did.
//   * Events live in an engine-owned arena of slots recycled through a free
//     list; EventHandle/TimerHandle are generation-checked slot indices, so
//     cancellation needs no shared_ptr<bool> control block per event.
//   * The pending set is a bucketed calendar queue (R. Brown, CACM 1988)
//     with heap-ordered buckets, preserving the exact (time, seq) total
//     order of the original binary heap — `seq` is a monotonically
//     increasing tiebreaker so that events scheduled earlier at the same
//     timestamp fire first, which is what makes multi-daemon interleavings
//     reproducible.  QueueKind::kBinaryHeapReference keeps a frozen
//     heap-ordered pending set selectable at construction so differential
//     tests can prove the calendar queue's firing order byte-identical.
//
// In the steady state (arena and buckets warm) schedule/fire/cancel touches
// the allocator zero times — proven by an operator-new counting test in
// tests/test_sim_kernel.cpp.
//
// Single-threaded by design: determinism is worth more to a scheduling
// study than parallel event execution, and the event volumes here (1e5-1e7
// per bench) run in well under a second.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "sim/task.hpp"

namespace vdce::sim {

class Engine;

/// Which pending-set implementation an Engine uses.  The calendar queue is
/// the production kernel; the binary-heap reference exists so differential
/// tests (and EnvironmentOptions::sim_kernel) can replay any scenario
/// against the frozen pre-redesign firing order.
enum class QueueKind {
  kCalendar,
  kBinaryHeapReference,
};

/// Handle to a scheduled event; lets the owner cancel it (e.g. a pending
/// task start after a reschedule, or a periodic timer on daemon shutdown).
///
/// A handle is a generation-checked index into the engine's event arena:
/// copying it copies two integers and an engine anchor, and once the event
/// has fired (or the slot has been recycled, or the engine destroyed) every
/// operation degrades to a safe no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet.  Safe to call repeatedly,
  /// after the event has fired, and after the engine has been destroyed
  /// (no-op in all three cases).
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class Engine;
  EventHandle(std::shared_ptr<Engine*> anchor, std::uint32_t slot,
              std::uint32_t gen)
      : anchor_(std::move(anchor)), slot_(slot), gen_(gen) {}

  /// Points at the owning engine; the engine's destructor nulls the pointee
  /// so stale handles outliving the engine stay safe.  The control block is
  /// allocated once per engine, not per event.
  std::shared_ptr<Engine*> anchor_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Handle to a periodic timer; cancel() stops future firings.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Engine;
  TimerHandle(std::shared_ptr<Engine*> anchor, std::uint32_t slot,
              std::uint32_t gen)
      : anchor_(std::move(anchor)), slot_(slot), gen_(gen) {}
  std::shared_ptr<Engine*> anchor_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

namespace detail {

/// A queue entry: everything the pending set needs to order and dispatch an
/// event without touching its arena slot.
struct QueueEntry {
  common::SimTime time;
  std::uint64_t seq;
  std::uint32_t slot;
};

/// Strict (time, seq) "earlier-than" — the kernel's total event order.
inline bool earlier(const QueueEntry& a, const QueueEntry& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Constrains the Engine's emplace overloads to real callables (and keeps
/// Task itself on the by-value overloads).
template <typename F>
using enable_if_callable =
    std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task> &&
                     std::is_invocable_r_v<void, std::decay_t<F>&>>;

/// Bucketed calendar queue with heap-ordered buckets.
///
/// Events are routed to buckets[floor(t/width) mod nbuckets]; dequeue scans
/// forward one bucket-width "window" at a time from the last dequeued
/// event's window, so in the dense steady state (bucket occupancy kept at
/// 0.5-2 by resize) both push and pop are O(1).  Each bucket is a binary
/// min-heap on (time, seq): the bucket top is the bucket minimum, so the
/// window scan inspects one entry per bucket, and heavily tied timestamps
/// (grid-aligned periodic timers) degrade to O(log k) instead of a linear
/// scan.  The dequeue order is the exact (time, seq) total order — the
/// calendar changes only *where* pending events wait, never *when* they
/// fire.
class CalendarQueue {
 public:
  CalendarQueue() { rebuild(kMinBuckets, 1.0); }

  void push(QueueEntry e);
  QueueEntry pop_min();
  /// The earliest pending entry (reference valid until the next push/pop).
  /// Locating it fills the find_min cache, so a pop_min right after is
  /// cache-hit cheap — the run loop peeks, prefetches the arena slot, then
  /// pops.  Pre: !empty().
  [[nodiscard]] const QueueEntry& min_entry();
  /// Time of the earliest pending entry.  Pre: !empty().
  [[nodiscard]] common::SimTime min_time() { return min_entry().time; }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }

  /// Pre-size for n pending events (grid bring-up schedules one timer per
  /// daemon per host up front).
  void reserve(std::size_t n);

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

  [[nodiscard]] double vbucket(common::SimTime t) const noexcept;
  [[nodiscard]] std::size_t bucket_index(double vb) const noexcept;
  /// Locate the minimum entry (cached until the next push/pop).
  void find_min();
  /// Re-bucket every entry into `nbuckets` buckets of width `width`.
  void rebuild(std::size_t nbuckets, double width);
  void maybe_resize_after_push();
  void maybe_resize_after_pop();
  [[nodiscard]] double estimate_width(std::size_t nbuckets) const;

  std::vector<std::vector<QueueEntry>> buckets_;
  double width_ = 1.0;
  /// 1/width_, kept alongside it (rebuild sets both): vbucket() is on the
  /// push/pop hot path and a multiply is several times cheaper than the
  /// divide.
  double inv_width_ = 1.0;
  std::size_t size_ = 0;
  /// Virtual bucket (floor(time/width), kept as an integral double so huge
  /// times never overflow an integer) of the last dequeued entry: the
  /// window scan resumes here.  Invariant: every pending entry's vbucket is
  /// >= cursor_, because entries are enqueued at or after the engine clock.
  double cursor_ = 0.0;
  common::SimTime last_popped_ = common::kSimStart;
  /// Cache of find_min(): bucket whose top is the global minimum.
  bool cached_ = false;
  std::size_t cached_bucket_ = 0;
};

/// The pre-redesign pending set: one binary heap over all events.  Kept as
/// a frozen reference so any scenario can be replayed under the original
/// firing order (QueueKind::kBinaryHeapReference) and compared byte-for-
/// byte against the calendar queue.
class BinaryHeapQueue {
 public:
  void push(QueueEntry e);
  QueueEntry pop_min();
  [[nodiscard]] const QueueEntry& min_entry() const { return heap_.front(); }
  [[nodiscard]] common::SimTime min_time() const { return heap_.front().time; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  std::vector<QueueEntry> heap_;  // std::*_heap on !earlier (min-heap)
};

}  // namespace detail

/// The simulation engine.  Not thread-safe: all scheduling happens from the
/// driving thread or from within event callbacks.
class Engine {
 public:
  /// Callback type; any callable whose closure fits Task's inline buffer.
  using Callback = Task;

  explicit Engine(QueueKind queue = QueueKind::kCalendar);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] common::SimTime now() const noexcept { return now_; }

  [[nodiscard]] QueueKind queue_kind() const noexcept { return kind_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(common::SimDuration delay, Task fn);

  /// Schedule `fn` at an absolute time >= now().
  EventHandle schedule_at(common::SimTime when, Task fn);

  /// Emplace overloads: a callable (not yet a Task) is constructed directly
  /// into its arena slot — zero intermediate relocations of the closure.
  /// Overload resolution prefers these for lambdas (no Task conversion
  /// needed), so every existing call site gets the fast path for free.
  template <typename F, typename = detail::enable_if_callable<F>>
  EventHandle schedule(common::SimDuration delay, F&& fn) {
    assert(delay >= 0.0);
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }
  template <typename F, typename = detail::enable_if_callable<F>>
  EventHandle schedule_at(common::SimTime when, F&& fn) {
    const std::uint32_t slot = emplace_event(when, std::forward<F>(fn), kNil);
    return EventHandle(self_, slot, slots_[slot].gen);
  }

  /// Fire-and-forget scheduling: like schedule()/schedule_at() but returns
  /// no handle, so the caller skips the handle's anchor refcount entirely.
  /// The natural form for deliveries and completions nobody ever cancels
  /// (most fabric and daemon traffic).
  template <typename F, typename = detail::enable_if_callable<F>>
  void post(common::SimDuration delay, F&& fn) {
    assert(delay >= 0.0);
    emplace_event(now_ + delay, std::forward<F>(fn), kNil);
  }
  template <typename F, typename = detail::enable_if_callable<F>>
  void post_at(common::SimTime when, F&& fn) {
    emplace_event(when, std::forward<F>(fn), kNil);
  }
  void post(common::SimDuration delay, Task fn);
  void post_at(common::SimTime when, Task fn);

  /// Fire `fn` every `period` seconds, first firing after `initial_delay`
  /// (nullopt = one full period).  The callback may cancel the timer.
  TimerHandle every(common::SimDuration period, Task fn,
                    std::optional<common::SimDuration> initial_delay = {});

  template <typename F, typename = detail::enable_if_callable<F>>
  TimerHandle every(common::SimDuration period, F&& fn,
                    std::optional<common::SimDuration> initial_delay = {}) {
    const std::uint32_t timer = alloc_timer();
    timers_[timer].fn = std::forward<F>(fn);  // in place, stable address
    return arm_timer(timer, period, initial_delay);
  }

  /// Run until the event queue is empty.  Returns the number of events fired.
  std::size_t run();

  /// Run until the clock would pass `until` (events at exactly `until` are
  /// fired).  The clock is left at `until` even if the queue drains early,
  /// so successive run_until calls observe monotonic time.
  std::size_t run_until(common::SimTime until);

  /// Run at most `max_events` events; used as a watchdog in tests.
  std::size_t run_steps(std::size_t max_events);

  /// Pre-size the event arena and the pending set.  Grid-scale bring-up
  /// schedules one timer per daemon per host up front; reserving once
  /// avoids repeated regrowth while the simulation is running.
  void reserve_events(std::size_t n);

  [[nodiscard]] bool empty() const noexcept { return queue_size() == 0; }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_size();
  }
  [[nodiscard]] std::uint64_t total_fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept {
    return next_seq_;
  }
  /// High-water mark of the event queue — the observability layer exports
  /// this as the `sim.max_queue_depth` gauge.
  [[nodiscard]] std::size_t max_queue_depth() const noexcept {
    return max_depth_;
  }

  // --- arena accounting (exported as sim.arena_* gauges) -----------------
  /// Event slots currently allocated (backing capacity of the arena).
  [[nodiscard]] std::size_t arena_capacity() const noexcept {
    return slots_.size();
  }
  /// Event slots currently holding a pending (or cancelled-pending) event.
  [[nodiscard]] std::size_t arena_live() const noexcept { return live_; }
  /// High-water mark of live event slots.
  [[nodiscard]] std::size_t arena_high_water() const noexcept {
    return arena_high_water_;
  }
  /// Timer slots ever allocated (timers are recycled through their own
  /// free list).
  [[nodiscard]] std::size_t timer_capacity() const noexcept {
    return timers_.size();
  }

  // --- throughput accounting (exported as sim.events_per_sec) ------------
  /// Wall-clock seconds spent inside run()/run_until()/run_steps().
  [[nodiscard]] double wall_seconds_in_run() const noexcept {
    return wall_seconds_;
  }
  /// Events fired per wall-clock second of run time (0 before any run).
  [[nodiscard]] double events_per_sec() const noexcept {
    return wall_seconds_ > 0.0 ? static_cast<double>(fired_) / wall_seconds_
                               : 0.0;
  }

 private:
  friend class EventHandle;
  friend class TimerHandle;

  static constexpr std::uint32_t kNil = 0xffffffffu;

  enum class SlotState : std::uint8_t { kFree, kScheduled, kCancelled };

  /// One arena slot.  `timer != kNil` marks a periodic-timer tick: the
  /// callback then lives in the timer slot (stable across firings), not
  /// here.
  struct Slot {
    Task fn;
    common::SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNil;
    std::uint32_t timer = kNil;
    SlotState state = SlotState::kFree;
  };

  /// A periodic timer.  Lives in a deque so the Task stays at a stable
  /// address even if a timer callback registers new timers mid-fire.
  struct TimerSlot {
    Task fn;
    common::SimDuration period = 0.0;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNil;
    bool active = false;
  };

  // Handle back-ends (generation-checked; stale handles are no-ops).
  void cancel_event(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool event_pending(std::uint32_t slot,
                                   std::uint32_t gen) const;
  void cancel_timer(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool timer_active(std::uint32_t slot, std::uint32_t gen) const;

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  std::uint32_t alloc_timer();
  void free_timer(std::uint32_t slot);

  /// Allocate a slot, stamp (time, seq), and enqueue.  Returns the slot.
  /// Takes Task&& so a caller's closure is relocated exactly once (into the
  /// arena slot), not staged through a by-value parameter.
  std::uint32_t push_event(common::SimTime when, Task&& fn,
                           std::uint32_t timer);

  /// Like push_event, but constructs the callable in the slot (no Task
  /// staging at all) — the emplace overloads' backend.
  template <typename F>
  std::uint32_t emplace_event(common::SimTime when, F&& fn,
                              std::uint32_t timer) {
    assert(when >= now_);
    const std::uint32_t slot = alloc_slot();
    slots_[slot].fn = std::forward<F>(fn);
    stamp_and_enqueue(slot, when, timer);
    return slot;
  }

  /// Shared tail of push_event/emplace_event: stamp (time, seq), mark
  /// scheduled, enqueue, track depth.
  void stamp_and_enqueue(std::uint32_t slot, common::SimTime when,
                         std::uint32_t timer);

  /// Shared tail of every(): record the period, mark active, schedule the
  /// first tick.  The callable is already in timers_[timer].fn.
  TimerHandle arm_timer(std::uint32_t timer, common::SimDuration period,
                        std::optional<common::SimDuration> initial_delay);

  [[nodiscard]] std::size_t queue_size() const noexcept {
    return kind_ == QueueKind::kCalendar ? calendar_.size() : heap_.size();
  }
  [[nodiscard]] common::SimTime peek_time() { return peek_entry().time; }
  /// Earliest pending entry (reference valid until the next push/pop).
  [[nodiscard]] const detail::QueueEntry& peek_entry() {
    return kind_ == QueueKind::kCalendar ? calendar_.min_entry()
                                         : heap_.min_entry();
  }

  /// Pop and fire the earliest event.  Pre: queue not empty.
  void step();

  QueueKind kind_;
  common::SimTime now_ = common::kSimStart;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t max_depth_ = 0;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
  std::size_t arena_high_water_ = 0;

  std::deque<TimerSlot> timers_;
  std::uint32_t timer_free_head_ = kNil;

  detail::CalendarQueue calendar_;
  detail::BinaryHeapQueue heap_;

  double wall_seconds_ = 0.0;

  /// Engine-lifetime anchor shared with every handle; nulled on destruction.
  std::shared_ptr<Engine*> self_;
};

}  // namespace vdce::sim
