// Discrete-event simulation kernel.
//
// VDCE's runtime daemons — monitor daemons measuring loads, group managers
// sending echo packets, site managers refreshing repositories, data-manager
// transfers, task executions — are all processes in simulated time.  The
// paper ran them as Unix daemons against the wall clock on a campus testbed;
// here they are callbacks against a virtual clock, which makes every
// experiment deterministic and lets a bench compress hours of monitoring
// into milliseconds (see DESIGN.md "Substitutions").
//
// The kernel is a classic event-list simulator: a min-heap of (time, seq)
// ordered events.  `seq` is a monotonically increasing tiebreaker so that
// events scheduled earlier at the same timestamp fire first — this is what
// makes multi-daemon interleavings reproducible.
//
// Single-threaded by design: determinism is worth more to a scheduling
// study than parallel event execution, and the event volumes here (1e5-1e7
// per bench) run in well under a second.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace vdce::sim {

/// Handle to a scheduled event; lets the owner cancel it (e.g. a pending
/// task start after a reschedule, or a periodic timer on daemon shutdown).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet.  Safe to call repeatedly and
  /// after the event has fired (no-op).
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  // Shared with the queued event record: setting *cancelled_ true makes the
  // engine drop the callback when the event is popped.
  std::shared_ptr<bool> cancelled_;
};

/// Handle to a periodic timer; cancel() stops future firings.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class Engine;
  explicit TimerHandle(std::shared_ptr<bool> stopped)
      : stopped_(std::move(stopped)) {}
  std::shared_ptr<bool> stopped_;
};

/// The simulation engine.  Not thread-safe: all scheduling happens from the
/// driving thread or from within event callbacks.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] common::SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(common::SimDuration delay, Callback fn);

  /// Schedule `fn` at an absolute time >= now().
  EventHandle schedule_at(common::SimTime when, Callback fn);

  /// Fire `fn` every `period` seconds, first firing after `initial_delay`
  /// (defaults to one period).  The callback may cancel the timer.
  TimerHandle every(common::SimDuration period, Callback fn,
                    common::SimDuration initial_delay = -1.0);

  /// Run until the event queue is empty.  Returns the number of events fired.
  std::size_t run();

  /// Run until the clock would pass `until` (events at exactly `until` are
  /// fired).  The clock is left at `until` even if the queue drains early,
  /// so successive run_until calls observe monotonic time.
  std::size_t run_until(common::SimTime until);

  /// Run at most `max_events` events; used as a watchdog in tests.
  std::size_t run_steps(std::size_t max_events);

  /// Pre-size the event heap.  Grid-scale bring-up schedules one timer per
  /// daemon per host up front; reserving once avoids repeated regrowth of
  /// the heap's backing vector.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t total_fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept {
    return next_seq_;
  }
  /// High-water mark of the event queue — the observability layer exports
  /// this as the `sim.max_queue_depth` gauge.
  [[nodiscard]] std::size_t max_queue_depth() const noexcept {
    return max_depth_;
  }

 private:
  struct Event {
    common::SimTime time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// priority_queue with access to the backing vector for reserve().
  struct Queue : std::priority_queue<Event, std::vector<Event>, Later> {
    void reserve(std::size_t n) { c.reserve(n); }
  };

  /// Pop and fire the earliest event.  Pre: queue not empty.
  void step();

  common::SimTime now_ = common::kSimStart;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t max_depth_ = 0;
  Queue queue_;
};

}  // namespace vdce::sim
