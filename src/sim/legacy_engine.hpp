// Frozen pre-redesign event kernel — DO NOT OPTIMISE.
//
// This is the engine as it stood before the zero-allocation redesign
// (sim/engine.hpp): a single std::priority_queue of events, each carrying a
// heap-allocated std::function callback and a shared_ptr<bool> cancellation
// flag.  It exists for two jobs only:
//
//   1. bench_sim_engine measures the redesigned kernel's events/sec against
//      this one and enforces the >= 5x speedup threshold (BENCH_SIM.json,
//      docs/SCALING.md).
//   2. test_sim_kernel's differential suite replays randomised
//      schedule/cancel/timer programs on both kernels and asserts the
//      firing order is identical event for event.
//
// Behavioural quirks are part of the freeze: cancelled events stay queued
// and advance the clock when popped, a stopped timer's pending tick still
// counts as fired, and `seq` is allocated once per schedule call (one per
// timer tick).  The redesigned kernel reproduces all of it byte for byte.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace vdce::sim::legacy {

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;
  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class LegacyEngine;
  explicit LegacyEventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class LegacyTimerHandle {
 public:
  LegacyTimerHandle() = default;
  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class LegacyEngine;
  explicit LegacyTimerHandle(std::shared_ptr<bool> stopped)
      : stopped_(std::move(stopped)) {}
  std::shared_ptr<bool> stopped_;
};

class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  LegacyEngine() = default;
  LegacyEngine(const LegacyEngine&) = delete;
  LegacyEngine& operator=(const LegacyEngine&) = delete;

  [[nodiscard]] common::SimTime now() const noexcept { return now_; }

  LegacyEventHandle schedule(common::SimDuration delay, Callback fn);
  LegacyEventHandle schedule_at(common::SimTime when, Callback fn);
  LegacyTimerHandle every(common::SimDuration period, Callback fn,
                          common::SimDuration initial_delay = -1.0);

  std::size_t run();
  std::size_t run_until(common::SimTime until);
  std::size_t run_steps(std::size_t max_events);

  void reserve_events(std::size_t n) { queue_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t total_fired() const noexcept { return fired_; }
  [[nodiscard]] std::uint64_t total_scheduled() const noexcept {
    return next_seq_;
  }
  [[nodiscard]] std::size_t max_queue_depth() const noexcept {
    return max_depth_;
  }

 private:
  struct Event {
    common::SimTime time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Queue : std::priority_queue<Event, std::vector<Event>, Later> {
    void reserve(std::size_t n) { c.reserve(n); }
  };

  void step();

  common::SimTime now_ = common::kSimStart;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t max_depth_ = 0;
  Queue queue_;
};

}  // namespace vdce::sim::legacy
