#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace vdce::sim {

namespace detail {
namespace {

/// Heap comparator: std::*_heap builds a max-heap, so "greater" on the
/// (time, seq) order yields a min-heap with the earliest entry on top.
/// A stateless functor (not a function pointer) so every comparison in the
/// sift loops inlines.
struct LaterCmp {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
    return earlier(b, a);
  }
};
constexpr LaterCmp later_cmp{};

}  // namespace

double CalendarQueue::vbucket(common::SimTime t) const noexcept {
  return std::floor(t * inv_width_);
}

std::size_t CalendarQueue::bucket_index(double vb) const noexcept {
  // The bucket count is always a power of two (kMinBuckets, doubled and
  // halved), so the mod is a mask.  vb is a non-negative integral double
  // well inside 2^53 (estimate_width bounds time/width), so the cast is
  // exact.
  return static_cast<std::size_t>(vb) & (buckets_.size() - 1);
}

void CalendarQueue::push(QueueEntry e) {
  std::vector<QueueEntry>& bucket = buckets_[bucket_index(vbucket(e.time))];
  bucket.push_back(e);
  std::push_heap(bucket.begin(), bucket.end(), later_cmp);
  ++size_;
  // The cached minimum stays correct unless the new entry beats it.
  if (cached_ && earlier(e, buckets_[cached_bucket_].front())) cached_ = false;
  maybe_resize_after_push();
}

void CalendarQueue::find_min() {
  if (cached_) return;
  assert(size_ != 0);
  const std::size_t n = buckets_.size();
  // Scan forward one window (bucket width) at a time from the last
  // dequeued entry's window.  All entries of window vb live in bucket
  // vb mod n, and a bucket's heap top is its minimum, so one comparison
  // per bucket decides whether the window holds an event.
  double vb = cursor_;
  for (std::size_t scanned = 0; scanned < n; ++scanned, vb += 1.0) {
    const std::size_t b = bucket_index(vb);
    const std::vector<QueueEntry>& bucket = buckets_[b];
    if (!bucket.empty() && vbucket(bucket.front().time) == vb) {
      cached_bucket_ = b;
      cached_ = true;
      return;
    }
  }
  // Sparse queue: nothing within the next n windows.  The global minimum
  // is the smallest bucket top (each top is its bucket's minimum).
  std::size_t best = n;
  for (std::size_t b = 0; b < n; ++b) {
    if (buckets_[b].empty()) continue;
    if (best == n || earlier(buckets_[b].front(), buckets_[best].front())) {
      best = b;
    }
  }
  assert(best != n);
  cached_bucket_ = best;
  cached_ = true;
}

const QueueEntry& CalendarQueue::min_entry() {
  find_min();
  return buckets_[cached_bucket_].front();
}

QueueEntry CalendarQueue::pop_min() {
  find_min();
  std::vector<QueueEntry>& bucket = buckets_[cached_bucket_];
  std::pop_heap(bucket.begin(), bucket.end(), later_cmp);
  const QueueEntry e = bucket.back();
  bucket.pop_back();
  --size_;
  // Resume the window scan at the dequeued entry's window.  The invariant
  // vbucket(entry) >= cursor_ holds because new entries are enqueued at or
  // after the engine clock, which never runs behind the last dequeued
  // event.
  cursor_ = vbucket(e.time);
  last_popped_ = e.time;
  cached_ = false;
  maybe_resize_after_pop();
  return e;
}

void CalendarQueue::maybe_resize_after_push() {
  if (size_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    const std::size_t n = buckets_.size() * 2;
    rebuild(n, estimate_width(n));
  }
}

void CalendarQueue::maybe_resize_after_pop() {
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    const std::size_t n = buckets_.size() / 2;
    rebuild(n, estimate_width(n));
  }
}

double CalendarQueue::estimate_width(std::size_t /*nbuckets*/) const {
  common::SimTime lo = 0.0;
  common::SimTime hi = 0.0;
  bool any = false;
  for (const std::vector<QueueEntry>& bucket : buckets_) {
    for (const QueueEntry& e : bucket) {
      if (!any || e.time < lo) lo = e.time;
      if (!any || e.time > hi) hi = e.time;
      any = true;
    }
  }
  if (!any || size_ < 2 || hi <= lo) return width_;
  // Brown's rule of thumb: a bucket width of ~3x the mean inter-event gap
  // keeps occupancy low without spreading one burst across many windows.
  const double w = (hi - lo) / static_cast<double>(size_) * 3.0;
  // Keep time/width well inside double's exact-integer range so floor()
  // and fmod() stay consistent between push and scan.
  const double floor_w = std::max(1.0, std::fabs(hi)) * 1e-9;
  if (!(w > floor_w)) return std::max(floor_w, std::min(width_, 1.0));
  return w;
}

void CalendarQueue::rebuild(std::size_t nbuckets, double width) {
  std::vector<QueueEntry> all;
  all.reserve(size_);
  for (std::vector<QueueEntry>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  buckets_.resize(nbuckets);
  assert((nbuckets & (nbuckets - 1)) == 0);  // bucket_index masks, not mods
  width_ = width;
  inv_width_ = 1.0 / width;
  cursor_ = vbucket(last_popped_);
  std::size_t peak = 0;
  for (const QueueEntry& e : all) {
    std::vector<QueueEntry>& bucket = buckets_[bucket_index(vbucket(e.time))];
    bucket.push_back(e);
    peak = std::max(peak, bucket.size());
  }
  // Headroom: a bucket's occupancy peaks just before the cursor reaches it
  // (all events maturing inside its window are queued by then), and the
  // densest windows at redistribution time already show that peak.  Reserve
  // 4x it so steady-state pushes land in pre-grown vectors and the schedule
  // path stays allocation-free between rebuilds — without this, buckets
  // keep setting occupancy records (and reallocating) for many wrap cycles.
  // Memory is the same as the doubling path's eventual steady state; this
  // just front-loads it into the rebuild.
  const std::size_t headroom =
      std::max(std::size_t{4} * peak, 4 * (size_ / nbuckets + 1) + 4);
  for (std::vector<QueueEntry>& bucket : buckets_) {
    if (bucket.capacity() < headroom) bucket.reserve(headroom);
    std::make_heap(bucket.begin(), bucket.end(), later_cmp);
  }
  cached_ = false;
}

void CalendarQueue::reserve(std::size_t n) {
  std::size_t target = kMinBuckets;
  while (target < n / 2 && target < kMaxBuckets) target *= 2;
  if (target > buckets_.size()) rebuild(target, width_);
  // Small per-bucket headroom so the first few pushes into each bucket
  // never regrow mid-run.
  for (std::vector<QueueEntry>& bucket : buckets_) {
    if (bucket.capacity() < 4) bucket.reserve(4);
  }
}

void BinaryHeapQueue::push(QueueEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later_cmp);
}

QueueEntry BinaryHeapQueue::pop_min() {
  std::pop_heap(heap_.begin(), heap_.end(), later_cmp);
  const QueueEntry e = heap_.back();
  heap_.pop_back();
  return e;
}

}  // namespace detail

// ---- handles ---------------------------------------------------------------

void EventHandle::cancel() {
  if (!anchor_) return;
  if (Engine* engine = *anchor_) engine->cancel_event(slot_, gen_);
}

bool EventHandle::pending() const {
  if (!anchor_) return false;
  const Engine* engine = *anchor_;
  return engine != nullptr && engine->event_pending(slot_, gen_);
}

void TimerHandle::cancel() {
  if (!anchor_) return;
  if (Engine* engine = *anchor_) engine->cancel_timer(slot_, gen_);
}

bool TimerHandle::active() const {
  if (!anchor_) return false;
  const Engine* engine = *anchor_;
  return engine != nullptr && engine->timer_active(slot_, gen_);
}

// ---- engine ----------------------------------------------------------------

Engine::Engine(QueueKind queue)
    : kind_(queue), self_(std::make_shared<Engine*>(this)) {}

Engine::~Engine() { *self_ = nullptr; }

void Engine::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.state != SlotState::kScheduled || s.gen != gen) return;
  // The entry stays in the queue (the old kernel kept cancelled events
  // queued too — popping one advances the clock without firing); only the
  // callback is released now so captured resources free promptly.
  s.state = SlotState::kCancelled;
  s.fn.reset();
}

bool Engine::event_pending(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.state == SlotState::kScheduled && s.gen == gen;
}

void Engine::cancel_timer(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= timers_.size()) return;
  TimerSlot& t = timers_[slot];
  if (!t.active || t.gen != gen) return;
  // The pending tick still fires (uncounted work, exactly like the old
  // kernel's stopped-flag check) and recycles the timer slot.
  t.active = false;
}

bool Engine::timer_active(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= timers_.size()) return false;
  const TimerSlot& t = timers_[slot];
  return t.active && t.gen == gen;
}

std::uint32_t Engine::alloc_slot() {
  std::uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  ++live_;
  if (live_ > arena_high_water_) arena_high_water_ = live_;
  return slot;
}

void Engine::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.gen;  // invalidates every outstanding handle to this slot
  s.state = SlotState::kFree;
  s.timer = kNil;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

std::uint32_t Engine::alloc_timer() {
  std::uint32_t slot;
  if (timer_free_head_ != kNil) {
    slot = timer_free_head_;
    timer_free_head_ = timers_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(timers_.size());
    timers_.emplace_back();
  }
  return slot;
}

void Engine::free_timer(std::uint32_t slot) {
  TimerSlot& t = timers_[slot];
  t.fn.reset();
  ++t.gen;
  t.active = false;
  t.next_free = timer_free_head_;
  timer_free_head_ = slot;
}

std::uint32_t Engine::push_event(common::SimTime when, Task&& fn,
                                 std::uint32_t timer) {
  assert(when >= now_);
  const std::uint32_t slot = alloc_slot();
  slots_[slot].fn = std::move(fn);
  stamp_and_enqueue(slot, when, timer);
  return slot;
}

void Engine::stamp_and_enqueue(std::uint32_t slot, common::SimTime when,
                               std::uint32_t timer) {
  Slot& s = slots_[slot];
  s.time = when;
  s.seq = next_seq_++;
  s.timer = timer;
  s.state = SlotState::kScheduled;
  const detail::QueueEntry e{when, s.seq, slot};
  std::size_t depth;
  if (kind_ == QueueKind::kCalendar) {
    calendar_.push(e);
    depth = calendar_.size();
  } else {
    heap_.push(e);
    depth = heap_.size();
  }
  if (depth > max_depth_) max_depth_ = depth;
}

EventHandle Engine::schedule(common::SimDuration delay, Task fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(common::SimTime when, Task fn) {
  assert(when >= now_);
  assert(fn);
  const std::uint32_t slot = push_event(when, std::move(fn), kNil);
  return EventHandle(self_, slot, slots_[slot].gen);
}

void Engine::post(common::SimDuration delay, Task fn) {
  assert(delay >= 0.0);
  post_at(now_ + delay, std::move(fn));
}

void Engine::post_at(common::SimTime when, Task fn) {
  assert(when >= now_);
  assert(fn);
  push_event(when, std::move(fn), kNil);
}

TimerHandle Engine::every(common::SimDuration period, Task fn,
                          std::optional<common::SimDuration> initial_delay) {
  assert(fn);
  const std::uint32_t timer = alloc_timer();
  timers_[timer].fn = std::move(fn);
  return arm_timer(timer, period, initial_delay);
}

TimerHandle Engine::arm_timer(std::uint32_t timer, common::SimDuration period,
                              std::optional<common::SimDuration> initial_delay) {
  assert(period > 0.0);
  const common::SimDuration first = initial_delay.value_or(period);
  assert(first >= 0.0);
  TimerSlot& t = timers_[timer];
  t.period = period;
  t.active = true;
  push_event(now_ + first, Task{}, timer);
  return TimerHandle(self_, timer, timers_[timer].gen);
}

void Engine::reserve_events(std::size_t n) {
  slots_.reserve(n);
  if (kind_ == QueueKind::kCalendar) {
    calendar_.reserve(n);
  } else {
    heap_.reserve(n);
  }
}

void Engine::step() {
  const detail::QueueEntry e = kind_ == QueueKind::kCalendar
                                   ? calendar_.pop_min()
                                   : heap_.pop_min();
  assert(e.time >= now_);
  now_ = e.time;
  Slot& s = slots_[e.slot];
  assert(s.state != SlotState::kFree && s.seq == e.seq);
  const std::uint32_t timer = s.timer;
  if (s.state == SlotState::kCancelled) {
    free_slot(e.slot);
    return;
  }
  ++fired_;
  if (timer == kNil) {
    // Move the callback out and recycle the slot *before* invoking: a
    // cancel() of this event's own handle from inside the callback is then
    // a harmless generation miss, and the callback may freely schedule new
    // events (possibly reusing this very slot, or growing the arena).
    Task fn = std::move(s.fn);
    free_slot(e.slot);
    fn();
  } else {
    free_slot(e.slot);
    if (!timers_[timer].active) {
      // cancel() landed between ticks: this pop is the cleanup.
      free_timer(timer);
      return;
    }
    // timers_ is a deque, so the callback stays at a stable address even
    // if it registers new timers mid-fire.
    timers_[timer].fn();
    TimerSlot& t = timers_[timer];
    if (!t.active) {
      free_timer(timer);  // cancelled from inside its own callback
      return;
    }
    push_event(now_ + t.period, Task{}, timer);
  }
}

std::size_t Engine::run() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t before = fired_;
  while (queue_size() != 0) {
    // Peek fills the queue's min cache (so step's pop is cache-hit cheap)
    // and lets us overlap the arena-slot fetch with the pop bookkeeping.
    __builtin_prefetch(&slots_[peek_entry().slot], 1);
    step();
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<std::size_t>(fired_ - before);
}

std::size_t Engine::run_until(common::SimTime until) {
  assert(until >= now_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t before = fired_;
  while (queue_size() != 0) {
    const detail::QueueEntry& e = peek_entry();
    if (e.time > until) break;
    __builtin_prefetch(&slots_[e.slot], 1);
    step();
  }
  now_ = until;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<std::size_t>(fired_ - before);
}

std::size_t Engine::run_steps(std::size_t max_events) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t before = fired_;
  while (queue_size() != 0 && fired_ - before < max_events) {
    __builtin_prefetch(&slots_[peek_entry().slot], 1);
    step();
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<std::size_t>(fired_ - before);
}

}  // namespace vdce::sim
