#include "sim/engine.hpp"

#include <utility>

namespace vdce::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const {
  // The engine resets the flag pointer's use_count to 1 only on pop; we
  // approximate "pending" as "not cancelled and the engine still holds a
  // reference".
  return cancelled_ && !*cancelled_ && cancelled_.use_count() > 1;
}

void TimerHandle::cancel() {
  if (stopped_) *stopped_ = true;
}

bool TimerHandle::active() const { return stopped_ && !*stopped_; }

EventHandle Engine::schedule(common::SimDuration delay, Callback fn) {
  assert(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(common::SimTime when, Callback fn) {
  assert(when >= now_);
  assert(fn);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  return EventHandle(std::move(cancelled));
}

TimerHandle Engine::every(common::SimDuration period, Callback fn,
                          common::SimDuration initial_delay) {
  assert(period > 0.0);
  auto stopped = std::make_shared<bool>(false);
  if (initial_delay < 0.0) initial_delay = period;

  // Each firing re-schedules the next one unless the timer was stopped.
  // The pending event's closure owns `tick`; the tick itself captures only
  // a weak_ptr, so once the chain stops rescheduling the function frees
  // itself.  (A shared_ptr self-capture would be a permanent cycle: the
  // function object could never be destroyed, leaking every timer.)
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, period, fn = std::move(fn), stopped, weak]() {
    if (*stopped) return;
    fn();
    if (*stopped) return;
    if (auto self = weak.lock()) schedule(period, [self]() { (*self)(); });
  };
  schedule(initial_delay, [tick]() { (*tick)(); });
  return TimerHandle(std::move(stopped));
}

void Engine::step() {
  assert(!queue_.empty());
  // top() is const, but the event is popped immediately, so moving out of
  // it is safe and avoids copying the std::function on every step.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  if (!*ev.cancelled) {
    ++fired_;
    ev.fn();
  }
}

std::size_t Engine::run() {
  std::uint64_t before = fired_;
  while (!queue_.empty()) step();
  return static_cast<std::size_t>(fired_ - before);
}

std::size_t Engine::run_until(common::SimTime until) {
  assert(until >= now_);
  std::uint64_t before = fired_;
  while (!queue_.empty() && queue_.top().time <= until) step();
  now_ = until;
  return static_cast<std::size_t>(fired_ - before);
}

std::size_t Engine::run_steps(std::size_t max_events) {
  std::uint64_t before = fired_;
  while (!queue_.empty() && fired_ - before < max_events) step();
  return static_cast<std::size_t>(fired_ - before);
}

}  // namespace vdce::sim
