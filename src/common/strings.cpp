#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace vdce::common {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

Expected<double> parse_double(std::string_view text) {
  text = trim(text);
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrorCode::kParseError,
                 "not a number: '" + std::string(text) + "'"};
  }
  return value;
}

Expected<std::int64_t> parse_int(std::string_view text) {
  text = trim(text);
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrorCode::kParseError,
                 "not an integer: '" + std::string(text) + "'"};
  }
  return value;
}

Expected<std::uint64_t> parse_uint(std::string_view text) {
  text = trim(text);
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrorCode::kParseError,
                 "not an unsigned integer: '" + std::string(text) + "'"};
  }
  return value;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string escape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '|': out += "\\p"; break;
      default: out += c;
    }
  }
  return out;
}

Expected<std::string> unescape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) {
      return Error{ErrorCode::kParseError, "dangling escape in field"};
    }
    switch (text[++i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'p': out += '|'; break;
      default:
        return Error{ErrorCode::kParseError,
                     std::string("bad escape '\\") + text[i] + "'"};
    }
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%s", bytes, units[u]);
  return buf;
}

}  // namespace vdce::common
