// Simulated-time types.
//
// The whole VDCE runtime (monitor daemons, echo packets, task executions,
// data transfers) runs against a virtual clock owned by the discrete-event
// engine.  Time is kept as a double count of seconds: the models that
// produce durations (transfer time = latency + bytes/bandwidth, predicted
// execution time = flops/speed) are naturally real-valued, and determinism
// is preserved because every run performs the identical sequence of
// floating-point operations.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace vdce::common {

/// A point on the simulation clock, in seconds since simulation start.
using SimTime = double;

/// A span of simulated time, in seconds.
using SimDuration = double;

constexpr SimTime kSimStart = 0.0;

/// Convenience constructors so call sites read in natural units.
constexpr SimDuration seconds(double s) noexcept { return s; }
constexpr SimDuration milliseconds(double ms) noexcept { return ms * 1e-3; }
constexpr SimDuration microseconds(double us) noexcept { return us * 1e-6; }
constexpr SimDuration minutes(double m) noexcept { return m * 60.0; }

/// Render a time for logs/reports, e.g. "12.345s".
std::string format_time(SimTime t);

inline std::string format_time(SimTime t) { return std::to_string(t) + "s"; }

/// True when two times are equal within one nanosecond — used by tests that
/// compare analytically computed schedules against simulated ones.
inline bool time_close(SimTime a, SimTime b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol * (1.0 + std::fabs(a) + std::fabs(b));
}

}  // namespace vdce::common
