// Small string utilities shared by the AFG DSL parser, the database
// persistence format, and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"

namespace vdce::common {

/// Split on a delimiter; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

/// Split on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Case-sensitive prefix/suffix tests.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

/// Strict numeric parsing (whole string must convert).
Expected<double> parse_double(std::string_view text);
Expected<std::int64_t> parse_int(std::string_view text);
Expected<std::uint64_t> parse_uint(std::string_view text);

/// Join pieces with a separator: join({"a","b"}, ", ") -> "a, b".
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Escape/unescape a field so it can live in one line of a text database
/// (escapes backslash, newline, and the '|' field separator).
std::string escape_field(std::string_view text);
Expected<std::string> unescape_field(std::string_view text);

/// Fixed-width human formatting used by report tables.
std::string format_double(double value, int precision = 3);
std::string format_bytes(double bytes);

}  // namespace vdce::common
