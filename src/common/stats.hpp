// Streaming statistics used by benchmark harnesses and the visualization
// service: mean/stddev/min/max accumulation plus exact percentiles over a
// retained sample vector.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vdce::common {

/// Accumulates samples and answers summary queries.  Samples are retained,
/// so percentile queries are exact; the volumes involved (per-experiment
/// series) make this the right trade-off over a sketch.
///
/// Memory trade-off: every add() keeps its sample (8 bytes each, amortised
/// vector growth), so a Stats instance fed N times holds 8N bytes for the
/// run's lifetime.  That is deliberate — exact percentiles (p50/p90/p99/
/// p99.9) beat sketch approximations at the volumes the benches and the
/// metrics registry see (at most a few million samples, tens of MB).  For
/// long runs with a known sample budget, reserve() avoids the regrowth
/// copies; for unbounded streams where memory matters more than exactness,
/// use a windowed structure (obs::health::TimeSeries) instead.
///
/// Queries on an empty Stats return 0.0 (never NaN/Inf), so exporters can
/// serialise unconditionally; callers that must distinguish "no samples"
/// check empty() / count().
class Stats {
 public:
  void add(double sample);

  /// Pre-size the retained-sample vector (see the class comment).
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// 0.0 when empty.
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  /// 0.0 when empty.
  [[nodiscard]] double min() const;
  /// 0.0 when empty.
  [[nodiscard]] double max() const;
  /// Exact percentile by nearest-rank; p in [0, 100].  0.0 when empty.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// One-line summary: "n=100 mean=1.23 sd=0.45 min=0.1 p50=1.2 p99=3.4 max=5.0".
  [[nodiscard]] std::string summary(int precision = 3) const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
};

/// Fixed-bin histogram for workload/latency distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// ASCII rendering used by the visualization service.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace vdce::common
