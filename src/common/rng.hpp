// Deterministic random number generation.
//
// Reproducibility is a core requirement: every benchmark in EXPERIMENTS.md
// must print the same table on every run.  All stochastic behaviour in the
// environment (workload noise, failure injection, random DAG generation,
// baseline schedulers) draws from an explicitly seeded Rng; nothing in the
// library touches std::random_device or global generator state.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace vdce::common {

/// Seeded pseudo-random generator with the handful of distributions the
/// environment needs.  Thin wrapper over std::mt19937_64 so the engine can
/// be swapped without touching call sites.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal draw clamped to be >= `floor` (loads, durations must stay
  /// non-negative).
  double normal(double mean, double stddev, double floor = 0.0);

  /// Exponential inter-arrival draw with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p);

  /// Pick an index in [0, n) — n must be > 0.
  std::size_t pick_index(std::size_t n);

  /// Derive an independent child generator; used so each simulated host's
  /// load noise stream does not perturb the others.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vdce::common
