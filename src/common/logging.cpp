#include "common/logging.hpp"

#include <cstdio>

namespace vdce::common {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& component, double sim_time,
                 const std::string& message) {
  std::lock_guard lock(mutex_);
  if (sim_time >= 0.0) {
    std::fprintf(stderr, "[%-5s] [t=%10.6fs] [%s] %s\n", to_string(level),
                 sim_time, component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%-5s] [%s] %s\n", to_string(level),
                 component.c_str(), message.c_str());
  }
}

}  // namespace vdce::common
