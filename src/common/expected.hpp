// Lightweight Expected<T> for recoverable errors.
//
// The environment distinguishes (Core Guidelines I.10/E.x style) between
// contract violations — programmer bugs, handled with assertions — and
// runtime conditions a caller must handle: authentication failure, no
// feasible host for a task, a site database miss, a channel to a dead host.
// The latter travel as Expected<T>, which either holds a value or an Error.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace vdce::common {

/// Machine-readable error category; `message` carries the human detail.
enum class ErrorCode {
  kNotFound,
  kAlreadyExists,
  kAuthFailed,
  kPermissionDenied,
  kInvalidArgument,
  kNoFeasibleResource,
  kQuotaExceeded,
  kBudgetExceeded,
  kReservationConflict,
  kHostDown,
  kCycleDetected,
  kParseError,
  kIoError,
  kTimeout,
  kCancelled,
  kInternal,
};

/// Convert a code to its stable string name (used in logs and test output).
constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kAuthFailed: return "auth_failed";
    case ErrorCode::kPermissionDenied: return "permission_denied";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNoFeasibleResource: return "no_feasible_resource";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kBudgetExceeded: return "budget_exceeded";
    case ErrorCode::kReservationConflict: return "reservation_conflict";
    case ErrorCode::kHostDown: return "host_down";
    case ErrorCode::kCycleDetected: return "cycle_detected";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

struct Error {
  ErrorCode code;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(common::to_string(code)) + ": " + message;
  }
};

/// Minimal std::expected stand-in (toolchain ships C++20 without it).
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Expected(Error error) : state_(std::move(error)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!has_value());
    return std::get<Error>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, Error> state_;
};

/// Expected<void> analogue for operations with no result payload.
class Status {
 public:
  Status() = default;                                    // success
  Status(Error error) : error_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *error_;
  }

  static Status success() { return {}; }

 private:
  std::optional<Error> error_;
};

}  // namespace vdce::common
