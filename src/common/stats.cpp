#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace vdce::common {

void Stats::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double Stats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

std::string Stats::summary(int precision) const {
  if (empty()) return "n=0";
  return "n=" + std::to_string(count()) +
         " mean=" + format_double(mean(), precision) +
         " sd=" + format_double(stddev(), precision) +
         " min=" + format_double(min(), precision) +
         " p50=" + format_double(percentile(50), precision) +
         " p99=" + format_double(percentile(99), precision) +
         " max=" + format_double(max(), precision);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double sample) {
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((sample - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::count_in_bin(std::size_t bin) const {
  assert(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  assert(bin < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar = counts_[i] * width / peak;
    out += "[" + format_double(bin_lo(i), 3) + ", " + format_double(bin_hi(i), 3) +
           ") " + std::string(bar, '#') + " " + std::to_string(counts_[i]) + "\n";
  }
  if (underflow_ > 0) out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0) out += "overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace vdce::common
