#include "common/rng.hpp"

#include <algorithm>
#include <cassert>

namespace vdce::common {

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev, double floor) {
  double v = std::normal_distribution<double>(mean, stddev)(engine_);
  return std::max(v, floor);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::pick_index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(
      std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
}

Rng Rng::fork() {
  // Draw a fresh seed from this stream; the child is then independent.
  return Rng(engine_());
}

}  // namespace vdce::common
