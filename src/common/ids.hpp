// Strongly typed identifiers used across all VDCE subsystems.
//
// Every entity in the environment (site, host, task, application, user,
// channel) is referred to by a small integer id.  Wrapping the integer in a
// distinct type per entity prevents the classic grid-middleware bug of
// passing a host id where a site id was expected; the compiler rejects the
// mix-up instead of the scheduler silently mapping tasks to the wrong
// machine.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace vdce::common {

/// CRTP-free tagged id: `Id<struct SiteTag>` and `Id<struct HostTag>` are
/// unrelated types even though both wrap a `std::uint32_t`.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  /// Sentinel used for "no entity"; default construction yields it.
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() noexcept = default;
  constexpr explicit Id(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

 private:
  value_type value_ = kInvalid;
};

struct SiteTag {};
struct HostTag {};
struct TaskTag {};
struct AppTag {};
struct UserTag {};
struct ChannelTag {};
struct GroupTag {};

using SiteId = Id<SiteTag>;
using HostId = Id<HostTag>;
using TaskId = Id<TaskTag>;
using AppId = Id<AppTag>;
using UserId = Id<UserTag>;
using ChannelId = Id<ChannelTag>;
using GroupId = Id<GroupTag>;

}  // namespace vdce::common

namespace std {
template <typename Tag>
struct hash<vdce::common::Id<Tag>> {
  size_t operator()(vdce::common::Id<Tag> id) const noexcept {
    return std::hash<typename vdce::common::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
