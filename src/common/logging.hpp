// Minimal structured logging.
//
// The runtime daemons (monitors, group managers, site managers) narrate the
// Figure-4 protocol when tracing is on; tests and benches keep it off so
// output stays parseable.  The logger is a process-wide singleton guarded by
// a mutex — log volume in this system is low (control-plane events only), so
// contention is irrelevant, and a single sink keeps interleaved daemon
// output readable.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace vdce::common {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

constexpr const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// `component` names the emitting subsystem ("site-mgr", "monitor", ...);
  /// `sim_time` < 0 means "no simulation clock in scope".
  void log(LogLevel level, const std::string& component, double sim_time,
           const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
  std::mutex mutex_;
};

/// Stream-style helper: VDCE_LOG(kInfo, "site-mgr", t) << "host " << h << " down";
class LogLine {
 public:
  LogLine(LogLevel level, std::string component, double sim_time)
      : level_(level), component_(std::move(component)), sim_time_(sim_time) {}
  ~LogLine() {
    if (Logger::instance().enabled(level_)) {
      Logger::instance().log(level_, component_, sim_time_, stream_.str());
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  double sim_time_;
  std::ostringstream stream_;
};

}  // namespace vdce::common

#define VDCE_LOG(level, component, sim_time) \
  ::vdce::common::LogLine(::vdce::common::LogLevel::level, (component), (sim_time))
