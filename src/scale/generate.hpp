// vdce::scale — deterministic grid-scale workload generation.
//
// The paper's testbed is a handful of syr.edu hosts; the ROADMAP north-star
// is a system whose scheduler stays fast and correct as sites, hosts, and
// AFGs grow by orders of magnitude.  This module generates that scale on
// demand, GridSim-style: parameterized wide-area topologies (S sites × H
// hosts with heterogeneous architectures, speeds, memory, and initial load;
// LAN tiers inside a site; regional vs. long-haul WAN links between sites)
// and AFG workloads in the standard shapes of the list-scheduling
// literature (layered, fork-join, bounded-fan-in random DAGs).
//
// Everything is seeded off vdce::common::Rng and nothing reads global
// state, so a (spec, seed) pair names one exact topology or graph forever —
// the property suite (tests/test_properties.cpp), the differential suite
// (tests/test_differential.cpp), and bench/bench_scale.cpp all replay the
// same corpus from specs alone.  docs/SCALING.md describes the parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "afg/graph.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"

namespace vdce::scale {

/// Parameters of a generated wide-area grid.
struct GridSpec {
  std::size_t sites = 8;
  std::size_t hosts_per_site = 16;
  std::size_t group_size = 8;  ///< hosts per group-leader machine

  /// Host heterogeneity: speeds uniform in this range (MFLOPS); memory from
  /// the discrete ladder {64, 128, 256, 512, 1024} MB.
  double min_mflops = 40.0;
  double max_mflops = 800.0;

  /// Initial CPU load per host: normal(mean, stddev) clamped to >= 0, so a
  /// generated grid is busy and uneven the moment it is brought up.
  double load_mean = 0.25;
  double load_stddev = 0.20;

  /// LAN tier per site, drawn uniformly: shared Ethernet, switched
  /// fast-Ethernet, or campus ATM.  (latency s, bandwidth bytes/s)
  std::vector<net::LinkSpec> lan_tiers{
      {0.0015, 1.2e6}, {0.0008, 1.2e7}, {0.0004, 1.9e7}};

  /// WAN: each site pair is "regional" with this probability, long-haul
  /// otherwise; latency and bandwidth drawn uniformly from the tier range.
  double regional_fraction = 0.45;
  double regional_latency_min = 0.004;
  double regional_latency_max = 0.030;
  double regional_bandwidth_min = 1.0e6;
  double regional_bandwidth_max = 8.0e6;
  double longhaul_latency_min = 0.040;
  double longhaul_latency_max = 0.200;
  double longhaul_bandwidth_min = 1.5e5;
  double longhaul_bandwidth_max = 1.5e6;

  std::uint64_t seed = 1;
};

/// Build the grid.  Deterministic: equal specs yield byte-identical
/// topologies (names, speeds, loads, links).
net::Topology make_grid(const GridSpec& spec);

/// AFG workload shapes the generator produces.  kParamSweep is the
/// Nimrod/G task-farming shape (Buyya et al., arXiv cs/0009021): one root
/// distributing parameters to `tasks - 2` identical independent sweep
/// tasks, gathered by a single sink — the canonical workload of the
/// deadline/budget-constrained economy plane (docs/ECONOMY.md).
enum class WorkloadShape { kLayered, kForkJoin, kRandomDag, kParamSweep };

constexpr const char* to_string(WorkloadShape s) {
  switch (s) {
    case WorkloadShape::kLayered: return "layered";
    case WorkloadShape::kForkJoin: return "forkjoin";
    case WorkloadShape::kRandomDag: return "randomdag";
    case WorkloadShape::kParamSweep: return "paramsweep";
  }
  return "?";
}

/// Parameters of a generated AFG.
struct WorkloadSpec {
  WorkloadShape shape = WorkloadShape::kLayered;
  std::size_t tasks = 64;

  /// kLayered: max tasks per layer.  kForkJoin: branch count (depth follows
  /// from `tasks`).
  std::size_t width = 8;
  /// kLayered: P(edge) between adjacent layers.
  double edge_density = 0.35;
  /// kRandomDag: in-degree cap — each non-entry task draws 1..max_fan_in
  /// distinct parents among its predecessors.
  std::size_t max_fan_in = 6;
  /// kRandomDag: P(a non-entry task is made an extra entry instead).
  double entry_density = 0.04;

  double min_mflop = 50.0;
  double max_mflop = 2500.0;
  double min_output_bytes = 1e4;
  double max_output_bytes = 2e7;
  /// Fraction of tasks made parallel (2-4 nodes); 0 keeps every task
  /// sequential.
  double parallel_fraction = 0.0;

  std::uint64_t seed = 1;
};

/// Build the workload AFG.  Deterministic given the spec.
afg::Afg make_workload(const WorkloadSpec& spec,
                       const std::string& name = "scale-workload");

/// One (topology, AFG) pair of the randomized test corpus.
struct CorpusCase {
  std::size_t index = 0;
  GridSpec grid;
  WorkloadSpec workload;
};

/// Parameters of the property/differential test corpus.
struct CorpusSpec {
  std::size_t cases = 200;
  /// Grid size ranges (kept small enough that a 200-case sweep stays in CI
  /// budget under sanitizers).
  std::size_t min_sites = 2;
  std::size_t max_sites = 6;
  std::size_t min_hosts_per_site = 2;
  std::size_t max_hosts_per_site = 10;
  std::size_t min_tasks = 6;
  std::size_t max_tasks = 40;
  double parallel_fraction = 0.15;  ///< fraction of cases with parallel tasks
  std::uint64_t seed = 20260806;
};

/// Enumerate the corpus: every case's grid/workload specs (with derived
/// seeds), cycling through the three workload shapes.  Pure function of the
/// spec — tests and benches reproduce any case from its index alone.
std::vector<CorpusCase> make_corpus(const CorpusSpec& spec);

// ---- multi-tenant arrivals (docs/TENANCY.md) --------------------------------

/// Parameters of a deterministic multi-tenant arrival sequence: `tenants`
/// users, each submitting `apps_per_tenant` applications with think-time
/// gaps, producing the staggered submission schedule the tenancy tests and
/// bench_tenancy replay against an environment.
struct TenantSpec {
  std::size_t tenants = 4;
  std::size_t apps_per_tenant = 2;
  /// Tenant t's first submission arrives at t * tenant_stagger (plus its
  /// first think time), so arrivals interleave instead of bursting at 0.
  double tenant_stagger = 2.0;
  /// Think time between one tenant's consecutive submissions, uniform.
  double min_think = 0.5;
  double max_think = 6.0;
  /// User priority, uniform over [min_priority, max_priority] — exercised
  /// by QueuePolicy::kPriority.
  int min_priority = 1;
  int max_priority = 3;
  /// Per-application workload size range; shapes cycle per application.
  std::size_t min_tasks = 4;
  std::size_t max_tasks = 14;
  std::uint64_t seed = 1;
};

/// One scheduled submission of the arrival sequence.
struct TenantArrival {
  std::size_t tenant = 0;   ///< tenant index (user "tenant<N>")
  std::string user;
  int priority = 1;
  double at = 0.0;          ///< simulated submission instant
  WorkloadSpec workload;
  std::string app_name;     ///< "t<tenant>-app<k>"
};

/// Enumerate the arrival sequence, sorted by (at, tenant).  Pure function
/// of the spec: equal specs yield identical schedules, which is what the
/// tenancy determinism regression replays twice.
std::vector<TenantArrival> make_tenant_arrivals(const TenantSpec& spec);

}  // namespace vdce::scale
