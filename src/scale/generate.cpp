#include "scale/generate.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "afg/generate.hpp"

namespace vdce::scale {

namespace {

struct MachineClass {
  const char* arch;
  const char* os;
  const char* machine_type;
};

// The 1997 campus classes of vdce::make_testbed plus the commodity-cluster
// classes a grid of this size would federate.
constexpr std::array<MachineClass, 7> kClasses{{
    {"sparc", "sunos", "SUN sparc"},
    {"sparc", "solaris", "SUN solaris"},
    {"mips", "irix", "SGI"},
    {"alpha", "osf1", "DEC alpha"},
    {"x86", "linux", "Intel pentium"},
    {"x86", "freebsd", "Intel pentium"},
    {"ppc", "aix", "IBM rs6000"},
}};

constexpr std::array<double, 5> kMemoryLadderMb{64.0, 128.0, 256.0, 512.0,
                                                1024.0};

std::string synth_task_name(double mflop) {
  return "synthetic.w" + std::to_string(static_cast<long long>(mflop));
}

afg::TaskProperties synth_props(int fan_in, double output_bytes,
                                afg::ComputationMode mode, int num_nodes) {
  afg::TaskProperties p;
  p.mode = mode;
  p.num_nodes = num_nodes;
  p.inputs.resize(static_cast<std::size_t>(fan_in));
  p.outputs.push_back(afg::FileSpec{"", output_bytes, false});
  return p;
}

/// Bounded-fan-in random DAG.  Structure is drawn in one pass (so the port
/// counts are known before any task is added), then the graph is built —
/// connect() requires declared input ports.
afg::Afg make_random_dag(const WorkloadSpec& spec, common::Rng& rng,
                         const std::string& name) {
  const std::size_t n = spec.tasks;
  std::vector<std::vector<std::size_t>> parents(n);
  for (std::size_t i = 1; i < n; ++i) {
    if (rng.chance(spec.entry_density)) continue;  // extra entry task
    const std::size_t cap = std::max<std::size_t>(spec.max_fan_in, 1);
    const std::size_t d = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::min(i, cap))));
    // Partial Fisher-Yates over the predecessors: d distinct parents.
    std::vector<std::size_t> pool(i);
    for (std::size_t j = 0; j < i; ++j) pool[j] = j;
    for (std::size_t j = 0; j < d; ++j) {
      std::size_t k = j + rng.pick_index(i - j);
      std::swap(pool[j], pool[k]);
      parents[i].push_back(pool[j]);
    }
    // Sorted for a canonical port order (the draw itself stays random).
    std::sort(parents[i].begin(), parents[i].end());
  }

  afg::Afg graph(name);
  std::vector<afg::TaskId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    double mflop = rng.uniform(spec.min_mflop, spec.max_mflop);
    double out_bytes = rng.uniform(spec.min_output_bytes,
                                   spec.max_output_bytes);
    bool parallel = rng.chance(spec.parallel_fraction);
    int nodes = parallel ? static_cast<int>(rng.uniform_int(2, 4)) : 1;
    auto id = graph.add_task(
        "t" + std::to_string(i), synth_task_name(mflop),
        synth_props(static_cast<int>(parents[i].size()), out_bytes,
                    parallel ? afg::ComputationMode::kParallel
                             : afg::ComputationMode::kSequential,
                    nodes));
    assert(id);
    ids[i] = *id;
  }
  for (std::size_t i = 0; i < n; ++i) {
    int port = 0;
    for (std::size_t p : parents[i]) {
      auto st = graph.connect(ids[p], 0, ids[i], port++);
      assert(st.ok());
    }
  }
  return graph;
}

}  // namespace

net::Topology make_grid(const GridSpec& spec) {
  assert(spec.sites >= 1 && spec.hosts_per_site >= 1 && spec.group_size >= 1);
  assert(!spec.lan_tiers.empty());
  common::Rng rng(spec.seed);
  net::Topology topology;

  for (std::size_t s = 0; s < spec.sites; ++s) {
    const net::LinkSpec lan = spec.lan_tiers[rng.pick_index(spec.lan_tiers.size())];
    auto site = topology.add_site("grid" + std::to_string(s), lan);
    for (std::size_t h = 0; h < spec.hosts_per_site; ++h) {
      const MachineClass& mc = kClasses[rng.pick_index(kClasses.size())];
      net::HostSpec host;
      host.name = "n" + std::to_string(h) + ".grid" + std::to_string(s) +
                  ".vdce.org";
      host.ip = "10." + std::to_string(128 + s / 250) + "." +
                std::to_string(s % 250) + "." + std::to_string(h % 250 + 1);
      host.arch = mc.arch;
      host.os = mc.os;
      host.machine_type = mc.machine_type;
      host.speed_mflops = rng.uniform(spec.min_mflops, spec.max_mflops);
      host.memory_mb = kMemoryLadderMb[rng.pick_index(kMemoryLadderMb.size())];
      auto id = topology.add_host(site, std::move(host),
                                  static_cast<int>(h / spec.group_size));
      topology.set_cpu_load(id, rng.normal(spec.load_mean, spec.load_stddev));
    }
  }

  // Pairwise WAN links, each drawn from the regional or long-haul tier.
  for (std::size_t a = 0; a < spec.sites; ++a) {
    for (std::size_t b = a + 1; b < spec.sites; ++b) {
      const bool regional = rng.chance(spec.regional_fraction);
      const double lat =
          regional ? rng.uniform(spec.regional_latency_min,
                                 spec.regional_latency_max)
                   : rng.uniform(spec.longhaul_latency_min,
                                 spec.longhaul_latency_max);
      const double bw =
          regional ? rng.uniform(spec.regional_bandwidth_min,
                                 spec.regional_bandwidth_max)
                   : rng.uniform(spec.longhaul_bandwidth_min,
                                 spec.longhaul_bandwidth_max);
      topology.set_wan_link(common::SiteId(static_cast<std::uint32_t>(a)),
                            common::SiteId(static_cast<std::uint32_t>(b)),
                            net::LinkSpec{lat, bw});
    }
  }
  return topology;
}

afg::Afg make_workload(const WorkloadSpec& spec, const std::string& name) {
  assert(spec.tasks >= 1);
  common::Rng rng(spec.seed);
  switch (spec.shape) {
    case WorkloadShape::kLayered: {
      afg::LayeredDagSpec dag;
      dag.tasks = spec.tasks;
      dag.width = std::max<std::size_t>(spec.width, 1);
      dag.edge_density = spec.edge_density;
      dag.min_mflop = spec.min_mflop;
      dag.max_mflop = spec.max_mflop;
      dag.min_output_bytes = spec.min_output_bytes;
      dag.max_output_bytes = spec.max_output_bytes;
      dag.parallel_task_fraction = spec.parallel_fraction;
      return afg::make_layered_dag(dag, rng, name);
    }
    case WorkloadShape::kForkJoin: {
      // tasks ≈ 2 + width * depth; keep at least depth 1.
      const std::size_t width = std::max<std::size_t>(spec.width, 1);
      const std::size_t body = spec.tasks > 2 ? spec.tasks - 2 : 1;
      const std::size_t depth = std::max<std::size_t>(body / width, 1);
      const double mflop = rng.uniform(spec.min_mflop, spec.max_mflop);
      const double bytes =
          rng.uniform(spec.min_output_bytes, spec.max_output_bytes);
      return afg::make_fork_join(width, depth, mflop, bytes, name);
    }
    case WorkloadShape::kRandomDag:
      return make_random_dag(spec, rng, name);
    case WorkloadShape::kParamSweep: {
      // Nimrod/G task farming: a light root fans one parameter file out to
      // `tasks - 2` identical sweep tasks; a sink gathers their results.
      // Homogeneous work is what makes the economy interesting — every
      // placement choice is purely a price/speed trade-off.
      const std::size_t sweeps = spec.tasks > 2 ? spec.tasks - 2 : 1;
      const double mflop = rng.uniform(spec.min_mflop, spec.max_mflop);
      const double param_bytes = spec.min_output_bytes;
      const double result_bytes =
          rng.uniform(spec.min_output_bytes, spec.max_output_bytes);
      afg::Afg graph(name);
      auto root = graph.add_task(
          "sweep-root", synth_task_name(spec.min_mflop),
          synth_props(0, param_bytes, afg::ComputationMode::kSequential, 1));
      assert(root);
      auto sink = graph.add_task(
          "sweep-gather", synth_task_name(spec.min_mflop),
          synth_props(static_cast<int>(sweeps), param_bytes,
                      afg::ComputationMode::kSequential, 1));
      assert(sink);
      for (std::size_t i = 0; i < sweeps; ++i) {
        auto id = graph.add_task(
            "sweep" + std::to_string(i), synth_task_name(mflop),
            synth_props(1, result_bytes, afg::ComputationMode::kSequential, 1));
        assert(id);
        auto in = graph.connect(*root, 0, *id, 0);
        assert(in.ok());
        auto out = graph.connect(*id, 0, *sink, static_cast<int>(i));
        assert(out.ok());
        (void)in;
        (void)out;
      }
      return graph;
    }
  }
  // Unreachable; keeps -Wreturn-type quiet on exotic compilers.
  return afg::Afg(name);
}

std::vector<CorpusCase> make_corpus(const CorpusSpec& spec) {
  common::Rng rng(spec.seed);
  std::vector<CorpusCase> corpus;
  corpus.reserve(spec.cases);
  constexpr std::array<WorkloadShape, 3> kShapes{
      WorkloadShape::kLayered, WorkloadShape::kForkJoin,
      WorkloadShape::kRandomDag};

  for (std::size_t i = 0; i < spec.cases; ++i) {
    CorpusCase c;
    c.index = i;

    const bool parallel = rng.chance(spec.parallel_fraction);

    c.grid.sites = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(spec.min_sites),
                        static_cast<std::int64_t>(spec.max_sites)));
    // Parallel groups need up to 4 feasible hosts in one site.
    const std::size_t min_hosts =
        parallel ? std::max<std::size_t>(spec.min_hosts_per_site, 4)
                 : spec.min_hosts_per_site;
    const std::size_t max_hosts =
        std::max(min_hosts, spec.max_hosts_per_site);
    c.grid.hosts_per_site = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_hosts),
                        static_cast<std::int64_t>(max_hosts)));
    c.grid.group_size = static_cast<std::size_t>(rng.uniform_int(2, 8));
    c.grid.seed = spec.seed * 1000003 + i * 2 + 1;

    c.workload.shape = kShapes[i % kShapes.size()];
    c.workload.tasks = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(spec.min_tasks),
                        static_cast<std::int64_t>(spec.max_tasks)));
    c.workload.width = static_cast<std::size_t>(rng.uniform_int(2, 10));
    c.workload.edge_density = rng.uniform(0.15, 0.8);
    c.workload.max_fan_in = static_cast<std::size_t>(rng.uniform_int(2, 8));
    c.workload.parallel_fraction = parallel ? 0.2 : 0.0;
    c.workload.seed = spec.seed * 1000033 + i * 2;

    corpus.push_back(std::move(c));
  }
  return corpus;
}

std::vector<TenantArrival> make_tenant_arrivals(const TenantSpec& spec) {
  static constexpr WorkloadShape kShapes[] = {
      WorkloadShape::kLayered, WorkloadShape::kForkJoin,
      WorkloadShape::kRandomDag};
  common::Rng rng(spec.seed);
  std::vector<TenantArrival> arrivals;
  arrivals.reserve(spec.tenants * spec.apps_per_tenant);
  for (std::size_t t = 0; t < spec.tenants; ++t) {
    const int priority = static_cast<int>(
        rng.uniform_int(spec.min_priority, spec.max_priority));
    double clock = static_cast<double>(t) * spec.tenant_stagger;
    for (std::size_t k = 0; k < spec.apps_per_tenant; ++k) {
      clock += rng.uniform(spec.min_think, spec.max_think);
      TenantArrival a;
      a.tenant = t;
      a.user = "tenant" + std::to_string(t);
      a.priority = priority;
      a.at = clock;
      a.app_name = "t" + std::to_string(t) + "-app" + std::to_string(k);
      const std::size_t index = t * spec.apps_per_tenant + k;
      a.workload.shape = kShapes[index % std::size(kShapes)];
      a.workload.tasks = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(spec.min_tasks),
                          static_cast<std::int64_t>(spec.max_tasks)));
      a.workload.width = static_cast<std::size_t>(rng.uniform_int(2, 6));
      a.workload.edge_density = rng.uniform(0.2, 0.7);
      a.workload.max_fan_in = static_cast<std::size_t>(rng.uniform_int(2, 5));
      a.workload.seed = spec.seed * 1000081 + index;
      arrivals.push_back(std::move(a));
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const TenantArrival& a, const TenantArrival& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.tenant < b.tenant;
            });
  return arrivals;
}

}  // namespace vdce::scale
