#include "tasklib/signal.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace vdce::tasklib {

std::size_t next_pow2(std::size_t n) {
  assert(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

common::Status fft_inplace(Spectrum& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "fft: length must be a power of two, got " +
                             std::to_string(n)};
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson–Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = data[i + k];
        std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& c : data) c /= static_cast<double>(n);
  }
  return common::Status::success();
}

common::Expected<Spectrum> fft(const Signal& signal) {
  if (signal.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "fft: empty signal"};
  }
  Spectrum data(next_pow2(signal.size()));
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  auto st = fft_inplace(data, false);
  if (!st.ok()) return st.error();
  return data;
}

common::Expected<Signal> ifft_real(const Spectrum& spectrum) {
  Spectrum data = spectrum;
  auto st = fft_inplace(data, true);
  if (!st.ok()) return st.error();
  Signal out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i].real();
  return out;
}

Signal fir_filter(const Signal& signal, const Signal& taps) {
  Signal out(signal.size(), 0.0);
  for (std::size_t n = 0; n < signal.size(); ++n) {
    double acc = 0.0;
    const std::size_t kmax = std::min(taps.size(), n + 1);
    for (std::size_t k = 0; k < kmax; ++k) acc += taps[k] * signal[n - k];
    out[n] = acc;
  }
  return out;
}

common::Expected<Signal> design_lowpass(double cutoff, std::size_t taps) {
  if (cutoff <= 0.0 || cutoff >= 0.5) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "lowpass cutoff must be in (0, 0.5)"};
  }
  if (taps < 3) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "lowpass needs >= 3 taps"};
  }
  Signal h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    // Windowed sinc (Hamming).
    double sinc = (t == 0.0)
                      ? 2.0 * cutoff
                      : std::sin(2.0 * std::numbers::pi * cutoff * t) /
                            (std::numbers::pi * t);
    double window =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) /
                               static_cast<double>(taps - 1));
    h[i] = sinc * window;
    sum += h[i];
  }
  // Normalize to unit DC gain.
  for (double& v : h) v /= sum;
  return h;
}

common::Expected<Signal> beamform(const std::vector<Signal>& channels,
                                  const std::vector<int>& delays) {
  if (channels.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "beamform: no channels"};
  }
  if (delays.size() != channels.size()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "beamform: delays/channels count mismatch"};
  }
  const std::size_t len = channels.front().size();
  for (const Signal& ch : channels) {
    if (ch.size() != len) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "beamform: channel length mismatch"};
    }
  }
  Signal out(len, 0.0);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const int d = delays[c];
    for (std::size_t n = 0; n < len; ++n) {
      const std::int64_t src = static_cast<std::int64_t>(n) - d;
      if (src >= 0 && src < static_cast<std::int64_t>(len)) {
        out[n] += channels[c][static_cast<std::size_t>(src)];
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(channels.size());
  for (double& v : out) v *= scale;
  return out;
}

std::vector<std::size_t> detect(const Signal& signal, double threshold) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    if (std::fabs(signal[i]) > threshold) hits.push_back(i);
  }
  return hits;
}

double energy(const Signal& signal) {
  double acc = 0.0;
  for (double v : signal) acc += v * v;
  return acc;
}

Signal make_test_signal(std::size_t samples,
                        const std::vector<double>& freqs_cycles_per_sample,
                        double noise_amplitude, common::Rng& rng) {
  Signal out(samples, 0.0);
  for (std::size_t n = 0; n < samples; ++n) {
    for (double f : freqs_cycles_per_sample) {
      out[n] += std::sin(2.0 * std::numbers::pi * f * static_cast<double>(n));
    }
    out[n] += rng.uniform(-noise_amplitude, noise_amplitude);
  }
  return out;
}

}  // namespace vdce::tasklib
