// Task registry: the bridge between the editor's menu-driven task libraries
// and the runtime.
//
// Each entry binds a library-qualified task name ("matrix.lu_decomposition")
// to (a) a real in-process kernel the Data Manager invokes when an
// application executes with real payloads, and (b) the TaskPerfRecord the
// task-performance database is seeded with (computation size, communication
// size, memory, base execution time — the §3 schema).
//
// Synthetic tasks — names of the form "<lib>.w<mflop>" produced by the AFG
// generators — are resolved on the fly: their performance record is derived
// from the encoded computation size and they carry a no-op kernel.  This
// lets scheduler benches run over thousands of generated graphs without
// registering each task individually.
#pragma once

#include <any>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "db/task_perf.hpp"

namespace vdce::tasklib {

/// A runtime value flowing between tasks (Matrix, Vector, Signal, ...).
using Value = std::any;

/// A task kernel: inputs (one per connected input port, in port order) to
/// outputs (one per output port).  Kernels must be pure functions of their
/// inputs — the runtime may re-execute one after rescheduling.
using Kernel = std::function<common::Expected<std::vector<Value>>(
    const std::vector<Value>& inputs)>;

struct TaskImpl {
  db::TaskPerfRecord perf;
  Kernel kernel;  ///< may be empty for placeholder/synthetic tasks
};

class TaskRegistry {
 public:
  /// Register or replace an implementation.
  void add(TaskImpl impl);

  /// Look up an implementation; synthesizes one for "<lib>.w<mflop>" names.
  [[nodiscard]] common::Expected<TaskImpl> find(
      const std::string& task_name) const;

  /// Just the performance record (what site bring-up seeds databases with).
  [[nodiscard]] common::Expected<db::TaskPerfRecord> perf(
      const std::string& task_name) const;

  /// Copy every registered record into a task-performance database.
  void seed_database(db::TaskPerformanceDb& database) const;

  /// Library names present ("matrix", "signal", ...), sorted.
  [[nodiscard]] std::vector<std::string> libraries() const;
  /// Task names within a library, sorted — the editor's menu content.
  [[nodiscard]] std::vector<std::string> tasks_in_library(
      const std::string& library) const;

  [[nodiscard]] std::size_t size() const noexcept { return impls_.size(); }

  /// Reference speed (MFLOPS) of the "base processor" that base_exec_time
  /// is quoted against (§3's task-performance database convention).
  static constexpr double kBaseProcessorMflops = 100.0;

 private:
  std::unordered_map<std::string, TaskImpl> impls_;
};

/// Register the standard VDCE libraries: "matrix" (algebra; powers the
/// Figure-1 Linear Equation Solver) and "signal" (C3I chain).
void register_standard_libraries(TaskRegistry& registry);

/// Parse a synthetic task name "<lib>.w<mflop>"; returns the computation
/// size in MFLOP or an error if the name is not synthetic.
common::Expected<double> parse_synthetic_mflop(const std::string& task_name);

}  // namespace vdce::tasklib
