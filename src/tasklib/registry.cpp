#include "tasklib/registry.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"
#include "tasklib/image.hpp"
#include "tasklib/matrix.hpp"
#include "tasklib/signal.hpp"

namespace vdce::tasklib {

void TaskRegistry::add(TaskImpl impl) {
  impls_[impl.perf.task_name] = std::move(impl);
}

common::Expected<double> parse_synthetic_mflop(const std::string& task_name) {
  auto dot = task_name.rfind('.');
  if (dot == std::string::npos || dot + 2 >= task_name.size() ||
      task_name[dot + 1] != 'w') {
    return common::Error{common::ErrorCode::kNotFound,
                         "not a synthetic task name: " + task_name};
  }
  auto mflop = common::parse_double(task_name.substr(dot + 2));
  if (!mflop || *mflop <= 0.0) {
    return common::Error{common::ErrorCode::kParseError,
                         "bad synthetic work size in: " + task_name};
  }
  return *mflop;
}

namespace {

TaskImpl make_synthetic_impl(const std::string& task_name, double mflop) {
  TaskImpl impl;
  impl.perf.task_name = task_name;
  impl.perf.computation_mflop = mflop;
  impl.perf.communication_bytes = 1e5;
  impl.perf.required_memory_mb = 8.0;
  impl.perf.base_exec_time = mflop / TaskRegistry::kBaseProcessorMflops;
  impl.perf.parallel_fraction = 0.9;
  // Identity kernel: forwards its first input (or produces an empty Value)
  // so synthetic graphs remain executable end to end.
  impl.kernel = [](const std::vector<Value>& inputs)
      -> common::Expected<std::vector<Value>> {
    std::vector<Value> out;
    out.push_back(inputs.empty() ? Value{} : inputs.front());
    return out;
  };
  return impl;
}

}  // namespace

common::Expected<TaskImpl> TaskRegistry::find(
    const std::string& task_name) const {
  auto it = impls_.find(task_name);
  if (it != impls_.end()) return it->second;
  auto mflop = parse_synthetic_mflop(task_name);
  if (mflop) return make_synthetic_impl(task_name, *mflop);
  return common::Error{common::ErrorCode::kNotFound,
                       "task not registered: " + task_name};
}

common::Expected<db::TaskPerfRecord> TaskRegistry::perf(
    const std::string& task_name) const {
  auto impl = find(task_name);
  if (!impl) return impl.error();
  return impl->perf;
}

void TaskRegistry::seed_database(db::TaskPerformanceDb& database) const {
  for (const auto& [name, impl] : impls_) database.register_task(impl.perf);
}

std::vector<std::string> TaskRegistry::libraries() const {
  std::set<std::string> libs;
  for (const auto& [name, impl] : impls_) {
    auto dot = name.find('.');
    libs.insert(dot == std::string::npos ? name : name.substr(0, dot));
  }
  return {libs.begin(), libs.end()};
}

std::vector<std::string> TaskRegistry::tasks_in_library(
    const std::string& library) const {
  std::vector<std::string> out;
  for (const auto& [name, impl] : impls_) {
    if (common::starts_with(name, library + ".")) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

db::TaskPerfRecord perf_record(std::string name, double mflop, double bytes,
                               double mem_mb, double parallel_fraction) {
  db::TaskPerfRecord rec;
  rec.task_name = std::move(name);
  rec.computation_mflop = mflop;
  rec.communication_bytes = bytes;
  rec.required_memory_mb = mem_mb;
  rec.base_exec_time = mflop / TaskRegistry::kBaseProcessorMflops;
  rec.parallel_fraction = parallel_fraction;
  return rec;
}

common::Error wrong_inputs(const std::string& task, std::size_t want,
                           std::size_t got) {
  return common::Error{common::ErrorCode::kInvalidArgument,
                       task + ": expected " + std::to_string(want) +
                           " inputs, got " + std::to_string(got)};
}

template <typename T>
common::Expected<T> cast_input(const std::string& task,
                               const std::vector<Value>& inputs,
                               std::size_t index) {
  if (index >= inputs.size()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         task + ": missing input " + std::to_string(index)};
  }
  const T* p = std::any_cast<T>(&inputs[index]);
  if (p == nullptr) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         task + ": input " + std::to_string(index) +
                             " has wrong payload type"};
  }
  return *p;
}

}  // namespace

void register_standard_libraries(TaskRegistry& registry) {
  // ---- matrix algebra library ------------------------------------------
  {
    TaskImpl impl;
    impl.perf = perf_record("matrix.lu_decomposition", 2000, 8e5, 16, 0.6);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("matrix.lu_decomposition", 1, in.size());
      auto a = cast_input<Matrix>("matrix.lu_decomposition", in, 0);
      if (!a) return a.error();
      auto lu = lu_decompose(*a);
      if (!lu) return lu.error();
      return std::vector<Value>{Value(std::move(*lu))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("matrix.multiply", 1500, 8e5, 24, 0.95);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) return wrong_inputs("matrix.multiply", 2, in.size());
      auto a = cast_input<Matrix>("matrix.multiply", in, 0);
      auto b = cast_input<Matrix>("matrix.multiply", in, 1);
      if (!a) return a.error();
      if (!b) return b.error();
      auto c = multiply(*a, *b);
      if (!c) return c.error();
      return std::vector<Value>{Value(std::move(*c))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("matrix.matvec", 300, 8e3, 8, 0.8);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) return wrong_inputs("matrix.matvec", 2, in.size());
      auto a = cast_input<Matrix>("matrix.matvec", in, 0);
      auto x = cast_input<Vector>("matrix.matvec", in, 1);
      if (!a) return a.error();
      if (!x) return x.error();
      auto y = multiply(*a, *x);
      if (!y) return y.error();
      return std::vector<Value>{Value(std::move(*y))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("matrix.forward_substitution", 400, 8e3, 8, 0.2);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) {
        return wrong_inputs("matrix.forward_substitution", 2, in.size());
      }
      auto lu = cast_input<LuDecomposition>("matrix.forward_substitution", in, 0);
      auto b = cast_input<Vector>("matrix.forward_substitution", in, 1);
      if (!lu) return lu.error();
      if (!b) return b.error();
      Vector y = forward_substitute(*lu, *b);
      // The LU factors travel with y so the backward stage needs only one
      // dataflow edge from this task (mirrors Fig. 1's pipeline shape).
      return std::vector<Value>{Value(std::make_pair(std::move(*lu), std::move(y)))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("matrix.backward_substitution", 400, 8e3, 8, 0.2);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) {
        return wrong_inputs("matrix.backward_substitution", 1, in.size());
      }
      using LuAndY = std::pair<LuDecomposition, Vector>;
      auto luy = cast_input<LuAndY>("matrix.backward_substitution", in, 0);
      if (!luy) return luy.error();
      Vector x = backward_substitute(luy->first, luy->second);
      return std::vector<Value>{Value(std::move(x))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("matrix.transpose", 100, 8e5, 16, 0.9);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("matrix.transpose", 1, in.size());
      auto a = cast_input<Matrix>("matrix.transpose", in, 0);
      if (!a) return a.error();
      return std::vector<Value>{Value(a->transpose())};
    };
    registry.add(std::move(impl));
  }

  // ---- C3I / signal library --------------------------------------------
  {
    TaskImpl impl;
    impl.perf = perf_record("signal.fft", 800, 5e5, 12, 0.85);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("signal.fft", 1, in.size());
      auto s = cast_input<Signal>("signal.fft", in, 0);
      if (!s) return s.error();
      auto spec = fft(*s);
      if (!spec) return spec.error();
      return std::vector<Value>{Value(std::move(*spec))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("signal.fir_filter", 600, 5e5, 8, 0.9);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) return wrong_inputs("signal.fir_filter", 2, in.size());
      auto s = cast_input<Signal>("signal.fir_filter", in, 0);
      auto taps = cast_input<Signal>("signal.fir_filter", in, 1);
      if (!s) return s.error();
      if (!taps) return taps.error();
      return std::vector<Value>{Value(fir_filter(*s, *taps))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("signal.beamform", 700, 5e5, 16, 0.9);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) return wrong_inputs("signal.beamform", 2, in.size());
      auto chans = cast_input<std::vector<Signal>>("signal.beamform", in, 0);
      auto delays = cast_input<std::vector<int>>("signal.beamform", in, 1);
      if (!chans) return chans.error();
      if (!delays) return delays.error();
      auto out = beamform(*chans, *delays);
      if (!out) return out.error();
      return std::vector<Value>{Value(std::move(*out))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("signal.detect", 200, 1e4, 4, 0.5);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) return wrong_inputs("signal.detect", 2, in.size());
      auto s = cast_input<Signal>("signal.detect", in, 0);
      auto thresh = cast_input<double>("signal.detect", in, 1);
      if (!s) return s.error();
      if (!thresh) return thresh.error();
      return std::vector<Value>{Value(detect(*s, *thresh))};
    };
    registry.add(std::move(impl));
  }
  // ---- image-exploitation library ----------------------------------------
  {
    TaskImpl impl;
    impl.perf = perf_record("image.smooth", 900, 2e6, 24, 0.95);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("image.smooth", 1, in.size());
      auto img = cast_input<Image>("image.smooth", in, 0);
      if (!img) return img.error();
      auto out = convolve(*img, ConvKernel::gaussian(5, 1.0));
      if (!out) return out.error();
      return std::vector<Value>{Value(std::move(*out))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("image.sobel", 1100, 2e6, 24, 0.95);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("image.sobel", 1, in.size());
      auto img = cast_input<Image>("image.sobel", in, 0);
      if (!img) return img.error();
      auto out = sobel_magnitude(*img);
      if (!out) return out.error();
      return std::vector<Value>{Value(std::move(*out))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("image.histogram", 300, 2048, 8, 0.8);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("image.histogram", 1, in.size());
      auto img = cast_input<Image>("image.histogram", in, 0);
      if (!img) return img.error();
      return std::vector<Value>{Value(histogram(*img, 0.0, 1.0, 64))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("image.segment", 500, 2e6, 16, 0.9);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 2) return wrong_inputs("image.segment", 2, in.size());
      auto img = cast_input<Image>("image.segment", in, 0);
      auto level = cast_input<double>("image.segment", in, 1);
      if (!img) return img.error();
      if (!level) return level.error();
      return std::vector<Value>{Value(threshold(*img, *level))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("image.count_targets", 400, 64, 8, 0.4);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) {
        return wrong_inputs("image.count_targets", 1, in.size());
      }
      auto img = cast_input<Image>("image.count_targets", in, 0);
      if (!img) return img.error();
      return std::vector<Value>{Value(count_components(*img))};
    };
    registry.add(std::move(impl));
  }
  {
    TaskImpl impl;
    impl.perf = perf_record("image.downsample", 250, 5e5, 16, 0.9);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("image.downsample", 1, in.size());
      auto img = cast_input<Image>("image.downsample", in, 0);
      if (!img) return img.error();
      auto out = downsample(*img, 2);
      if (!out) return out.error();
      return std::vector<Value>{Value(std::move(*out))};
    };
    registry.add(std::move(impl));
  }

  {
    TaskImpl impl;
    impl.perf = perf_record("signal.energy", 150, 64, 4, 0.7);
    impl.kernel = [](const std::vector<Value>& in)
        -> common::Expected<std::vector<Value>> {
      if (in.size() != 1) return wrong_inputs("signal.energy", 1, in.size());
      auto s = cast_input<Signal>("signal.energy", in, 0);
      if (!s) return s.error();
      return std::vector<Value>{Value(energy(*s))};
    };
    registry.add(std::move(impl));
  }
}

}  // namespace vdce::tasklib
