#include "tasklib/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

namespace vdce::tasklib {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, common::Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix Matrix::random_diag_dominant(std::size_t n, common::Rng& rng) {
  Matrix m = random(n, n, rng);
  // Row-dominance guarantees non-singularity and a well-behaved LU.
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) row_sum += std::fabs(m(i, j));
    m(i, i) = row_sum + 1.0;
  }
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

namespace {

/// Multiply rows [row_begin, row_end) of C = A*B.  Each worker writes a
/// disjoint row range, so no synchronization is needed.
void multiply_rows(const Matrix& a, const Matrix& bt, Matrix& c,
                   std::size_t row_begin, std::size_t row_end) {
  const std::size_t n = a.cols();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = 0; j < bt.rows(); ++j) {
      // bt is B transposed: both operands stream contiguously.
      double acc = 0.0;
      const double* arow = a.data().data() + i * n;
      const double* brow = bt.data().data() + j * n;
      for (std::size_t k = 0; k < n; ++k) acc += arow[k] * brow[k];
      c(i, j) = acc;
    }
  }
}

}  // namespace

common::Expected<Matrix> multiply(const Matrix& a, const Matrix& b,
                                  int threads) {
  if (a.cols() != b.rows()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "multiply: inner dimensions differ (" +
                             std::to_string(a.cols()) + " vs " +
                             std::to_string(b.rows()) + ")"};
  }
  Matrix bt = b.transpose();
  Matrix c(a.rows(), b.cols());

  // Parallelize only when the arithmetic outweighs thread startup.
  const double flops = 2.0 * static_cast<double>(a.rows()) *
                       static_cast<double>(a.cols()) *
                       static_cast<double>(b.cols());
  unsigned want = threads > 0 ? static_cast<unsigned>(threads)
                              : std::thread::hardware_concurrency();
  if (want < 1) want = 1;
  if (flops < 1e7 || want == 1 || a.rows() < 2 * want) {
    multiply_rows(a, bt, c, 0, a.rows());
    return c;
  }

  std::vector<std::thread> workers;
  workers.reserve(want);
  const std::size_t chunk = (a.rows() + want - 1) / want;
  for (unsigned t = 0; t < want; ++t) {
    std::size_t lo = t * chunk;
    std::size_t hi = std::min(a.rows(), lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back(multiply_rows, std::cref(a), std::cref(bt),
                         std::ref(c), lo, hi);
  }
  for (auto& w : workers) w.join();
  return c;
}

common::Expected<Vector> multiply(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "matvec: dimension mismatch"};
  }
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

double LuDecomposition::determinant() const {
  double det = sign;
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

common::Expected<LuDecomposition> lu_decompose(const Matrix& a) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "lu: matrix must be square and non-empty"};
  }
  const std::size_t n = a.rows();
  LuDecomposition result;
  result.lu = a;
  result.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.perm[i] = i;
  Matrix& m = result.lu;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining |entry| in column k to
    // the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(m(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::fabs(m(i, k)) > best) {
        best = std::fabs(m(i, k));
        pivot = i;
      }
    }
    if (best == 0.0) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "lu: singular matrix (zero pivot at column " +
                               std::to_string(k) + ")"};
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(m(k, j), m(pivot, j));
      std::swap(result.perm[k], result.perm[pivot]);
      result.sign = -result.sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      m(i, k) /= m(k, k);
      const double factor = m(i, k);
      for (std::size_t j = k + 1; j < n; ++j) m(i, j) -= factor * m(k, j);
    }
  }
  return result;
}

Vector forward_substitute(const LuDecomposition& lu, const Vector& b) {
  const std::size_t n = lu.lu.rows();
  assert(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[lu.perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu.lu(i, j) * y[j];
    y[i] = acc;  // L has unit diagonal
  }
  return y;
}

Vector backward_substitute(const LuDecomposition& lu, const Vector& y) {
  const std::size_t n = lu.lu.rows();
  assert(y.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu.lu(ii, j) * x[j];
    assert(lu.lu(ii, ii) != 0.0);
    x[ii] = acc / lu.lu(ii, ii);
  }
  return x;
}

common::Expected<Vector> solve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "solve: rhs length != matrix rows"};
  }
  auto lu = lu_decompose(a);
  if (!lu) return lu.error();
  Vector y = forward_substitute(*lu, b);
  return backward_substitute(*lu, y);
}

double residual_inf(const Matrix& a, const Vector& x, const Vector& b) {
  auto ax = multiply(a, x);
  assert(ax.has_value());
  double worst = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    worst = std::max(worst, std::fabs((*ax)[i] - b[i]));
  }
  return worst;
}

}  // namespace vdce::tasklib
