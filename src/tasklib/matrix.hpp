// Matrix algebra library — the paper's "matrix algebra library" task menu
// and the kernels behind the Figure-1 Linear Equation Solver application
// (LU-Decomposition, Matrix-Multiplication, triangular solves).
//
// Kernels are real: the linear_equation_solver example verifies A·x = b to
// machine precision.  Multiply and LU parallelize by row-partitioning
// across std::thread workers (explicit decomposition, no shared mutable
// state between workers — the MPI/OpenMP-guide idiom transplanted to
// threads), with a serial path below a size threshold.
#pragma once

#include <cstddef>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"

namespace vdce::tasklib {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// Approximate in-memory size, used to charge data-manager transfers.
  [[nodiscard]] double size_bytes() const noexcept {
    return static_cast<double>(data_.size() * sizeof(double));
  }

  static Matrix identity(std::size_t n);
  /// Uniformly random entries in [-1, 1]; diagonally dominated variant for
  /// well-conditioned solver tests.
  static Matrix random(std::size_t rows, std::size_t cols, common::Rng& rng);
  static Matrix random_diag_dominant(std::size_t n, common::Rng& rng);

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

using Vector = std::vector<double>;

/// C = A * B.  Parallelizes over rows of A when the work is large enough;
/// `threads` <= 0 picks the hardware concurrency.
common::Expected<Matrix> multiply(const Matrix& a, const Matrix& b,
                                  int threads = 0);

/// y = A * x.
common::Expected<Vector> multiply(const Matrix& a, const Vector& x);

/// Result of LU decomposition with partial pivoting: PA = LU, with L unit
/// lower-triangular and U upper-triangular packed into one matrix.
struct LuDecomposition {
  Matrix lu;                      ///< L below diagonal (implicit 1s), U on/above
  std::vector<std::size_t> perm;  ///< row permutation: row i of PA is row perm[i] of A
  int sign = 1;                   ///< permutation sign (for determinants)

  [[nodiscard]] double determinant() const;
};

/// Doolittle LU with partial pivoting.  Fails on a numerically singular
/// matrix (zero pivot after pivoting).
common::Expected<LuDecomposition> lu_decompose(const Matrix& a);

/// Solve L y = P b (unit lower-triangular forward substitution).
Vector forward_substitute(const LuDecomposition& lu, const Vector& b);

/// Solve U x = y (backward substitution).  Pre: U is the upper factor of a
/// successful decomposition (non-zero diagonal).
Vector backward_substitute(const LuDecomposition& lu, const Vector& y);

/// Convenience: solve A x = b via LU.
common::Expected<Vector> solve(const Matrix& a, const Vector& b);

/// ||A x - b||_inf, the solver examples' verification metric.
double residual_inf(const Matrix& a, const Vector& x, const Vector& b);

}  // namespace vdce::tasklib
