#include "tasklib/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace vdce::tasklib {

Image Image::synthetic_scene(std::size_t height, std::size_t width,
                             std::size_t spots, common::Rng& rng) {
  Image img(height, width);
  for (std::size_t r = 0; r < height; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      img.at(r, c) = 0.2 * static_cast<double>(r + c) /
                         static_cast<double>(height + width) +
                     rng.uniform(0.0, 0.05);
    }
  }
  for (std::size_t s = 0; s < spots; ++s) {
    std::size_t cr = 2 + rng.pick_index(height - 6);
    std::size_t cc = 2 + rng.pick_index(width - 6);
    for (std::size_t dr = 0; dr < 3; ++dr) {
      for (std::size_t dc = 0; dc < 3; ++dc) {
        img.at(cr + dr, cc + dc) = 1.0;
      }
    }
  }
  return img;
}

double Image::max_abs_diff(const Image& other) const {
  assert(height_ == other.height_ && width_ == other.width_);
  double worst = 0.0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    worst = std::max(worst, std::fabs(pixels_[i] - other.pixels_[i]));
  }
  return worst;
}

ConvKernel ConvKernel::box(std::size_t side) {
  assert(side % 2 == 1);
  ConvKernel k;
  k.side = side;
  k.weights.assign(side * side,
                   1.0 / static_cast<double>(side * side));
  return k;
}

ConvKernel ConvKernel::gaussian(std::size_t side, double sigma) {
  assert(side % 2 == 1);
  assert(sigma > 0.0);
  ConvKernel k;
  k.side = side;
  k.weights.resize(side * side);
  const auto mid = static_cast<double>(side / 2);
  double sum = 0.0;
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double dr = static_cast<double>(r) - mid;
      double dc = static_cast<double>(c) - mid;
      double w = std::exp(-(dr * dr + dc * dc) / (2.0 * sigma * sigma));
      k.weights[r * side + c] = w;
      sum += w;
    }
  }
  for (double& w : k.weights) w /= sum;
  return k;
}

ConvKernel ConvKernel::sobel_x() {
  return ConvKernel{3, {-1, 0, 1, -2, 0, 2, -1, 0, 1}};
}

ConvKernel ConvKernel::sobel_y() {
  return ConvKernel{3, {-1, -2, -1, 0, 0, 0, 1, 2, 1}};
}

common::Expected<Image> convolve(const Image& image, const ConvKernel& kernel) {
  if (image.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "convolve: empty image"};
  }
  if (kernel.side % 2 == 0 ||
      kernel.weights.size() != kernel.side * kernel.side) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "convolve: malformed kernel"};
  }
  const auto half = static_cast<std::ptrdiff_t>(kernel.side / 2);
  Image out(image.height(), image.width());
  const auto h = static_cast<std::ptrdiff_t>(image.height());
  const auto w = static_cast<std::ptrdiff_t>(image.width());
  for (std::ptrdiff_t r = 0; r < h; ++r) {
    for (std::ptrdiff_t c = 0; c < w; ++c) {
      double acc = 0.0;
      for (std::ptrdiff_t kr = -half; kr <= half; ++kr) {
        for (std::ptrdiff_t kc = -half; kc <= half; ++kc) {
          // Clamp-to-edge border handling.
          std::ptrdiff_t rr = std::clamp(r + kr, std::ptrdiff_t{0}, h - 1);
          std::ptrdiff_t cc = std::clamp(c + kc, std::ptrdiff_t{0}, w - 1);
          acc += image.at(static_cast<std::size_t>(rr),
                          static_cast<std::size_t>(cc)) *
                 kernel.at(static_cast<std::size_t>(kr + half),
                           static_cast<std::size_t>(kc + half));
        }
      }
      out.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = acc;
    }
  }
  return out;
}

common::Expected<Image> sobel_magnitude(const Image& image) {
  auto gx = convolve(image, ConvKernel::sobel_x());
  if (!gx) return gx.error();
  auto gy = convolve(image, ConvKernel::sobel_y());
  if (!gy) return gy.error();
  Image out(image.height(), image.width());
  for (std::size_t i = 0; i < out.pixels().size(); ++i) {
    out.pixels()[i] = std::hypot(gx->pixels()[i], gy->pixels()[i]);
  }
  return out;
}

std::vector<std::size_t> histogram(const Image& image, double lo, double hi,
                                   std::size_t bins) {
  assert(bins > 0 && hi > lo);
  std::vector<std::size_t> counts(bins, 0);
  for (double v : image.pixels()) {
    auto bin = static_cast<std::ptrdiff_t>((v - lo) / (hi - lo) *
                                           static_cast<double>(bins));
    bin = std::clamp(bin, std::ptrdiff_t{0},
                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

Image threshold(const Image& image, double level) {
  Image out(image.height(), image.width());
  for (std::size_t i = 0; i < image.pixels().size(); ++i) {
    out.pixels()[i] = image.pixels()[i] > level ? 1.0 : 0.0;
  }
  return out;
}

std::size_t count_components(const Image& image) {
  const std::size_t h = image.height();
  const std::size_t w = image.width();
  std::vector<bool> visited(h * w, false);
  std::size_t components = 0;
  for (std::size_t start = 0; start < h * w; ++start) {
    if (visited[start] || image.pixels()[start] == 0.0) continue;
    ++components;
    // BFS flood fill over the 4-neighbourhood.
    std::deque<std::size_t> frontier{start};
    visited[start] = true;
    while (!frontier.empty()) {
      std::size_t idx = frontier.front();
      frontier.pop_front();
      std::size_t r = idx / w;
      std::size_t c = idx % w;
      auto visit = [&](std::size_t rr, std::size_t cc) {
        std::size_t j = rr * w + cc;
        if (!visited[j] && image.pixels()[j] != 0.0) {
          visited[j] = true;
          frontier.push_back(j);
        }
      };
      if (r > 0) visit(r - 1, c);
      if (r + 1 < h) visit(r + 1, c);
      if (c > 0) visit(r, c - 1);
      if (c + 1 < w) visit(r, c + 1);
    }
  }
  return components;
}

common::Expected<Image> downsample(const Image& image, std::size_t factor) {
  if (factor == 0 || image.height() < factor || image.width() < factor) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "downsample: bad factor"};
  }
  Image out(image.height() / factor, image.width() / factor);
  for (std::size_t r = 0; r < out.height(); ++r) {
    for (std::size_t c = 0; c < out.width(); ++c) {
      double acc = 0.0;
      for (std::size_t dr = 0; dr < factor; ++dr) {
        for (std::size_t dc = 0; dc < factor; ++dc) {
          acc += image.at(r * factor + dr, c * factor + dc);
        }
      }
      out.at(r, c) = acc / static_cast<double>(factor * factor);
    }
  }
  return out;
}

}  // namespace vdce::tasklib
