// C3I (command-and-control) signal-processing library.
//
// The paper's Application Editor offers "menu-driven task libraries ...
// such as the matrix algebra library, C3I (command and control
// applications) library."  This is the C3I side: a sensor-processing chain
// of the kind those applications are built from — spectral analysis (FFT),
// FIR filtering, multi-sensor beamforming, and threshold detection — used
// by the c3i_pipeline example and the end-to-end benches.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"

namespace vdce::tasklib {

using Signal = std::vector<double>;
using Spectrum = std::vector<std::complex<double>>;

/// In-place iterative radix-2 Cooley–Tukey FFT.  Input length must be a
/// power of two.
common::Status fft_inplace(Spectrum& data, bool inverse = false);

/// FFT of a real signal (zero-padded to the next power of two).
common::Expected<Spectrum> fft(const Signal& signal);

/// Inverse FFT, returning the real parts (imaginary residue is discarded;
/// callers verifying round-trips check it separately via fft_inplace).
common::Expected<Signal> ifft_real(const Spectrum& spectrum);

/// Direct-form FIR filter: y[n] = sum_k taps[k] * x[n-k].
Signal fir_filter(const Signal& signal, const Signal& taps);

/// Design a low-pass windowed-sinc FIR, cutoff in (0, 0.5) cycles/sample.
common::Expected<Signal> design_lowpass(double cutoff, std::size_t taps);

/// Delay-and-sum beamformer: combine per-sensor signals with integer sample
/// delays.  All channels must have equal length; output length matches.
common::Expected<Signal> beamform(const std::vector<Signal>& channels,
                                  const std::vector<int>& delays);

/// Threshold detector: indices where |signal| exceeds `threshold`.
std::vector<std::size_t> detect(const Signal& signal, double threshold);

/// Energy (sum of squares) — the fusion stage of the C3I example.
double energy(const Signal& signal);

/// Synthetic sensor input: mixture of sinusoids plus uniform noise.
Signal make_test_signal(std::size_t samples,
                        const std::vector<double>& freqs_cycles_per_sample,
                        double noise_amplitude, common::Rng& rng);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace vdce::tasklib
