// Image-exploitation library.
//
// The paper's C3I application domain is command-and-control: alongside the
// 1-D sensor chain (signal.hpp), those systems process imagery —
// reconnaissance frames filtered, edge-detected, and segmented before
// fusion.  This library supplies those kernels: 2-D convolution, Gaussian
// and box smoothing, Sobel gradient magnitude, intensity histograms,
// thresholding, and decimation.  All kernels are real (tests verify them
// against hand-computed results) and registered as the "image" task menu.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"

namespace vdce::tasklib {

/// Grayscale image, row-major, intensities as doubles (typically [0, 1]).
class Image {
 public:
  Image() = default;
  Image(std::size_t height, std::size_t width, double fill = 0.0)
      : height_(height), width_(width), pixels_(height * width, fill) {}

  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  double& at(std::size_t row, std::size_t col) {
    return pixels_[row * width_ + col];
  }
  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return pixels_[row * width_ + col];
  }

  [[nodiscard]] const std::vector<double>& pixels() const noexcept {
    return pixels_;
  }
  [[nodiscard]] std::vector<double>& pixels() noexcept { return pixels_; }
  [[nodiscard]] double size_bytes() const noexcept {
    return static_cast<double>(pixels_.size() * sizeof(double));
  }

  /// Test image: smooth gradient plus `spots` bright square targets.
  static Image synthetic_scene(std::size_t height, std::size_t width,
                               std::size_t spots, common::Rng& rng);

  [[nodiscard]] double max_abs_diff(const Image& other) const;

 private:
  std::size_t height_ = 0;
  std::size_t width_ = 0;
  std::vector<double> pixels_;
};

/// A small square convolution kernel (odd side length).
struct ConvKernel {
  std::size_t side = 3;
  std::vector<double> weights;  ///< side*side, row-major

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return weights[r * side + c];
  }

  static ConvKernel box(std::size_t side);
  /// Separable Gaussian sampled at integer offsets, normalized to sum 1.
  static ConvKernel gaussian(std::size_t side, double sigma);
  static ConvKernel sobel_x();
  static ConvKernel sobel_y();
};

/// 2-D convolution with clamp-to-edge borders.
common::Expected<Image> convolve(const Image& image, const ConvKernel& kernel);

/// Sobel gradient magnitude: sqrt(Gx^2 + Gy^2).
common::Expected<Image> sobel_magnitude(const Image& image);

/// Intensity histogram over [lo, hi) with `bins` buckets (values clamp to
/// the end bins).
std::vector<std::size_t> histogram(const Image& image, double lo, double hi,
                                   std::size_t bins);

/// Binary threshold: pixel > threshold -> 1.0 else 0.0.
Image threshold(const Image& image, double level);

/// Count 4-connected components of non-zero pixels (target counting after
/// thresholding).
std::size_t count_components(const Image& image);

/// Decimate by an integer factor (average pooling).
common::Expected<Image> downsample(const Image& image, std::size_t factor);

}  // namespace vdce::tasklib
