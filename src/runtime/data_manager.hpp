// Data Manager (§4.2): "a socket-based, point-to-point communication system
// for inter-task communications."
//
// One per host.  On an execution request it plays the paper's protocol:
// activate communication proxies (dm.setup to each remote peer host), wait
// for acknowledgments (dm.setup_ack), and report channel readiness to the
// Application Controller, which informs the origin Site Manager; the
// startup signal (sm.start) then releases execution.
//
// Execution model: each host runs its local tasks one at a time per
// application (separate applications interleave freely).  A task starts
// when all its expected inputs have arrived — staged file inputs (dm.input,
// sent by the origin's I/O service) and dataflow inputs (dm.data from
// parent tasks).  Task durations come from the ground-truth model over live
// topology state; while a task runs, one CPU's worth of load is added to
// each of its hosts, which is exactly what the monitoring pipeline and the
// Application Controller's overload check observe.
//
// Real payloads: when the plan carries kernels, inputs/outputs are actual
// values (matrices, signals) and the kernel runs at completion time, so
// examples compute real answers while timing stays simulated.
//
// Recovery support: produced outputs are cached per application so a
// dm.resend (issued by the coordinator when a consumer task moves to a new
// host) can re-deliver an edge; for not-yet-finished producers the resend
// installs a redirect consulted at completion time.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "net/fabric.hpp"
#include "runtime/core.hpp"
#include "runtime/protocol.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

class DataManager {
 public:
  DataManager(RuntimeCore& core, common::HostId host)
      : core_(core), host_(host) {}

  /// Activate for an application (Application Controller, on gm.exec).
  /// `on_channels_ready` fires once every dm.setup has been acknowledged
  /// (immediately if no remote channels are needed).  Re-activation with a
  /// newer plan merges additional local tasks (reschedule path) without a
  /// second handshake.  A valid `pin` marks that task unkillable here.
  void activate(const PlanPtr& plan, std::function<void()> on_channels_ready,
                afg::TaskId pin = {});

  /// Startup signal: begin executing ready local tasks.
  void start_app(common::AppId app);

  void suspend(common::AppId app);
  void resume(common::AppId app);

  /// Terminate every running task of every application on this host (the
  /// Application Controller's overload action).  Returns what was aborted
  /// together with each plan's origin for the reschedule request.
  struct Aborted {
    common::AppId app;
    afg::TaskId task;
    common::HostId origin;
  };
  std::vector<Aborted> abort_running();

  /// Drop a local task that has been moved elsewhere by the coordinator.
  void remove_task(common::AppId app, afg::TaskId task);

  /// Handle dm.* traffic.
  void handle(const net::Message& message);

  [[nodiscard]] common::HostId host() const noexcept { return host_; }

 private:
  struct LocalTask {
    afg::TaskId id;
    std::vector<bool> port_filled;
    std::vector<tasklib::Value> inputs;
    int pending = 0;  ///< expected-but-unfilled input ports
    bool queued = false;
    bool running = false;
    bool done = false;
    /// Quantum-execution state: work left, and this run's noise multiplier.
    double remaining_mflop = 0.0;
    double noise_factor = 1.0;
  };

  /// Key for an out-edge redirect: (from task, from port, to task).
  struct EdgeKey {
    std::uint32_t from;
    int from_port;
    std::uint32_t to;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& k) const {
      return (static_cast<std::size_t>(k.from) << 24) ^
             (static_cast<std::size_t>(k.to) << 4) ^
             static_cast<std::size_t>(k.from_port);
    }
  };

  struct AppState {
    PlanPtr plan;
    std::unordered_map<std::uint32_t, LocalTask> tasks;
    std::deque<std::uint32_t> queue;
    bool started = false;
    bool suspended = false;
    bool busy = false;
    std::uint32_t running_task = 0;
    common::SimTime run_started = 0;
    sim::EventHandle completion;
    /// Channel setup in flight: peer host -> (channel id, resend count).
    /// Unacknowledged setups are resent with exponential backoff and
    /// eventually abandoned, so a partitioned peer cannot wedge readiness.
    struct PendingSetup {
      common::ChannelId channel;
      int resends = 0;
    };
    std::map<common::HostId, PendingSetup> pending_setups;
    bool ready_fired = false;
    std::function<void()> on_ready;
    /// Completion notices already sent, kept for at-least-once re-delivery
    /// when the coordinator re-sends sm.start (its copy may have been lost;
    /// the coordinator dedupes on task id).
    std::vector<TaskDone> done_log;
    /// Cached outputs of completed local tasks (for resends).
    std::unordered_map<std::uint32_t, std::vector<tasklib::Value>> outputs;
    std::unordered_map<EdgeKey, common::HostId, EdgeKeyHash> redirects;
    /// Tasks the overload policy may no longer terminate (attempt cap).
    std::unordered_set<std::uint32_t> unkillable;
  };

  void merge_local_tasks(AppState& state);
  void setup_channels(AppState& state);
  void send_setup(common::AppId app, common::HostId peer);
  void fire_ready(AppState& state);
  void maybe_start(common::AppId app);
  /// Run one execution quantum of the current task; re-evaluates the live
  /// progress rate at each boundary and finishes when work is exhausted.
  void run_quantum(common::AppId app, std::uint32_t task_value);
  void finish_task(common::AppId app, std::uint32_t task_value);
  void deliver(AppState& state, afg::TaskId task, int port,
               const tasklib::Value& value, common::AppId app);
  void send_edge(AppState& state, const afg::Edge& edge,
                 const tasklib::Value& value);
  void send_task_done(AppState& state, afg::TaskId task,
                      common::SimDuration elapsed, bool failed,
                      const std::string& error, tasklib::Value exit_output);

  RuntimeCore& core_;
  common::HostId host_;
  std::unordered_map<std::uint32_t, AppState> apps_;
};

}  // namespace vdce::runtime
