#include "runtime/host_agent.hpp"

#include <string_view>

#include "runtime/protocol.hpp"

namespace vdce::runtime {

HostAgent::HostAgent(RuntimeCore& core, common::HostId host)
    : core_(core),
      host_(host),
      monitor_(core, host, core.topology().group(core.topology().host(host).group).leader),
      data_manager_(core, host),
      app_controller_(core, host, data_manager_) {
  const net::Host& h = core.topology().host(host);
  const net::Group& group = core.topology().group(h.group);
  const net::Site& site = core.topology().site(h.site);
  if (group.leader == host) {
    group_manager_ =
        std::make_unique<GroupManager>(core, group.id, host, site.server);
  }
  if (site.server == host) {
    site_manager_ = std::make_unique<SiteManager>(core, site.id, host);
  }
}

void HostAgent::start() {
  if (started_) return;
  started_ = true;
  core_.fabric().bind(host_, [this](const net::Message& m) { dispatch(m); });
  monitor_.start();
  app_controller_.start();
  if (group_manager_) group_manager_->start();
  if (site_manager_) site_manager_->start();
}

void HostAgent::stop() {
  if (!started_) return;
  started_ = false;
  monitor_.stop();
  app_controller_.stop();
  if (group_manager_) group_manager_->stop();
  if (site_manager_) site_manager_->stop();
  core_.fabric().unbind(host_);
}

void HostAgent::dispatch(const net::Message& message) {
  for (const Extension& extension : extensions_) {
    if (extension(message)) return;
  }
  const std::string_view type = message.type;

  if (type == msg::kGmEcho || type == msg::kSmEcho) {
    monitor_.handle(message);
    return;
  }
  if (type == msg::kDmSetup || type == msg::kDmSetupAck ||
      type == msg::kDmData || type == msg::kDmInput ||
      type == msg::kDmResend) {
    data_manager_.handle(message);
    return;
  }
  if (type == msg::kGmExec || type == msg::kSmStart ||
      type == msg::kSmSuspend || type == msg::kSmResume) {
    app_controller_.handle(message);
    return;
  }
  if (group_manager_ &&
      (type == msg::kMonReport || type == msg::kGmEchoReply ||
       type == msg::kSmRatGm)) {
    group_manager_->handle(message);
    return;
  }
  if (site_manager_) site_manager_->handle(message);
}

}  // namespace vdce::runtime
