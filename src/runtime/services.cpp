#include "runtime/services.hpp"

#include <algorithm>
#include <cmath>

namespace vdce::runtime {

void ObjectStore::put(const std::string& path, tasklib::Value value,
                      double size_bytes) {
  objects_[path] = StoredObject{std::move(value), size_bytes};
}

common::Expected<StoredObject> ObjectStore::get(const std::string& path) const {
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "no stored object at " + path};
  }
  return it->second;
}

void VisualizationService::start(common::SimDuration period) {
  timer_ = core_.engine().every(period, [this] {
    Sample s;
    s.time = core_.now();
    s.loads.reserve(core_.topology().host_count());
    for (const net::Host& h : core_.topology().hosts()) {
      s.loads.push_back(h.state.cpu_load);
    }
    samples_.push_back(std::move(s));
  });
}

void VisualizationService::stop() { timer_.cancel(); }

std::string VisualizationService::render_workload(std::size_t width) const {
  if (samples_.empty()) return "(no workload samples)\n";
  const std::size_t hosts = samples_.front().loads.size();
  double peak = 0.0;
  for (const Sample& s : samples_) {
    for (double l : s.loads) peak = std::max(peak, l);
  }
  peak = std::max(peak, 1.0);

  // One row per host; columns down-sample the time series to `width`.
  const char* shades = " .:-=+*#%@";
  std::string out = "Workload (rows: hosts, columns: time, scale 0.." +
                    common::format_double(peak, 1) + " load)\n";
  for (std::size_t h = 0; h < hosts; ++h) {
    std::string row;
    for (std::size_t c = 0; c < width; ++c) {
      std::size_t idx = c * samples_.size() / width;
      double level = samples_[idx].loads[h] / peak;
      auto shade = static_cast<std::size_t>(std::round(level * 9.0));
      row += shades[std::min<std::size_t>(shade, 9)];
    }
    out += "  host " + std::to_string(h) + " |" + row + "|\n";
  }
  return out;
}

}  // namespace vdce::runtime
