#include "runtime/site_manager.hpp"

#include <algorithm>
#include <any>
#include <cassert>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "econ/econ.hpp"
#include "sched/host_selection.hpp"
#include "sched/strategy.hpp"

namespace vdce::runtime {

namespace {

/// Consecutive no-progress stall recoveries (resends / RAT re-multicasts)
/// before the coordinator stops repeating them until something completes.
constexpr int kMaxQuietStalls = 5;

}  // namespace

void SiteManager::start() {
  if (started_) return;
  started_ = true;
  progress_timer_ = core_.engine().every(core_.options().progress_period,
                                         [this] { progress_sweep(); });
  leader_echo_timer_ = core_.engine().every(
      core_.options().echo_period, [this] { leader_echo_tick(); },
      core_.options().echo_period * 0.75);
}

void SiteManager::stop() {
  progress_timer_.cancel();
  leader_echo_timer_.cancel();
}

void SiteManager::leader_echo_tick() {
  // Close the previous round: a leader that stayed silent is down, and with
  // it the monitoring of its whole group — mark it and recover.
  std::vector<common::HostId> leaders;
  for (const net::Group& g : core_.topology().groups_in_site(site_)) {
    if (g.leader != server_) leaders.push_back(g.leader);
  }
  if (leader_echo_outstanding_) {
    for (common::HostId leader : leaders) {
      if (leader_echo_replied_.contains(leader) ||
          leaders_reported_down_.contains(leader)) {
        continue;
      }
      leaders_reported_down_.insert(leader);
      VDCE_LOG(kInfo, "site-mgr", core_.now())
          << "group leader " << core_.topology().host(leader).spec.name
          << " failed echo round " << leader_echo_seq_;
      // Reuse the gm.host_down path: mark down, broadcast, recover apps.
      net::Message synthetic{server_, server_, msg::kGmHostDown, 0,
                             std::any(HostDownNotice{leader})};
      on_gm_host_down(synthetic);
    }
  }
  ++leader_echo_seq_;
  leader_echo_replied_.clear();
  leader_echo_outstanding_ = true;
  for (common::HostId leader : leaders) {
    (void)core_.fabric().send(net::Message{
        server_, leader, msg::kSmEcho, wire::kEcho,
        std::any(EchoPacket{server_, leader_echo_seq_})});
  }
}

void SiteManager::on_sm_echo_reply(const net::Message& message) {
  const auto& echo = std::any_cast<const EchoPacket&>(message.payload);
  if (echo.seq != leader_echo_seq_) return;
  leader_echo_replied_.insert(message.src);
  leaders_reported_down_.erase(message.src);
}

sched::SchedulerContext SiteManager::make_context(
    common::AppId scheduling_for) const {
  sched::SchedulerContext ctx;
  ctx.topology = &core_.topology();
  for (db::SiteRepository* repo : core_.repos()) ctx.repos.push_back(repo);
  ctx.predictor = &core_.predictor();
  ctx.local_site = site_;
  ctx.k_nearest = core_.options().k_nearest;
  ctx.obs = core_.obs();
  ctx.now = core_.now();
  ctx.reservations = &core_.reservations();
  ctx.reserving_app = scheduling_for;
  if (!core_.options().legacy_instant_reservations) {
    ctx.windows = &core_.reservations();
    ctx.held_booking = core_.reservations().booking_of(scheduling_for);
  }
  if (!core_.options().legacy_no_economy) {
    ctx.prices = &core_.options().prices;
  }
  return ctx;
}

void SiteManager::handle(const net::Message& message) {
  if (message.type == msg::kGmReport) {
    on_gm_report(message);
  } else if (message.type == msg::kGmHostDown) {
    on_gm_host_down(message);
  } else if (message.type == msg::kSmHostDown) {
    on_sm_host_down(message);
  } else if (message.type == msg::kSmAfg) {
    on_sm_afg(message);
  } else if (message.type == msg::kSmBids) {
    on_sm_bids(message);
  } else if (message.type == msg::kSmRat) {
    on_sm_rat(message);
  } else if (message.type == msg::kAcReady) {
    on_ac_ready(message);
  } else if (message.type == msg::kAcTaskDone) {
    on_ac_task_done(message);
  } else if (message.type == msg::kAcOverload) {
    on_ac_overload(message);
  } else if (message.type == msg::kSmEchoReply) {
    on_sm_echo_reply(message);
  } else if (message.type == msg::kDmOutput) {
    const auto& output = std::any_cast<const OutputFile&>(message.payload);
    if (output_sink_) {
      output_sink_(output.path, output.value, output.size_bytes);
    }
  }
}

// ---- repository maintenance -------------------------------------------------

void SiteManager::on_gm_report(const net::Message& message) {
  const auto& report = std::any_cast<const GmReport&>(message.payload);
  for (const MonReport& r : report.changed) {
    (void)core_.repo(site_).resources().record_workload(r.host, r.sample);
    // A report from a host previously marked down means it recovered.
    auto rec = core_.repo(site_).resources().find(r.host);
    if (rec && !rec->up) {
      (void)core_.repo(site_).resources().set_host_up(r.host, true);
    }
  }
}

void SiteManager::on_gm_host_down(const net::Message& message) {
  const auto& notice = std::any_cast<const HostDownNotice&>(message.payload);
  VDCE_LOG(kInfo, "site-mgr", core_.now())
      << "site " << site_.value() << " marks host " << notice.host.value()
      << " down";
  core_.flight(obs::FlightCode::kHostDown, notice.host.value());
  if (core_.metering()) core_.meters().counter("recovery.hosts_marked_down").add();
  core_.health_event(obs::health::kRecoveryActions,
                     static_cast<std::int64_t>(notice.host.value()),
                     static_cast<std::int64_t>(site_.value()));
  if (core_.tracing()) {
    core_.trace_sink().instant("recovery", "recovery.host_down", core_.now(),
                               obs::kControlTrack,
                               {obs::arg("host", notice.host.value()),
                                obs::arg("site", site_.value())});
  }
  (void)core_.repo(site_).resources().set_host_up(notice.host, false);

  // Advance reservations (docs/RESERVATIONS.md): a crash inside (or ahead
  // of) a committed window re-places only the victim window — the lowest-id
  // up machine that keeps the window conflict-free substitutes for the dead
  // one, and the displacement is surfaced as a typed health alert.
  if (!core_.options().legacy_instant_reservations &&
      core_.reservations().has_windows()) {
    std::vector<common::HostId> candidates;
    for (const net::Host& h : core_.topology().hosts()) {
      if (h.id != notice.host && core_.topology().host_up(h.id)) {
        candidates.push_back(h.id);
      }
    }
    for (std::uint64_t booking : core_.reservations().displace_host(
             notice.host, core_.now(), candidates)) {
      core_.health_event(obs::health::kReservationDisplaced,
                         static_cast<std::int64_t>(notice.host.value()),
                         static_cast<std::int64_t>(site_.value()));
      if (core_.metering()) {
        core_.meters().counter("reservation.windows_displaced").add();
      }
      if (core_.tracing()) {
        core_.trace_sink().instant("reservation", "reservation.displace",
                                   core_.now(), obs::kControlTrack,
                                   {obs::arg("booking", booking),
                                    obs::arg("from", notice.host.value()),
                                    obs::arg("site", site_.value())});
      }
    }
  }

  // Inter-site coordination: tell the other Site Managers.
  for (const net::Site& s : core_.topology().sites()) {
    if (s.id == site_) continue;
    (void)core_.fabric().send(net::Message{server_, s.server, msg::kSmHostDown,
                                           wire::kSmall,
                                           std::any(HostDownNotice{notice.host})});
  }
  // Recover any of our own coordinated applications immediately.
  net::Message forwarded = message;
  on_sm_host_down(forwarded);
}

void SiteManager::on_sm_host_down(const net::Message& message) {
  const auto& notice = std::any_cast<const HostDownNotice&>(message.payload);
  for (auto& [app_value, app] : apps_) {
    if (app.finished) continue;
    // Re-place every unfinished task that touches the failed host; cascade
    // handles lost intermediate outputs.
    std::vector<afg::TaskId> hit;
    for (const auto& [task_value, assignment] : app.current) {
      if (app.done.contains(task_value)) continue;
      for (common::HostId h : assignment.hosts) {
        if (h == notice.host) {
          hit.push_back(assignment.task);
          break;
        }
      }
    }
    for (afg::TaskId t : hit) {
      ++app.failures_survived;
      reschedule_task(app, t, notice.host, "host_down");
      if (app.finished) break;
    }
    if (!app.finished && !app.started) maybe_launch(app);
  }
}

// ---- distributed scheduling (Fig. 2 over the fabric) ------------------------

void SiteManager::schedule_application(common::AppId app,
                                       std::shared_ptr<const afg::Afg> graph,
                                       sched::SchedulingPolicy options,
                                       ScheduleCallback callback) {
  auto ctx = make_context(app);
  PendingSchedule pending;
  pending.graph = graph;
  pending.options = options;
  pending.sites = sched::candidate_site_set(ctx, options);
  pending.callback = std::move(callback);
  pending.started = core_.now();
  if (core_.metering()) core_.meters().counter("sched.requests").add();

  // Local host selection runs in place (Fig. 2 step 4, local half).
  auto local = sched::HostSelectionAlgorithm::run(*graph, site_,
                                                  core_.repo(site_),
                                                  core_.predictor());
  if (!local) {
    auto cb = std::move(pending.callback);
    core_.engine().schedule(0.0, [cb, err = local.error()] { cb(err); });
    return;
  }
  if (core_.tracing()) {
    core_.trace_sink().instant(
        "sched", "sched.host_selection", core_.now(), server_.value(),
        {obs::arg("site", site_.value()),
         obs::arg("bids", std::uint64_t{local->bids.size()})},
        obs::Causal{.app = app.value()});
  }
  pending.outputs.emplace(site_, std::move(*local));

  const auto sites = pending.sites;
  pending_.emplace(app.value(), std::move(pending));

  // Multicast the AFG to the remote candidate sites (Fig. 2 step 3).
  bool any_remote = false;
  for (common::SiteId s : sites) {
    if (s == site_) continue;
    any_remote = true;
    (void)core_.fabric().send(net::Message{
        server_, core_.topology().site(s).server, msg::kSmAfg,
        wire::afg(*graph), std::any(AfgMulticast{app, server_, graph})});
  }
  if (!any_remote) {
    finish_schedule(app.value());
    return;
  }
  // Bid deadline: an unreachable remote site (dead server, partitioned
  // link) must not stall the user; assign with whatever arrived.
  core_.engine().schedule(core_.options().bid_timeout,
                          [this, app_value = app.value()] {
                            if (pending_.contains(app_value)) {
                              VDCE_LOG(kInfo, "site-mgr", core_.now())
                                  << "bid deadline reached for app "
                                  << app_value << "; assigning with partial "
                                  << "host-selection outputs";
                              finish_schedule(app_value);
                            }
                          });
}

void SiteManager::on_sm_afg(const net::Message& message) {
  const auto& request = std::any_cast<const AfgMulticast&>(message.payload);
  auto output = sched::HostSelectionAlgorithm::run(
      *request.graph, site_, core_.repo(site_), core_.predictor());
  if (!output) return;  // cannot bid; origin proceeds without this site
  if (core_.tracing()) {
    core_.trace_sink().instant(
        "sched", "sched.host_selection", core_.now(), server_.value(),
        {obs::arg("site", site_.value()),
         obs::arg("bids", std::uint64_t{output->bids.size()})},
        obs::Causal{.app = request.app.value()});
  }
  double size = wire::bids(*output);
  (void)core_.fabric().send(net::Message{
      server_, request.reply_to, msg::kSmBids, size,
      std::any(BidsReply{request.app, std::move(*output)})});
}

void SiteManager::on_sm_bids(const net::Message& message) {
  const auto& reply = std::any_cast<const BidsReply&>(message.payload);
  auto it = pending_.find(reply.app.value());
  if (it == pending_.end()) return;
  it->second.outputs.emplace(reply.output.site, reply.output);
  if (it->second.outputs.size() == it->second.sites.size()) {
    finish_schedule(reply.app.value());
  }
}

void SiteManager::finish_schedule(std::uint32_t app_value) {
  auto it = pending_.find(app_value);
  assert(it != pending_.end());
  PendingSchedule pending = std::move(it->second);
  pending_.erase(it);

  std::vector<sched::HostSelectionOutput> outputs;
  for (common::SiteId s : pending.sites) {
    auto found = pending.outputs.find(s);
    if (found != pending.outputs.end()) outputs.push_back(found->second);
  }
  core_.flight(obs::FlightCode::kSchedule, server_.value(), app_value);
  if (core_.tracing()) {
    core_.trace_sink().span(
        "sched", "sched.bid_gather", pending.started, core_.now(),
        obs::kControlTrack,
        {obs::arg("app", app_value),
         obs::arg("sites", std::uint64_t{pending.sites.size()}),
         obs::arg("replies", std::uint64_t{outputs.size()})},
        obs::Causal{.app = app_value});
  }
  if (core_.metering()) {
    core_.meters()
        .histogram("sched.bid_gather_seconds")
        .add(core_.now() - pending.started);
  }
  auto ctx = make_context(common::AppId(app_value));
  if (core_.options().legacy_direct_assign) {
    // Frozen pre-registry dispatch, kept verbatim so the strategies
    // differential suite can pin the registry path against it.
    auto result = sched::assign_with_outputs(
        *pending.graph, ctx, outputs, pending.options,
        pending.options.objective == sched::SiteObjective::kPaperObjective
            ? "vdce-level-paper"
            : "vdce-level");
    pending.callback(std::move(result));
    return;
  }
  auto strategy = sched::make_strategy(pending.options);
  if (!strategy) {
    // The environment validates policies at bring-up and submission, so
    // reaching this means a direct caller bypassed validation.
    pending.callback(strategy.error());
    return;
  }
  pending.callback((*strategy)->assign(*pending.graph, ctx, outputs));
}

// ---- execution coordination (Fig. 4) ----------------------------------------

void SiteManager::execute_application(
    common::AppId app_id, afg::Afg graph, sched::ResourceAllocationTable rat,
    std::vector<db::TaskPerfRecord> perf, std::vector<tasklib::Kernel> kernels,
    std::unordered_map<std::uint32_t, std::unordered_map<int, tasklib::Value>>
        initial_inputs,
    ReportCallback callback, double budget) {
  assert(rat.assignments.size() == graph.task_count());
  auto plan = std::make_shared<ExecutionPlan>();
  plan->app = app_id;
  plan->origin = server_;
  plan->graph = std::move(graph);
  plan->rat = std::move(rat);
  plan->perf = std::move(perf);
  if (kernels.empty()) kernels.resize(plan->graph.task_count());
  plan->kernels = std::move(kernels);
  plan->initial_inputs = std::move(initial_inputs);

  ActiveApp app;
  app.plan = plan;
  for (const sched::Assignment& a : plan->rat.assignments) {
    app.current.emplace(a.task.value(), a);
    app.attempts[a.task.value()] = 1;
    for (common::HostId h : a.hosts) app.involved.insert(h);
  }
  app.submitted = core_.now();
  app.budget = core_.options().legacy_no_economy ? 0.0 : budget;
  app.callback = std::move(callback);
  auto [it, inserted] = apps_.emplace(app_id.value(), std::move(app));
  assert(inserted);
  core_.flight(obs::FlightCode::kAppStart, server_.value(), app_id.value());

  // Reserve every machine of the allocation table before any other
  // application's scheduling round can observe this execution — acquisition
  // is atomic with the decision to execute (same engine event), so two
  // concurrent applications can never double-book a host.
  core_.reservations().acquire(app_id, plan->rat.hosts_used());

  // Multicast the allocation table to every involved site's Site Manager
  // (self included: the local hop uses the loopback link).
  RatMulticast rat_msg{plan};
  for (common::SiteId s : plan->rat.sites_used()) {
    (void)core_.fabric().send(net::Message{server_,
                                           core_.topology().site(s).server,
                                           msg::kSmRat, wire::rat(plan->rat),
                                           std::any(rat_msg)});
  }
}

void SiteManager::on_sm_rat(const net::Message& message) {
  const auto& rat = std::any_cast<const RatMulticast&>(message.payload);
  // Forward to each of our group leaders whose group has an involved member.
  for (const net::Group& group : core_.topology().groups_in_site(site_)) {
    bool involved = false;
    for (const sched::Assignment& a : rat.plan->rat.assignments) {
      for (common::HostId h : a.hosts) {
        const net::Host& host = core_.topology().host(h);
        if (host.group == group.id) {
          involved = true;
          break;
        }
      }
      if (involved) break;
    }
    if (!involved) continue;
    (void)core_.fabric().send(net::Message{server_, group.leader,
                                           msg::kSmRatGm,
                                           wire::rat(rat.plan->rat),
                                           std::any(rat)});
  }
}

void SiteManager::on_ac_ready(const net::Message& message) {
  const auto& notice = std::any_cast<const ReadyNotice&>(message.payload);
  auto it = apps_.find(notice.app.value());
  if (it == apps_.end()) return;
  it->second.ready.insert(notice.host);
  maybe_launch(it->second);
}

void SiteManager::maybe_launch(ActiveApp& app) {
  if (app.started || app.finished) return;
  for (common::HostId h : app.involved) {
    if (app.ready.contains(h)) continue;
    // A host that is recorded down does not block the launch; its tasks
    // have been (or will be) rescheduled by the recovery path.
    auto rec = core_.repo(core_.topology().host(h).site).resources().find(h);
    if (rec && !rec->up) continue;
    return;  // still waiting for this host
  }
  app.started = true;
  app.exec_started = core_.now();

  // Stage non-dataflow file inputs (I/O service) before releasing execution.
  for (const afg::TaskNode& t : app.plan->graph.tasks()) {
    stage_file_inputs(app, t.id);
  }
  for (common::HostId h : app.involved) {
    (void)core_.fabric().send(net::Message{server_, h, msg::kSmStart,
                                           wire::kSmall,
                                           std::any(StartSignal{app.plan->app})});
  }
}

void SiteManager::stage_file_inputs(ActiveApp& app, afg::TaskId task) {
  const afg::TaskNode& node = app.plan->graph.task(task);
  const sched::Assignment& assignment = app.current.at(task.value());
  auto task_inputs = app.plan->initial_inputs.find(task.value());
  for (int port = 0; port < node.in_ports(); ++port) {
    const afg::FileSpec& f = node.props.inputs[static_cast<std::size_t>(port)];
    if (f.dataflow || f.path.empty()) continue;
    tasklib::Value value;
    if (task_inputs != app.plan->initial_inputs.end()) {
      auto v = task_inputs->second.find(port);
      if (v != task_inputs->second.end()) value = v->second;
    }
    (void)core_.fabric().send(net::Message{
        server_, assignment.primary_host(), msg::kDmInput,
        std::max(f.size_bytes, 64.0),
        std::any(DataDelivery{app.plan->app, task, port, std::move(value)}),
        // Staging transfer: feeds `task`, no producer task (src_task unset).
        net::MessageCause{app.plan->app.value(), task.value()}});
  }
}

void SiteManager::on_ac_task_done(const net::Message& message) {
  const auto& done = std::any_cast<const TaskDone&>(message.payload);
  auto it = apps_.find(done.app.value());
  if (it == apps_.end()) return;
  ActiveApp& app = it->second;
  if (app.finished || app.done.contains(done.task.value())) return;

  if (done.failed) {
    complete_app(app, false,
                 "task " + app.plan->graph.task(done.task).instance_name +
                     " failed: " + done.error);
    return;
  }

  app.done.insert(done.task.value());
  const sched::Assignment& assignment = app.current.at(done.task.value());
  TaskOutcome outcome;
  outcome.task = done.task;
  outcome.task_name = app.plan->graph.task(done.task).instance_name;
  outcome.host = done.host;
  outcome.site = core_.topology().host(done.host).site;
  outcome.started = done.started;
  outcome.finished = done.finished;
  outcome.attempts = app.attempts[done.task.value()];
  app.outcomes[done.task.value()] = outcome;
  (void)assignment;

  // Close out this task's recovery events: downtime runs from detection to
  // the start of the attempt that finally completed it.
  for (RecoveryEvent& r : app.recoveries) {
    if (r.task == done.task && r.downtime == 0.0) {
      r.downtime = std::max(0.0, done.started - r.detected_at);
    }
  }

  // "updates the task-performance database with the execution time after an
  // application execution is completed" — each execution sharpens the
  // hosting site's measured history.  Tasks unknown to that site (e.g.
  // synthetic ones resolved on the fly) are registered from the plan first.
  db::TaskPerformanceDb& task_db = core_.repo(outcome.site).tasks();
  const std::string& task_name = app.plan->graph.task(done.task).task_name;
  if (!task_db.contains(task_name)) {
    task_db.register_task(app.plan->perf[done.task.value()]);
  }
  (void)task_db.record_execution(task_name, done.host, done.elapsed);

  if (app.plan->graph.children(done.task).empty() &&
      done.exit_output.has_value()) {
    app.exit_outputs[done.task.value()] = done.exit_output;
  }

  if (app.done.size() == app.plan->graph.task_count()) {
    complete_app(app, true, "");
  }
}

void SiteManager::on_ac_overload(const net::Message& message) {
  const auto& notice = std::any_cast<const OverloadNotice&>(message.payload);
  auto it = apps_.find(notice.app.value());
  if (it == apps_.end()) return;
  ActiveApp& app = it->second;
  if (app.finished || app.done.contains(notice.task.value())) return;
  ++app.reschedules;

  // Anti-livelock: after the attempt cap, restart the task where it was and
  // pin it — moving again under fleet-wide load just keeps resetting its
  // progress to zero.
  if (app.attempts[notice.task.value()] >= core_.options().max_task_attempts) {
    VDCE_LOG(kInfo, "site-mgr", core_.now())
        << "task " << app.plan->graph.task(notice.task).instance_name
        << " hit the attempt cap; pinning on host " << notice.host.value();
    if (core_.metering()) core_.meters().counter("recovery.task_pins").add();
    core_.health_event(obs::health::kRecoveryActions,
                       static_cast<std::int64_t>(notice.host.value()),
                       static_cast<std::int64_t>(site_.value()));
    ++app.attempts[notice.task.value()];
    RecoveryEvent pinned;
    pinned.task = notice.task;
    pinned.reason = "pin";
    pinned.detected_at = core_.now();
    pinned.from_host = notice.host;
    pinned.to_host = notice.host;
    pinned.attempt = app.attempts[notice.task.value()];
    app.recoveries.push_back(std::move(pinned));
    dispatch_updated_plan(app, notice.task, /*pin=*/true);
    return;
  }
  reschedule_task(app, notice.task, notice.host, "overload");
}

// ---- recovery ----------------------------------------------------------------

bool SiteManager::consume_recovery_budget(ActiveApp& app, const char* action) {
  if (++app.recovery_actions <= core_.options().max_app_recovery_actions) {
    return true;
  }
  core_.flight(obs::FlightCode::kEscalation, server_.value(),
               app.plan->app.value(), 0xFFFFFFFFu,
               static_cast<double>(app.recovery_actions - 1));
  if (core_.metering()) core_.meters().counter("recovery.escalations").add();
  core_.health_event(obs::health::kRecoveryActions, /*host=*/-1,
                     static_cast<std::int64_t>(site_.value()));
  if (core_.tracing()) {
    core_.trace_sink().instant(
        "recovery", "recovery.escalation", core_.now(), obs::kControlTrack,
        {obs::arg("app", app.plan->app.value()), obs::arg("action", action),
         obs::arg("actions", std::int64_t{app.recovery_actions - 1})},
        obs::Causal{.app = app.plan->app.value()});
  }
  complete_app(app, false,
               "recovery budget exhausted after " +
                   std::to_string(app.recovery_actions - 1) +
                   " actions (last attempted: " + std::string(action) + ")");
  return false;
}

void SiteManager::reschedule_task(ActiveApp& app, afg::TaskId task,
                                  common::HostId bad_host, const char* reason) {
  if (app.finished || app.done.contains(task.value())) return;
  if (!consume_recovery_budget(app, reason)) return;
  app.excluded[task.value()].insert(bad_host);

  const afg::TaskNode& node = app.plan->graph.task(task);
  const db::TaskPerfRecord& perf = app.plan->perf[task.value()];
  auto ctx = make_context(app.plan->app);
  const auto sites = sched::candidate_site_set(ctx, {});
  const auto& excluded = app.excluded[task.value()];
  // Machines held by concurrent applications are as unavailable to a
  // recovery re-placement as they are to a scheduling round, and so are
  // machines inside foreign committed reservation windows.  A recovery
  // re-placement has no trustworthy completion estimate (the task already
  // blew its prediction once), so it never backfills across a pending
  // foreign window.  The application's *own* booking is deliberately
  // relaxed here — like the preferred-machine preference below, surviving
  // beats staying inside the booked set when the booked machine died.
  const sched::WindowTable& reservations = core_.reservations();
  const bool windows_on = !core_.options().legacy_instant_reservations &&
                          reservations.has_windows();
  auto reserved = [&](common::HostId h) {
    if (reservations.reserved_by_other(h, app.plan->app)) return true;
    return windows_on &&
           reservations.window_blocked(h, app.plan->app, core_.now(), -1.0,
                                       /*backfill=*/false);
  };

  const auto need = node.props.mode == afg::ComputationMode::kParallel
                        ? static_cast<std::size_t>(node.props.num_nodes)
                        : std::size_t{1};

  // Work already parked on each host by this application's *unfinished*
  // tasks: without this penalty, several simultaneously rescheduled tasks
  // would all pick the same fastest machine and serialize on it.
  std::unordered_map<common::HostId, double> pending_work;
  for (const auto& [other_value, other] : app.current) {
    if (other_value == task.value() || app.done.contains(other_value)) continue;
    for (common::HostId h : other.hosts) {
      pending_work[h] += other.predicted_time;
    }
  }

  // The user's preferred machine/type is a preference, not a survival
  // constraint: when the preferred machine is the one that failed (or is
  // excluded), recovery relaxes the preference rather than failing the
  // application.
  afg::TaskNode relaxed = node;
  relaxed.props.preferred_machine.clear();
  relaxed.props.preferred_machine_type.clear();

  // Economy (docs/ECONOMY.md): a budgeted application's re-placement must
  // keep the quoted spend within the user's budget — a machine the user
  // cannot pay for is as unavailable as a reserved one.  Each candidate is
  // re-quoted against the current assignments with itself substituted, the
  // same estimate the admission gate charged, so spend() <= budget survives
  // recovery by construction.
  const bool budgeted = app.budget > 0.0;
  bool any_unaffordable = false;
  auto affordable = [&](const sched::Assignment& candidate) {
    if (!budgeted) return true;
    if (quote_current(app, &candidate).total() <= app.budget) return true;
    any_unaffordable = true;
    return false;
  };

  bool found = false;
  sched::Assignment chosen;
  double best_objective = 0.0;
  for (int attempt = 0; attempt < 2 && !found; ++attempt) {
    const afg::TaskNode& candidate_node = attempt == 0 ? node : relaxed;
    for (common::SiteId s : sites) {
      auto ranked = sched::HostSelectionAlgorithm::feasible_hosts(
          candidate_node, perf, s, core_.repo(s), core_.predictor());
      for (const sched::RankedHost& rh : ranked) {
        if (excluded.contains(rh.record.host)) continue;
        if (reserved(rh.record.host)) continue;
        if (need == 1) {
          double queue = 0.0;
          if (auto it = pending_work.find(rh.record.host);
              it != pending_work.end()) {
            queue = it->second;
          }
          double objective = queue + rh.predicted;
          if (!found || objective < best_objective) {
            sched::Assignment candidate{task, s, {rh.record.host}, rh.predicted,
                                        0.0, 0.0};
            if (!affordable(candidate)) continue;
            found = true;
            best_objective = objective;
            chosen = candidate;
          }
        }
      }
      if (need > 1) {
        // Parallel groups: take the fastest non-excluded machines of the
        // site (group reschedules are rare; spreading within the group is
        // second-order).
        std::vector<common::HostId> hosts;
        std::vector<db::ResourceRecord> group;
        for (const sched::RankedHost& rh : ranked) {
          if (excluded.contains(rh.record.host)) continue;
          if (reserved(rh.record.host)) continue;
          hosts.push_back(rh.record.host);
          group.push_back(rh.record);
          if (hosts.size() == need) break;
        }
        if (hosts.size() < need) continue;
        auto predicted =
            core_.predictor().predict(perf, group, &core_.repo(s).tasks());
        if (!predicted) continue;
        if (!found || *predicted < best_objective) {
          sched::Assignment candidate{task, s, hosts, *predicted, 0.0, 0.0};
          if (!affordable(candidate)) continue;
          found = true;
          best_objective = *predicted;
          chosen = candidate;
        }
      }
    }
  }
  if (!found) {
    complete_app(app, false,
                 any_unaffordable
                     ? "no affordable resource to reschedule " +
                           node.instance_name + " within the " +
                           common::format_double(app.budget, 2) + " G$ budget"
                     : "no feasible resource to reschedule " +
                           node.instance_name);
    return;
  }

  VDCE_LOG(kInfo, "site-mgr", core_.now())
      << "rescheduling " << node.instance_name << " to host "
      << chosen.primary_host().value() << " (site " << chosen.site.value()
      << ")";
  core_.flight(obs::FlightCode::kRecovery, bad_host.value(),
               app.plan->app.value(), task.value());
  if (core_.metering()) core_.meters().counter("recovery.reschedules").add();
  core_.health_event(obs::health::kRecoveryActions,
                     static_cast<std::int64_t>(bad_host.value()),
                     static_cast<std::int64_t>(site_.value()));
  if (core_.tracing()) {
    // Causal tag: the next exec.task span of this task is the relaunched
    // attempt this recovery action caused.
    core_.trace_sink().instant(
        "recovery", "recovery.reschedule", core_.now(), obs::kControlTrack,
        {obs::arg("task", node.instance_name),
         obs::arg("from", bad_host.value()),
         obs::arg("to", chosen.primary_host().value())},
        obs::Causal{.app = app.plan->app.value(), .task = task.value()});
  }

  app.current[task.value()] = chosen;
  ++app.attempts[task.value()];
  for (common::HostId h : chosen.hosts) app.involved.insert(h);
  core_.reservations().acquire(app.plan->app, chosen.hosts);

  RecoveryEvent ev;
  ev.task = task;
  ev.reason = reason;
  ev.detected_at = core_.now();
  ev.from_host = bad_host;
  ev.to_host = chosen.primary_host();
  ev.attempt = app.attempts[task.value()];
  app.recoveries.push_back(std::move(ev));

  // Parents whose cached outputs lived on a failed host must re-execute
  // before they can feed the moved task (cascading recovery).
  for (const afg::Edge& e : app.plan->graph.in_edges(task)) {
    const sched::Assignment& parent = app.current.at(e.from.value());
    if (!core_.topology().host_up(parent.primary_host()) &&
        app.done.contains(e.from.value())) {
      app.done.erase(e.from.value());
      app.outcomes.erase(e.from.value());
      reschedule_task(app, e.from, parent.primary_host(), "cascade");
      if (app.finished) return;
    }
  }

  dispatch_updated_plan(app, task);
}

econ::SpendBreakdown SiteManager::quote_current(
    const ActiveApp& app, const sched::Assignment* substitute) const {
  sched::ResourceAllocationTable rat = app.plan->rat;
  for (sched::Assignment& a : rat.assignments) {
    a = substitute != nullptr && substitute->task == a.task
            ? *substitute
            : app.current.at(a.task.value());
  }
  return econ::estimate_spend(app.plan->graph, rat, core_.topology(),
                              core_.options().prices);
}

PlanPtr SiteManager::current_plan(const ActiveApp& app) const {
  auto plan = std::make_shared<ExecutionPlan>(*app.plan);
  for (sched::Assignment& a : plan->rat.assignments) {
    a = app.current.at(a.task.value());
  }
  return plan;
}

void SiteManager::dispatch_updated_plan(ActiveApp& app, afg::TaskId task,
                                        bool pin) {
  PlanPtr plan = current_plan(app);
  const sched::Assignment& assignment = app.current.at(task.value());

  // Targeted re-dispatch: the coordinator already knows the exact machine,
  // so the Group Manager fan-out is skipped for this one request.
  (void)core_.fabric().send(net::Message{
      server_, assignment.primary_host(), msg::kGmExec, wire::kSmall,
      std::any(ExecRequest{plan, assignment.primary_host(),
                           pin ? task : afg::TaskId{}})});
  if (app.started) {
    (void)core_.fabric().send(net::Message{server_, assignment.primary_host(),
                                           msg::kSmStart, wire::kSmall,
                                           std::any(StartSignal{plan->app})});
    stage_file_inputs(app, task);
    // Pull dataflow inputs from each parent's current host.
    for (const afg::Edge& e : app.plan->graph.in_edges(task)) {
      const sched::Assignment& parent = app.current.at(e.from.value());
      if (!core_.topology().host_up(parent.primary_host())) continue;
      (void)core_.fabric().send(net::Message{
          server_, parent.primary_host(), msg::kDmResend, wire::kSmall,
          std::any(ResendRequest{plan->app, e.from, e.from_port, task,
                                 e.to_port, assignment.primary_host()})});
    }
  }
}

void SiteManager::progress_sweep() {
  for (auto& [app_value, app] : apps_) {
    if (app.finished) continue;
    // Safety net: catch tasks stranded on hosts recorded down whose
    // notifications raced with plan dispatch.
    std::vector<std::pair<afg::TaskId, common::HostId>> stranded;
    for (const auto& [task_value, assignment] : app.current) {
      if (app.done.contains(task_value)) continue;
      for (common::HostId h : assignment.hosts) {
        if (!core_.topology().host_up(h)) {
          stranded.emplace_back(assignment.task, h);
          break;
        }
      }
    }
    for (const auto& [task, host] : stranded) {
      ++app.failures_survived;
      reschedule_task(app, task, host, "host_down");
      if (app.finished) break;
    }
    if (app.finished) continue;

    if (!app.started) {
      maybe_launch(app);
      if (app.started || app.finished) continue;
      // Still waiting for readiness reports: after stall_sweeps quiet
      // sweeps, assume the allocation-table fan-out (or the readiness
      // replies) were lost and re-multicast the RAT.  Re-activation is
      // idempotent at every hop.
      if (++app.prestart_sweeps < core_.options().stall_sweeps) continue;
      app.prestart_sweeps = 0;
      if (++app.quiet_stalls > kMaxQuietStalls) continue;  // stop spamming
      core_.flight(obs::FlightCode::kRecovery, server_.value(),
                   app.plan->app.value());
      if (core_.metering()) core_.meters().counter("recovery.relaunches").add();
      core_.health_event(obs::health::kRecoveryActions, /*host=*/-1,
                         static_cast<std::int64_t>(site_.value()));
      if (core_.tracing()) {
        core_.trace_sink().instant(
            "recovery", "recovery.relaunch", core_.now(), obs::kControlTrack,
            {obs::arg("app", app.plan->app.value())},
            obs::Causal{.app = app.plan->app.value()});
      }
      RecoveryEvent ev;
      ev.reason = "relaunch";
      ev.detected_at = core_.now();
      app.recoveries.push_back(std::move(ev));
      PlanPtr plan = current_plan(app);
      for (common::SiteId s : plan->rat.sites_used()) {
        (void)core_.fabric().send(net::Message{
            server_, core_.topology().site(s).server, msg::kSmRat,
            wire::rat(plan->rat), std::any(RatMulticast{plan})});
      }
      continue;
    }

    // Running but nothing newly finished: after stall_sweeps quiet sweeps,
    // re-send start signals and inputs (lost-message safety net).
    if (app.done.size() != app.last_done_count) {
      app.last_done_count = app.done.size();
      app.stalled_sweeps = 0;
      app.quiet_stalls = 0;
    } else if (++app.stalled_sweeps >= core_.options().stall_sweeps) {
      app.stalled_sweeps = 0;
      stall_recover(app);
    }
  }
}

void SiteManager::stall_recover(ActiveApp& app) {
  // A quiet period is not proof of a wedge — a long task completes nothing
  // for many sweeps — and every resend is idempotent, so stalls do not
  // charge the recovery budget.  They are merely rate-capped: if repeated
  // resends change nothing, more of them will not either.
  if (++app.quiet_stalls > kMaxQuietStalls) return;
  core_.flight(obs::FlightCode::kStall, server_.value(),
               app.plan->app.value(),
               static_cast<std::uint32_t>(app.done.size()));
  if (core_.metering()) core_.meters().counter("recovery.stall_resends").add();
  core_.health_event(obs::health::kRecoveryActions, /*host=*/-1,
                     static_cast<std::int64_t>(site_.value()));
  if (core_.tracing()) {
    core_.trace_sink().instant(
        "recovery", "recovery.stall", core_.now(), obs::kControlTrack,
        {obs::arg("app", app.plan->app.value()),
         obs::arg("done", std::uint64_t{app.done.size()}),
         obs::arg("tasks",
                  std::uint64_t{app.plan->graph.task_count()})},
        obs::Causal{.app = app.plan->app.value()});
  }
  RecoveryEvent ev;
  ev.reason = "stall";
  ev.detected_at = core_.now();
  app.recoveries.push_back(std::move(ev));

  // Re-dispatch every unfinished task to its current host: re-activates the
  // Data Manager (idempotent merge), repeats the start signal (which also
  // replays completion notices we may have missed), re-stages file inputs
  // (duplicate deliveries are dropped on filled ports), and pulls dataflow
  // inputs from finished parents again.
  for (const auto& [task_value, assignment] : app.current) {
    if (app.done.contains(task_value)) continue;
    if (!core_.topology().host_up(assignment.primary_host())) continue;
    dispatch_updated_plan(app, assignment.task);
  }
}

void SiteManager::complete_app(ActiveApp& app, bool success,
                               const std::string& reason) {
  app.finished = true;
  // Free this application's machines for queued tenants (success or not —
  // a failed application must not strand its reservations).
  core_.reservations().release(app.plan->app);
  ExecutionReport report;
  report.app = app.plan->app;
  report.app_name = app.plan->graph.name();
  report.scheduler = app.plan->rat.scheduler_name;
  report.success = success;
  report.failure_reason = reason;
  report.submitted = app.submitted;
  report.exec_started = app.started ? app.exec_started : core_.now();
  report.completed = core_.now();
  report.reschedules = app.reschedules;
  report.failures_survived = app.failures_survived;
  report.recoveries = app.recoveries;
  for (const afg::TaskNode& t : app.plan->graph.tasks()) {
    auto it = app.outcomes.find(t.id.value());
    if (it != app.outcomes.end()) report.outcomes.push_back(it->second);
  }
  // Causal structure for ExecutionReport::critical_path(): the report is
  // self-contained — no need to keep the AFG around to analyze it.
  for (const afg::Edge& e : app.plan->graph.edges()) {
    report.dag_edges.emplace_back(e.from.value(), e.to.value());
  }
  report.exit_outputs = app.exit_outputs;
  // Economy (docs/ECONOMY.md): quote the *final* placements — recovery
  // re-placements were budget-gated, so this total respects the budget for
  // every run that was admitted.  Unbudgeted runs keep a zero quote, which
  // keeps their reports byte-identical to the pre-economy pipeline.
  if (app.budget > 0.0) {
    report.budget = app.budget;
    report.spend_parts = quote_current(app);
  }
  core_.flight(obs::FlightCode::kAppDone, server_.value(),
               report.app.value(), success ? 1u : 0u, report.makespan());

  if (core_.metering()) {
    obs::MetricsRegistry& m = core_.meters();
    m.counter(success ? "app.completed" : "app.failed").add();
    if (success) {
      m.histogram("app.setup_seconds").add(report.setup_time());
      m.histogram("app.makespan").add(report.makespan());
    }
  }
  if (core_.tracing()) {
    obs::TraceSink& sink = core_.trace_sink();
    sink.span("app", "app.setup", report.submitted, report.exec_started,
              obs::kControlTrack, {obs::arg("app", report.app.value())},
              obs::Causal{.app = report.app.value()});
    sink.span("app", "app.run", report.exec_started, report.completed,
              obs::kControlTrack,
              {obs::arg("app", report.app.value()),
               obs::arg("name", report.app_name),
               obs::arg("success", success),
               obs::arg("reschedules", std::int64_t{report.reschedules}),
               obs::arg("failures_survived",
                        std::int64_t{report.failures_survived})},
              obs::Causal{.app = report.app.value()});
  }

  if (app.callback) app.callback(std::move(report));
}

void SiteManager::suspend_application(common::AppId app_id) {
  auto it = apps_.find(app_id.value());
  if (it == apps_.end()) return;
  for (common::HostId h : it->second.involved) {
    (void)core_.fabric().send(net::Message{server_, h, msg::kSmSuspend,
                                           wire::kSmall,
                                           std::any(SuspendSignal{app_id})});
  }
}

void SiteManager::resume_application(common::AppId app_id) {
  auto it = apps_.find(app_id.value());
  if (it == apps_.end()) return;
  for (common::HostId h : it->second.involved) {
    (void)core_.fabric().send(net::Message{server_, h, msg::kSmResume,
                                           wire::kSmall,
                                           std::any(SuspendSignal{app_id})});
  }
}

}  // namespace vdce::runtime
