// Shared runtime context and tuning knobs.
//
// One RuntimeCore exists per simulated environment; every daemon holds a
// reference.  It owns the models (prediction, ground-truth execution time)
// and the runtime RNG, and carries references to the engine/fabric/topology
// and the per-site repositories the daemons read and write.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "db/site_repository.hpp"
#include "econ/econ.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "predict/model.hpp"
#include "sched/reservations.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

struct RuntimeOptions {
  // --- monitoring (§4.1) ---
  common::SimDuration monitor_period = 1.0;   ///< Monitor daemon sampling
  double measurement_noise = 0.02;            ///< stddev of load samples
  double significant_change = 0.15;           ///< Group Manager forward filter
  common::SimDuration echo_period = 2.0;      ///< Group Manager echo packets
  // --- application control (§4.1) ---
  common::SimDuration controller_period = 1.0;  ///< App Controller load checks
  double overload_threshold = 2.5;  ///< terminate + reschedule above this load
  /// After this many placements of one task, further overload notices pin
  /// the task in place instead of moving it again (anti-livelock).
  int max_task_attempts = 4;
  common::SimDuration progress_period = 5.0;  ///< coordinator stall sweep
  // --- hardened recovery (fault-injection plane) ---
  /// Data Manager channel setup: resend an unacknowledged dm.setup after
  /// this long (covers setup/ack messages lost to partitions or transient
  /// loss).  0 disables the retry.
  common::SimDuration channel_retry_timeout = 1.0;
  /// Give up on a peer's ack after this many resends and proceed without it
  /// (a permanently partitioned peer must not wedge channel setup forever).
  int channel_max_retries = 3;
  /// Each retry waits `channel_backoff` times longer than the previous one.
  double channel_backoff = 2.0;
  /// Coordinator recovery budget per application: after this many recovery
  /// actions (reschedules, stall resends) the app is failed with a
  /// descriptive report instead of looping forever.
  int max_app_recovery_actions = 64;
  /// Coordinator stall handling: a task with no progress for this many
  /// progress sweeps gets its start message and inputs re-sent.
  int stall_sweeps = 2;
  // --- execution model ---
  double exec_noise_cv = 0.05;  ///< run-to-run execution time variation
  /// Execution proceeds in quanta: each boundary re-reads live host load,
  /// so background spikes slow a running task (and departures speed it up).
  common::SimDuration exec_quantum = 1.0;
  // --- scheduling ---
  std::size_t k_nearest = 2;  ///< S_remote size (Fig. 2 step 2)
  /// Bid-gathering deadline: the origin assigns with whatever
  /// host-selection outputs have arrived once this much simulated time has
  /// passed (a dead or unreachable remote site must not hang scheduling).
  common::SimDuration bid_timeout = 2.0;
  /// Test-only escape hatch: bypass the strategy registry and call the VDCE
  /// assignment phase directly, exactly as the pre-registry coordinator did.
  /// Exists so the strategies differential suite can prove the registry
  /// dispatch bit-identical to the frozen path; never set it in real runs.
  bool legacy_direct_assign = false;
  /// Test-only escape hatch: ignore the advance-reservation window plane
  /// entirely — scheduling contexts carry no WindowTable and the
  /// environment never parks a submission on a window, exactly as the
  /// pre-window pipeline behaved.  Exists so the reservations differential
  /// suite can prove the zero-booking path byte-identical to the
  /// instantaneous-only scheduler (docs/RESERVATIONS.md); never set it in
  /// real runs.
  bool legacy_instant_reservations = false;
  // --- economy (docs/ECONOMY.md) ---
  /// Resource prices: per-CPU-second host prices (proportional to speed by
  /// default) and per-MB link prices.  Read by the cost-aware strategies
  /// through the scheduling context, by the admission controller's budget
  /// gate, by recovery re-placement, and by the report's spend() quote.
  econ::CostModel prices;
  /// Test-only escape hatch: disable the economy plane entirely — scheduling
  /// contexts carry no prices, no submission is budget-gated, recovery
  /// ignores budgets, and reports carry zero spend, exactly as the
  /// pre-economy pipeline behaved.  Exists so the economy differential suite
  /// can prove the default path byte-identical with the plane present
  /// (docs/ECONOMY.md); never set it in real runs.
  bool legacy_no_economy = false;
  std::uint64_t seed = 1234;
};

class RuntimeCore {
 public:
  RuntimeCore(sim::Engine& engine, net::Fabric& fabric, net::Topology& topology,
              std::vector<db::SiteRepository*> repos, RuntimeOptions options)
      : engine_(engine),
        fabric_(fabric),
        topology_(topology),
        repos_(std::move(repos)),
        options_(options),
        predictor_(),
        ground_truth_(topology, options.exec_noise_cv),
        rng_(options.seed) {}

  RuntimeCore(const RuntimeCore&) = delete;
  RuntimeCore& operator=(const RuntimeCore&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] net::Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const net::Topology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] db::SiteRepository& repo(common::SiteId site) {
    return *repos_.at(site.value());
  }
  [[nodiscard]] const std::vector<db::SiteRepository*>& repos() const noexcept {
    return repos_;
  }
  [[nodiscard]] const RuntimeOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const predict::Predictor& predictor() const noexcept {
    return predictor_;
  }
  [[nodiscard]] const predict::GroundTruthModel& ground_truth() const noexcept {
    return ground_truth_;
  }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }

  /// Host reservations shared by every site coordinator — the source of
  /// truth that keeps concurrent applications from double-booking machines
  /// (sched/reservations.hpp, docs/TENANCY.md).  Since the advance-
  /// reservation plane (docs/RESERVATIONS.md) this is the time-indexed
  /// WindowTable; the instantaneous acquire/release surface is unchanged
  /// and the zero-window case behaves identically to the old table.
  [[nodiscard]] sched::WindowTable& reservations() noexcept {
    return reservations_;
  }
  [[nodiscard]] const sched::WindowTable& reservations() const noexcept {
    return reservations_;
  }

  [[nodiscard]] common::SimTime now() const noexcept { return engine_.now(); }

  // --- fault injection ------------------------------------------------------
  /// Install the chaos plane's monitor-mute predicate (null detaches).  A
  /// muted host's monitor daemon skips its samples, so the repositories
  /// serve progressively staler data (the stale-monitor fault).  A callback
  /// rather than a ChaosInjector* keeps runtime independent of vdce::chaos.
  void set_monitor_mute(std::function<bool(common::HostId)> muted) {
    monitor_muted_ = std::move(muted);
  }
  [[nodiscard]] bool monitor_muted(common::HostId host) const {
    return monitor_muted_ && monitor_muted_(host);
  }

  // --- observability -------------------------------------------------------
  /// Attach the environment's Observability (null detaches).  Daemons guard
  /// every record with tracing()/metering(), so a core without observability
  /// pays one branch per instrumentation site.
  void set_observability(obs::Observability* obs) noexcept { obs_ = obs; }
  [[nodiscard]] obs::Observability* obs() const noexcept { return obs_; }
  [[nodiscard]] bool tracing() const noexcept {
    return obs_ != nullptr && obs_->trace_on();
  }
  [[nodiscard]] bool metering() const noexcept {
    return obs_ != nullptr && obs_->metrics_on();
  }
  /// Valid only when tracing()/metering() respectively returned true.
  [[nodiscard]] obs::TraceSink& trace_sink() noexcept { return obs_->trace(); }
  [[nodiscard]] obs::MetricsRegistry& meters() noexcept {
    return obs_->metrics();
  }

  /// Always-on flight-recorder hook (obs/flight.hpp): a handful of stores
  /// into a preallocated ring, independent of tracing()/metering().  Safe to
  /// call unguarded from any instrumentation site.
  void flight(obs::FlightCode code, std::uint32_t track = 0xFFFFFFFFu,
              std::uint32_t a = 0xFFFFFFFFu, std::uint32_t b = 0xFFFFFFFFu,
              double v = 0.0) noexcept {
    if (obs_ != nullptr) obs_->flight().record(engine_.now(), code, track, a, b, v);
  }

  // --- health plane (obs/health.hpp, docs/OBSERVABILITY.md) -----------------
  /// Daemons guard their series feeds with health_on(); health_plane() is
  /// valid only when it returned true.
  [[nodiscard]] bool health_on() const noexcept {
    return obs_ != nullptr && obs_->health_on();
  }
  [[nodiscard]] obs::health::HealthPlane& health_plane() noexcept {
    return obs_->health();
  }
  /// Rare-event counter feed (recovery actions, failure detections): bumps
  /// the cumulative series for `metric`, creating it on first use.  Safe to
  /// call unguarded — a disabled plane makes this one branch.
  void health_event(const char* metric, std::int64_t host = -1,
                    std::int64_t site = -1, double delta = 1.0) {
    if (!health_on()) return;
    obs::health::SeriesKey key;
    key.metric = metric;
    key.host = host;
    key.site = site;
    obs_->health().observe_delta(key, engine_.now(), delta);
  }

 private:
  sim::Engine& engine_;
  net::Fabric& fabric_;
  net::Topology& topology_;
  std::vector<db::SiteRepository*> repos_;
  RuntimeOptions options_;
  predict::Predictor predictor_;
  predict::GroundTruthModel ground_truth_;
  sched::WindowTable reservations_;
  common::Rng rng_;
  obs::Observability* obs_ = nullptr;
  std::function<bool(common::HostId)> monitor_muted_;
};

}  // namespace vdce::runtime
