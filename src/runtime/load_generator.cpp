#include "runtime/load_generator.hpp"

#include <algorithm>

namespace vdce::runtime {

void BackgroundLoadGenerator::start() {
  background_.assign(topology_.host_count(), 0.0);
  // Start each host at an independent draw around the mean.
  for (std::size_t h = 0; h < background_.size(); ++h) {
    background_[h] = rng_.normal(options_.mean_load, options_.volatility, 0.0);
    topology_.add_cpu_load(common::HostId(static_cast<std::uint32_t>(h)),
                           background_[h]);
  }
  timer_ = engine_.every(options_.period, [this] { step(); });
}

void BackgroundLoadGenerator::stop() { timer_.cancel(); }

void BackgroundLoadGenerator::step() {
  for (std::size_t h = 0; h < background_.size(); ++h) {
    double current = background_[h];
    double next = current +
                  options_.reversion * (options_.mean_load - current) +
                  rng_.normal(0.0, options_.volatility, -10.0);
    next = std::max(0.0, next);
    topology_.add_cpu_load(common::HostId(static_cast<std::uint32_t>(h)),
                           next - current);
    background_[h] = next;
  }
}

void BackgroundLoadGenerator::inject_spike(common::HostId host, double amount,
                                           common::SimDuration duration) {
  topology_.add_cpu_load(host, amount);
  engine_.schedule(duration, [this, host, amount] {
    topology_.add_cpu_load(host, -amount);
  });
}

}  // namespace vdce::runtime
