#include "runtime/execution.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace vdce::runtime {

obs::causal::AppTrace ExecutionReport::causal_view() const {
  obs::causal::AppTrace view;
  view.app = app.value();
  view.name = app_name;
  view.enqueued = enqueued;
  view.admitted = admitted;
  view.released = std::max(released, admitted);
  view.exec_started = exec_started;
  view.completed = completed;
  for (const TaskOutcome& o : outcomes) {
    obs::causal::TaskExec t;
    t.task = o.task.value();
    t.name = o.task_name.empty() ? "task " + std::to_string(o.task.value())
                                 : o.task_name;
    t.started = o.started;
    t.finished = o.finished;
    t.host = o.host.value();
    t.attempts = o.attempts;
    for (const auto& [from, to] : dag_edges) {
      if (to == o.task.value()) t.deps.push_back(from);
    }
    view.tasks.push_back(std::move(t));
  }
  for (const RecoveryEvent& r : recoveries) {
    obs::causal::RecoveryMark mark;
    mark.at = r.detected_at;
    mark.task = r.task.valid() ? r.task.value() : obs::kNoCausalId;
    mark.reason = r.reason;
    view.recoveries.push_back(std::move(mark));
  }
  return view;
}

std::string ExecutionReport::describe(const afg::Afg& graph) const {
  std::string out = "Execution report for '" + app_name + "'";
  out += success ? " [SUCCESS]\n" : " [FAILED: " + failure_reason + "]\n";
  out += "  submitted " + common::format_double(submitted, 4) + "s, started " +
         common::format_double(exec_started, 4) + "s, completed " +
         common::format_double(completed, 4) + "s\n";
  out += "  setup " + common::format_double(setup_time(), 4) + "s, makespan " +
         common::format_double(makespan(), 4) + "s, reschedules " +
         std::to_string(reschedules) + ", failures survived " +
         std::to_string(failures_survived) + "\n";
  if (admitted > enqueued) {
    out += "  admission wait " + common::format_double(admitted - enqueued, 4) +
           "s (enqueued " + common::format_double(enqueued, 4) +
           "s, admitted " + common::format_double(admitted, 4) + "s)\n";
  }
  if (released > admitted) {
    out += "  reservation wait " +
           common::format_double(released - admitted, 4) + "s (window opened " +
           common::format_double(released, 4) + "s)\n";
  }
  for (const TaskOutcome& o : outcomes) {
    out += "  " + graph.task(o.task).instance_name + ": host " +
           std::to_string(o.host.value()) + " (site " +
           std::to_string(o.site.value()) + ") " +
           common::format_double(o.started, 4) + "s -> " +
           common::format_double(o.finished, 4) + "s";
    if (o.attempts > 1) out += "  [attempts " + std::to_string(o.attempts) + "]";
    out += "\n";
  }
  for (const RecoveryEvent& r : recoveries) {
    out += "  recovery[" + r.reason + "] at " +
           common::format_double(r.detected_at, 4) + "s";
    if (r.task.valid()) out += " " + graph.task(r.task).instance_name;
    if (r.from_host.valid()) {
      out += " host " + std::to_string(r.from_host.value());
    }
    if (r.to_host.valid()) out += " -> " + std::to_string(r.to_host.value());
    if (r.downtime > 0.0) {
      out += " (downtime " + common::format_double(r.downtime, 4) + "s)";
    }
    out += "\n";
  }

  // ASCII Gantt, one row per task, scaled to the makespan.
  if (success && !outcomes.empty() && completed > exec_started) {
    constexpr int kWidth = 60;
    out += "  Gantt (start signal -> completion):\n";
    for (const TaskOutcome& o : outcomes) {
      double span = completed - exec_started;
      int lo = static_cast<int>(std::floor((o.started - exec_started) / span *
                                           kWidth));
      int hi = static_cast<int>(std::ceil((o.finished - exec_started) / span *
                                          kWidth));
      lo = std::clamp(lo, 0, kWidth);
      hi = std::clamp(hi, lo + 1, kWidth);
      std::string row(static_cast<std::size_t>(kWidth), '.');
      for (int i = lo; i < hi; ++i) row[static_cast<std::size_t>(i)] = '#';
      std::string label = graph.task(o.task).instance_name;
      if (label.size() > 18) label.resize(18);
      out += "    " + label + std::string(20 - label.size(), ' ') + row + "\n";
    }
  }
  return out;
}

}  // namespace vdce::runtime
