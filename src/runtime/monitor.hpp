// Monitor daemon (§4.1): "periodically measures the up-to-date resource
// parameters, i.e., CPU load and memory availability, and sends the values
// to the Group Manager."  One per VDCE resource (host).  Also answers the
// Group Manager's echo packets — a host that can reply is, by definition,
// alive.
#pragma once

#include "common/ids.hpp"
#include "net/fabric.hpp"
#include "runtime/core.hpp"
#include "runtime/protocol.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

class MonitorDaemon {
 public:
  MonitorDaemon(RuntimeCore& core, common::HostId host,
                common::HostId group_leader)
      : core_(core), host_(host), group_leader_(group_leader) {}

  /// Begin periodic sampling.  Offsets the first sample by a host-specific
  /// phase so the fleet's reports do not all land at the same instant.
  void start();
  void stop();

  /// Handle an incoming message addressed to this daemon (echo packets).
  void handle(const net::Message& message);

  [[nodiscard]] common::HostId host() const noexcept { return host_; }

 private:
  void sample_and_report();

  RuntimeCore& core_;
  common::HostId host_;
  common::HostId group_leader_;
  sim::TimerHandle timer_;
  common::Rng noise_{0};
  bool started_ = false;
  /// Health-plane series for this host's samples, resolved once at start()
  /// (null when the plane is off) so the sampling path stays a pointer
  /// store — see obs/health.hpp.
  obs::health::TimeSeries* load_series_ = nullptr;
  obs::health::TimeSeries* mem_series_ = nullptr;
};

}  // namespace vdce::runtime
