// Execution outcome reporting.
//
// The origin Site Manager assembles an ExecutionReport as an application
// runs: per-task placements and times, reschedules and failures survived,
// and — when the application carried real kernels — the output values of
// its exit tasks.  The report is what examples print and what the
// end-to-end benches aggregate.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "tasklib/registry.hpp"

namespace vdce::runtime {

struct TaskOutcome {
  afg::TaskId task;
  common::HostId host;          ///< where it finally completed
  common::SiteId site;
  common::SimTime started = 0;  ///< start of the successful attempt
  common::SimTime finished = 0;
  int attempts = 1;             ///< 1 + number of reschedules of this task
};

struct ExecutionReport {
  common::AppId app;
  std::string app_name;
  bool success = false;
  std::string failure_reason;

  common::SimTime submitted = 0;    ///< execution request received
  common::SimTime exec_started = 0; ///< startup signal sent (channels ready)
  common::SimTime completed = 0;    ///< last task finished

  /// Wall (simulated) time from startup signal to completion.
  [[nodiscard]] common::SimDuration makespan() const {
    return completed - exec_started;
  }
  /// Setup cost: channel establishment + staging before the startup signal.
  [[nodiscard]] common::SimDuration setup_time() const {
    return exec_started - submitted;
  }

  std::vector<TaskOutcome> outcomes;  ///< task-id order
  int reschedules = 0;                ///< overload-triggered task restarts
  int failures_survived = 0;          ///< host deaths recovered from

  /// QoS: the deadline the user requested (0 = none) and whether the
  /// achieved makespan met it.
  common::SimDuration deadline = 0.0;
  [[nodiscard]] bool deadline_met() const {
    return deadline <= 0.0 || makespan() <= deadline;
  }

  /// Output values of exit tasks (port 0), keyed by task-id value; empty
  /// for timing-only runs.
  std::unordered_map<std::uint32_t, tasklib::Value> exit_outputs;

  /// Human-readable narrative (per-task rows + summary + ASCII Gantt).
  [[nodiscard]] std::string describe(const afg::Afg& graph) const;
};

}  // namespace vdce::runtime
