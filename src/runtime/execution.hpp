// Execution outcome reporting.
//
// The origin Site Manager assembles an ExecutionReport as an application
// runs: per-task placements and times, reschedules and failures survived,
// and — when the application carried real kernels — the output values of
// its exit tasks.  The report is what examples print and what the
// end-to-end benches aggregate.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "econ/econ.hpp"
#include "obs/causal.hpp"
#include "obs/health.hpp"
#include "tasklib/registry.hpp"

namespace vdce::runtime {

struct TaskOutcome {
  afg::TaskId task;
  std::string task_name;        ///< AFG instance name, for labeling
  common::HostId host;          ///< where it finally completed
  common::SiteId site;
  common::SimTime started = 0;  ///< start of the successful attempt
  common::SimTime finished = 0;
  int attempts = 1;             ///< 1 + number of reschedules of this task
};

/// One recovery action the coordinator took while the application ran —
/// the per-fault outcome record surfaced through ExecutionReport.
struct RecoveryEvent {
  afg::TaskId task;       ///< invalid for app-level actions (stall resends)
  /// Why: "host_down", "overload", "cascade", "pin", "stall", "relaunch".
  std::string reason;
  common::SimTime detected_at = 0;  ///< when the coordinator acted
  common::HostId from_host;         ///< the machine being abandoned (if any)
  common::HostId to_host;           ///< where the task went (if re-placed)
  int attempt = 0;                  ///< task attempt count after this action
  /// detected_at -> start of the attempt that finally completed the task;
  /// 0 until that attempt succeeds (or for app-level actions).
  common::SimDuration downtime = 0.0;
};

struct ExecutionReport {
  common::AppId app;
  std::string app_name;
  /// Name of the scheduling strategy that produced the allocation table
  /// (ResourceAllocationTable::scheduler_name); empty for reports assembled
  /// before any table existed.
  std::string scheduler;
  bool success = false;
  std::string failure_reason;

  /// Multi-tenant submission timeline (docs/TENANCY.md).  `enqueued` is
  /// when the environment accepted the submission into the admission queue;
  /// `admitted` is when admission control let it start scheduling.  Both
  /// stay 0 for runs that bypass the submission pipeline
  /// (execute_with_table), and enqueued == admitted when no other tenants
  /// were ahead in line.
  common::SimTime enqueued = 0;
  common::SimTime admitted = 0;
  /// When scheduling actually began (docs/RESERVATIONS.md): a submission
  /// carrying an advance-reservation ticket parks after admission until its
  /// committed window opens, so `released` is the window start; for every
  /// other run released == admitted and the reservation phase is 0.
  common::SimTime released = 0;

  common::SimTime submitted = 0;    ///< execution request received
  common::SimTime exec_started = 0; ///< startup signal sent (channels ready)
  common::SimTime completed = 0;    ///< last task finished

  /// Wall (simulated) time from startup signal to completion.
  [[nodiscard]] common::SimDuration makespan() const {
    return completed - exec_started;
  }
  /// Setup cost: channel establishment + staging before the startup signal.
  [[nodiscard]] common::SimDuration setup_time() const {
    return exec_started - submitted;
  }

  std::vector<TaskOutcome> outcomes;  ///< task-id order
  /// AFG dependency edges (parent task id -> child task id), recorded at
  /// completion so the report is self-contained for causal analysis.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dag_edges;
  int reschedules = 0;                ///< overload-triggered task restarts
  int failures_survived = 0;          ///< host deaths recovered from
  /// Every recovery action, in the order taken (reschedules, pins, stall
  /// resends), each with detection time, destination, and downtime.
  std::vector<RecoveryEvent> recoveries;

  /// Simulated time the distributed scheduling phase took before the
  /// execution request was issued.  Filled by VdceEnvironment's
  /// run_application; stays 0 when the allocation table was supplied
  /// externally (execute_with_table).
  common::SimDuration scheduling_time = 0.0;

  /// Phase decomposition of the end-to-end latency, for makespan
  /// attribution: where did the simulated seconds go?
  struct PhaseBreakdown {
    /// Admission-queue wait under multi-tenant contention (admitted -
    /// enqueued); 0 when the run never queued behind other tenants.
    common::SimDuration contention = 0.0;
    /// Advance-reservation wait (released - admitted): the admitted
    /// submission parked until its committed window opened
    /// (docs/RESERVATIONS.md); 0 for runs without a reservation ticket.
    common::SimDuration reservation = 0.0;
    common::SimDuration scheduling = 0.0;  ///< Fig. 2 bid gather + assignment
    common::SimDuration setup = 0.0;       ///< RAT fan-out, channels, staging
    common::SimDuration execution = 0.0;   ///< startup signal -> last task
    /// Sum of per-task compute times; execution minus this is transfer +
    /// queueing + recovery overhead.
    common::SimDuration task_busy = 0.0;
    [[nodiscard]] common::SimDuration total() const {
      return contention + reservation + scheduling + setup + execution;
    }
  };
  [[nodiscard]] PhaseBreakdown breakdown() const {
    PhaseBreakdown b;
    b.contention = admitted - enqueued;
    b.reservation = released - admitted;
    b.scheduling = scheduling_time;
    b.setup = setup_time();
    b.execution = makespan();
    for (const TaskOutcome& o : outcomes) b.task_busy += o.finished - o.started;
    return b;
  }

  /// QoS: the deadline the user requested (0 = none) and whether the
  /// achieved makespan met it.
  common::SimDuration deadline = 0.0;
  [[nodiscard]] bool deadline_met() const {
    return deadline <= 0.0 || makespan() <= deadline;
  }

  // --- economy (docs/ECONOMY.md) --------------------------------------------
  /// The budget the user requested (0 = none) and the quoted spend of the
  /// final placements: every task charged its predicted time at its hosts'
  /// per-CPU-second prices, every edge its bytes at the placed link's
  /// per-MB price.  Recovery re-placements re-quote (and are budget-gated),
  /// so spend() <= budget holds for every admitted run by construction.
  /// Both stay 0 when the economy plane is disabled.
  double budget = 0.0;
  econ::SpendBreakdown spend_parts;
  /// Total quoted spend; spend_parts tiles it exactly (compute + transfer).
  [[nodiscard]] double spend() const { return spend_parts.total(); }
  [[nodiscard]] bool within_budget() const {
    return budget <= 0.0 || spend() <= budget;
  }

  /// Output values of exit tasks (port 0), keyed by task-id value; empty
  /// for timing-only runs.
  std::unordered_map<std::uint32_t, tasklib::Value> exit_outputs;

  /// Health-plane alerts (obs/health.hpp) that fired while this submission
  /// was in flight ([enqueued, completed]).  Empty when the plane is off or
  /// the run bypassed the submission pipeline.
  std::vector<obs::health::Alert> alerts;

  // --- causal analysis (obs/causal.hpp) -------------------------------------
  /// The report's causal view: tasks from outcomes, dependency edges from
  /// dag_edges, recovery marks from recoveries.  The report does not record
  /// individual transfers, so critical-path gaps resolve to wait/recovery
  /// here; the trace-based offline analysis (tools/vdce-inspect) refines
  /// them into transfer segments — the task chain and the makespan tiling
  /// are identical either way.
  [[nodiscard]] obs::causal::AppTrace causal_view() const;

  /// Critical path through the run: hops tile [exec_started, completed]
  /// exactly, so their durations sum to makespan().
  [[nodiscard]] obs::causal::CriticalPath critical_path() const {
    return obs::causal::critical_path(causal_view());
  }

  /// Per-host Gantt timelines with utilization and idle attribution.
  [[nodiscard]] obs::causal::Timeline timeline() const {
    return obs::causal::timeline(causal_view());
  }

  /// Human-readable narrative (per-task rows + summary + ASCII Gantt).
  [[nodiscard]] std::string describe(const afg::Afg& graph) const;
};

}  // namespace vdce::runtime
