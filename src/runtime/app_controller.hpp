// Application Controller (§4.1): per-host execution control.
//
// "The Application Controller sets up the execution environment and manages
// the services provided by interacting with the Data Manager.  After the
// Application Controller receives an execution request message from the
// Group Manager, it activates the Data Manager. ... When all the required
// acknowledgments are received an execution startup signal is sent."
//
// And the overload policy: "If the current load on any of these machines is
// more than a predefined threshold value, the Application Controller
// terminates the task execution on the machine and sends a task
// rescheduling request."  (Our rescheduling request travels to the origin
// Site Manager, which owns the application's allocation state; the paper
// routes it via the Group Manager — one hop we collapse, noted in
// DESIGN.md.)
#pragma once

#include "common/ids.hpp"
#include "net/fabric.hpp"
#include "runtime/core.hpp"
#include "runtime/data_manager.hpp"
#include "runtime/protocol.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

class AppController {
 public:
  AppController(RuntimeCore& core, common::HostId host, DataManager& dm)
      : core_(core), host_(host), dm_(dm) {}

  /// Begin periodic load monitoring of this machine.
  void start();
  void stop();

  void handle(const net::Message& message);

 private:
  void on_exec(const net::Message& message);
  void check_load();

  RuntimeCore& core_;
  common::HostId host_;
  DataManager& dm_;
  sim::TimerHandle timer_;
  bool started_ = false;
};

}  // namespace vdce::runtime
