#include "runtime/app_controller.hpp"

#include <any>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace vdce::runtime {

void AppController::start() {
  if (started_) return;
  started_ = true;
  timer_ = core_.engine().every(core_.options().controller_period,
                                [this] { check_load(); },
                                core_.options().controller_period);
}

void AppController::stop() { timer_.cancel(); }

void AppController::handle(const net::Message& message) {
  if (message.type == msg::kGmExec) {
    on_exec(message);
  } else if (message.type == msg::kSmStart) {
    const auto& signal = std::any_cast<const StartSignal&>(message.payload);
    dm_.start_app(signal.app);
  } else if (message.type == msg::kSmSuspend) {
    const auto& signal = std::any_cast<const SuspendSignal&>(message.payload);
    dm_.suspend(signal.app);
  } else if (message.type == msg::kSmResume) {
    const auto& signal = std::any_cast<const SuspendSignal&>(message.payload);
    dm_.resume(signal.app);
  }
}

void AppController::on_exec(const net::Message& message) {
  const auto& request = std::any_cast<const ExecRequest&>(message.payload);
  PlanPtr plan = request.plan;
  // Activate the Data Manager; once its channels are acknowledged, report
  // readiness to the origin Site Manager.
  dm_.activate(
      plan,
      [this, plan] {
        (void)core_.fabric().send(net::Message{
            host_, plan->origin, msg::kAcReady, wire::kSmall,
            std::any(ReadyNotice{plan->app, host_})});
      },
      request.pin);
}

void AppController::check_load() {
  const net::Host& h = core_.topology().host(host_);
  if (!h.state.up) return;
  if (h.state.cpu_load <= core_.options().overload_threshold) return;

  for (const DataManager::Aborted& aborted : dm_.abort_running()) {
    VDCE_LOG(kInfo, "app-ctrl", core_.now())
        << "host " << h.spec.name << " overloaded (load "
        << common::format_double(h.state.cpu_load, 2)
        << "); terminating task " << aborted.task.value()
        << " and requesting reschedule";
    core_.flight(obs::FlightCode::kOverload, host_.value(),
                 aborted.app.value(), aborted.task.value(), h.state.cpu_load);
    if (core_.metering()) {
      core_.meters().counter("recovery.overload_terminations").add();
    }
    core_.health_event(obs::health::kRecoveryActions,
                       static_cast<std::int64_t>(host_.value()),
                       static_cast<std::int64_t>(h.site.value()));
    if (core_.tracing()) {
      core_.trace_sink().instant(
          "recovery", "recovery.overload", core_.now(), host_.value(),
          {obs::arg("app", aborted.app.value()),
           obs::arg("task", aborted.task.value()),
           obs::arg("load", h.state.cpu_load)},
          obs::Causal{.app = aborted.app.value(),
                      .task = aborted.task.value()});
    }
    (void)core_.fabric().send(net::Message{
        host_, aborted.origin, msg::kAcOverload, wire::kSmall,
        std::any(OverloadNotice{aborted.app, aborted.task, host_,
                                h.state.cpu_load})});
  }
}

}  // namespace vdce::runtime
