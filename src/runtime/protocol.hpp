// Wire protocol of the VDCE runtime (Figure 4 plus §4.1/§4.2).
//
// Every interaction the paper describes is a typed message on the fabric:
//
//   Monitor daemon --mon.report--> Group Manager        (workload samples)
//   Group Manager  --gm.report--->  Site Manager        (significant changes)
//   Group Manager  --gm.echo----->  member hosts        (failure detection)
//   member host    --gm.echo_reply-> Group Manager
//   Group Manager  --gm.host_down-> Site Manager
//   origin SiteMgr --sm.afg------->  remote Site Managers (scheduling multicast)
//   remote SiteMgr --sm.bids------>  origin Site Manager  (host-selection output)
//   origin SiteMgr --sm.rat------->  involved Site Managers
//   Site Manager   --sm.rat_gm---->  group leaders
//   Group Manager  --gm.exec------>  Application Controllers
//   Data Manager   --dm.setup----->  peer Data Managers  (channel setup)
//   Data Manager   --dm.setup_ack->  requesting Data Manager
//   App Controller --ac.ready----->  origin Site Manager
//   origin SiteMgr --sm.start----->  Application Controllers (startup signal)
//   Data Manager   --dm.input----->  Data Managers        (staged file inputs)
//   Data Manager   --dm.data------>  Data Managers        (inter-task data)
//   Data Manager   --dm.resend---->  Data Managers        (recovery pulls)
//   App Controller --ac.task_done->  origin Site Manager
//   App Controller --ac.overload-->  origin Site Manager  (reschedule request)
//   Site Manager   --sm.host_down->  all Site Managers    (inter-site coord.)
//
// Payload structs are shared immutably (shared_ptr<const T>) where they are
// multicast, so a 400-task plan is not copied per destination.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "db/resource_perf.hpp"
#include "db/task_perf.hpp"
#include "sched/host_selection.hpp"
#include "sched/types.hpp"
#include "tasklib/registry.hpp"

namespace vdce::runtime {

// ---- message type tags ----------------------------------------------------
namespace msg {
inline constexpr const char* kMonReport = "mon.report";
inline constexpr const char* kGmReport = "gm.report";
inline constexpr const char* kGmEcho = "gm.echo";
inline constexpr const char* kGmEchoReply = "gm.echo_reply";
inline constexpr const char* kGmHostDown = "gm.host_down";
// The Site Manager echo-checks its group-leader machines the same way the
// Group Managers check their members — otherwise a dead leader would go
// undetected (leaders vouch for their members, nobody vouched for them).
inline constexpr const char* kSmEcho = "sm.echo";
inline constexpr const char* kSmEchoReply = "sm.echo_reply";
inline constexpr const char* kSmAfg = "sm.afg";
inline constexpr const char* kSmBids = "sm.bids";
inline constexpr const char* kSmRat = "sm.rat";
inline constexpr const char* kSmRatGm = "sm.rat_gm";
inline constexpr const char* kGmExec = "gm.exec";
inline constexpr const char* kDmSetup = "dm.setup";
inline constexpr const char* kDmSetupAck = "dm.setup_ack";
inline constexpr const char* kAcReady = "ac.ready";
inline constexpr const char* kSmStart = "sm.start";
inline constexpr const char* kDmInput = "dm.input";
inline constexpr const char* kDmData = "dm.data";
inline constexpr const char* kDmResend = "dm.resend";
inline constexpr const char* kAcTaskDone = "ac.task_done";
inline constexpr const char* kDmOutput = "dm.output";
inline constexpr const char* kAcOverload = "ac.overload";
inline constexpr const char* kSmHostDown = "sm.host_down";
inline constexpr const char* kSmSuspend = "sm.suspend";
inline constexpr const char* kSmResume = "sm.resume";
}  // namespace msg

// ---- monitoring payloads ---------------------------------------------------

struct MonReport {
  common::HostId host;
  db::WorkloadSample sample;
};

struct GmReport {
  std::vector<MonReport> changed;
};

struct HostDownNotice {
  common::HostId host;
};

struct EchoPacket {
  common::HostId leader;
  std::uint64_t seq = 0;
};

// ---- scheduling payloads ----------------------------------------------------

/// AFG multicast for remote host selection (Fig. 2 step 3).
struct AfgMulticast {
  common::AppId app;
  common::HostId reply_to;  ///< origin site's server host
  std::shared_ptr<const afg::Afg> graph;
};

/// A remote site's host-selection answer (Fig. 2 step 5).
struct BidsReply {
  common::AppId app;
  sched::HostSelectionOutput output;
};

// ---- execution payloads ------------------------------------------------------

/// The immutable execution plan built from the AFG plus the resource
/// allocation table; multicast to every involved daemon.
struct ExecutionPlan {
  common::AppId app;
  common::HostId origin;  ///< origin site's server host (the coordinator)
  afg::Afg graph;
  sched::ResourceAllocationTable rat;
  /// Task perf records by task id value (execution-time model input).
  std::vector<db::TaskPerfRecord> perf;
  /// Real kernels by task id value (may hold empty functions: timing-only).
  std::vector<tasklib::Kernel> kernels;
  /// Initial values for non-dataflow inputs: [task id value][port] -> Value.
  std::unordered_map<std::uint32_t, std::unordered_map<int, tasklib::Value>>
      initial_inputs;

  /// Non-aborting lookup: null when `t` has no assignment (a malformed or
  /// partially rebuilt table).  Prefer this on paths fed by the network.
  [[nodiscard]] const sched::Assignment* find_assignment(afg::TaskId t) const {
    for (const sched::Assignment& a : rat.assignments) {
      if (a.task == t) return &a;
    }
    return nullptr;
  }

  [[nodiscard]] const sched::Assignment& assignment(afg::TaskId t) const {
    if (const sched::Assignment* a = find_assignment(t)) return *a;
    // Every task is assigned by construction.
    std::abort();
  }
};

using PlanPtr = std::shared_ptr<const ExecutionPlan>;

struct RatMulticast {
  PlanPtr plan;
};

struct ExecRequest {
  PlanPtr plan;
  common::HostId target;
  /// When valid, this task is *pinned*: the Application Controller must not
  /// overload-kill it again (the coordinator's attempt cap was reached —
  /// without this, sustained high load livelocks long tasks through endless
  /// kill/restart cycles).
  afg::TaskId pin{};
};

/// Channel setup handshake (§4.2: communication proxy + ACK).
struct ChannelSetup {
  common::AppId app;
  common::HostId from;
  common::ChannelId channel;
};

struct ChannelSetupAck {
  common::AppId app;
  common::HostId from;
  common::ChannelId channel;
};

struct ReadyNotice {
  common::AppId app;
  common::HostId host;
};

struct StartSignal {
  common::AppId app;
};

/// Data arriving on an input port (either staged file input or a parent
/// task's dataflow output).
struct DataDelivery {
  common::AppId app;
  afg::TaskId to_task;
  int to_port = 0;
  tasklib::Value value;  ///< empty for timing-only runs
};

/// Recovery: ask a parent's Data Manager to resend an edge to a new host.
struct ResendRequest {
  common::AppId app;
  afg::TaskId from_task;
  int from_port = 0;
  afg::TaskId to_task;
  int to_port = 0;
  common::HostId new_host;
};

/// A produced output file travelling back to the user's file space (the
/// I/O service writes it into the origin site's object store) — Figure 1's
/// "Output: /users/VDCE/user_k/vector_X.dat".
struct OutputFile {
  common::AppId app;
  afg::TaskId task;
  std::string path;
  double size_bytes = 0.0;
  tasklib::Value value;
};

struct TaskDone {
  common::AppId app;
  afg::TaskId task;
  common::HostId host;
  /// Actual execution window on the host (the notification itself takes
  /// additional network time to reach the coordinator).
  common::SimTime started = 0.0;
  common::SimTime finished = 0.0;
  common::SimDuration elapsed = 0.0;
  bool failed = false;        ///< kernel raised an error
  std::string error;
  /// Port-0 output value when the task is an exit node with a real kernel
  /// (lets the coordinator assemble application results).
  tasklib::Value exit_output;
};

struct OverloadNotice {
  common::AppId app;
  afg::TaskId task;  ///< the task that was terminated
  common::HostId host;
  double observed_load = 0.0;
};

struct SuspendSignal {
  common::AppId app;
};

// ---- representative wire sizes (bytes) --------------------------------------
// Small control messages are charged a fixed header-ish size; structured
// ones scale with content so the monitoring-overhead bench (E4) sees the
// real traffic trade-off.
namespace wire {
inline constexpr double kEcho = 64;
inline constexpr double kSmall = 128;
inline double mon_report() { return 160; }
inline double gm_report(std::size_t changed) {
  return 96 + 64 * static_cast<double>(changed);
}
inline double afg(const afg::Afg& graph) {
  return 256 + 192 * static_cast<double>(graph.task_count()) +
         48 * static_cast<double>(graph.edges().size());
}
inline double bids(const sched::HostSelectionOutput& output) {
  return 96 + 64 * static_cast<double>(output.bids.size());
}
inline double rat(const sched::ResourceAllocationTable& table) {
  return 128 + 96 * static_cast<double>(table.assignments.size());
}
}  // namespace wire

}  // namespace vdce::runtime
