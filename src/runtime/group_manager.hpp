// Group Manager (§4.1): runs on each group-leader machine.
//
// Two responsibilities from the paper:
//  1. Workload aggregation with a significant-change filter: "The Group
//     Manager sends to the Site Manager only the workloads of the
//     resources that have changed considerably from the previous
//     measurement."
//  2. Failure detection: "periodically check all hosts in the group by
//     sending echo packets to hosts and waiting for their responses.  When
//     a failure of a host is detected, the Group Manager passes this
//     information to the Site Manager."
//
// Plus its Fig. 4 role in execution fan-out: on receiving the resource
// allocation table from the Site Manager, it forwards an execution request
// with the relevant plan to the Application Controller of each involved
// member machine.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.hpp"
#include "net/fabric.hpp"
#include "runtime/core.hpp"
#include "runtime/protocol.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

class GroupManager {
 public:
  GroupManager(RuntimeCore& core, common::GroupId group, common::HostId leader,
               common::HostId site_server)
      : core_(core), group_(group), leader_(leader), site_server_(site_server) {}

  void start();
  void stop();

  void handle(const net::Message& message);

  /// Observability for the failure-detection bench.
  [[nodiscard]] std::uint64_t reports_received() const noexcept {
    return reports_received_;
  }
  [[nodiscard]] std::uint64_t reports_forwarded() const noexcept {
    return reports_forwarded_;
  }

 private:
  void on_mon_report(const net::Message& message);
  void on_echo_reply(const net::Message& message);
  void on_rat(const net::Message& message);
  void echo_tick();

  RuntimeCore& core_;
  common::GroupId group_;
  common::HostId leader_;
  common::HostId site_server_;
  sim::TimerHandle echo_timer_;
  bool started_ = false;

  /// Last value actually forwarded per host, for the change filter.
  std::unordered_map<common::HostId, double> last_forwarded_load_;
  /// Hosts that replied to the current echo round.
  std::unordered_set<common::HostId> echo_replied_;
  /// Hosts already reported down (avoid repeat notifications).
  std::unordered_set<common::HostId> reported_down_;
  std::uint64_t echo_seq_ = 0;
  bool echo_outstanding_ = false;

  std::uint64_t reports_received_ = 0;
  std::uint64_t reports_forwarded_ = 0;
};

}  // namespace vdce::runtime
