#include "runtime/data_manager.hpp"

#include <algorithm>
#include <any>
#include <cassert>
#include <cmath>
#include <set>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace vdce::runtime {

namespace {

/// Does `assignment` place the task's primary execution on `host`?
bool primary_here(const sched::Assignment& a, common::HostId host) {
  return a.primary_host() == host;
}

}  // namespace

void DataManager::activate(const PlanPtr& plan,
                           std::function<void()> on_channels_ready,
                           afg::TaskId pin) {
  AppState& state = apps_[plan->app.value()];
  const bool first_activation = (state.plan == nullptr);
  const bool was_started = state.started;
  state.plan = plan;  // newer plan wins (reschedules ship updated tables)
  if (pin.valid()) state.unkillable.insert(pin.value());
  merge_local_tasks(state);

  if (first_activation) {
    state.on_ready = std::move(on_channels_ready);
    setup_channels(state);
    if (state.pending_setups.empty() && !state.ready_fired) fire_ready(state);
  } else if (was_started) {
    // Reschedule merge on an already-running app: newly ready tasks may
    // start immediately.
    maybe_start(plan->app);
  } else {
    // Re-activation before start: the coordinator re-dispatched gm.exec
    // (its copy of our readiness report may have been lost).  Don't redo
    // the handshake, but honour the new callback — if channels are already
    // up, re-announce readiness immediately (the coordinator's ready set
    // dedupes).
    if (on_channels_ready) state.on_ready = std::move(on_channels_ready);
    if (state.ready_fired && state.on_ready) state.on_ready();
  }
}

void DataManager::fire_ready(AppState& state) {
  state.ready_fired = true;
  if (state.on_ready) state.on_ready();
}

void DataManager::merge_local_tasks(AppState& state) {
  const ExecutionPlan& plan = *state.plan;
  for (const sched::Assignment& a : plan.rat.assignments) {
    if (!primary_here(a, host_)) continue;
    if (state.tasks.contains(a.task.value())) continue;
    const afg::TaskNode& node = plan.graph.task(a.task);

    LocalTask task;
    task.id = a.task;
    task.port_filled.assign(static_cast<std::size_t>(node.in_ports()), false);
    task.inputs.assign(static_cast<std::size_t>(node.in_ports()),
                       tasklib::Value{});
    // Expected inputs: one per dataflow edge plus one per staged file input.
    for (const afg::Edge& e : plan.graph.in_edges(a.task)) {
      (void)e;
      ++task.pending;
    }
    for (const afg::FileSpec& f : node.props.inputs) {
      if (!f.dataflow && !f.path.empty()) ++task.pending;
    }
    const bool ready_now = task.pending == 0;
    state.tasks.emplace(a.task.value(), std::move(task));
    if (ready_now) {
      state.tasks[a.task.value()].queued = true;
      state.queue.push_back(a.task.value());
    }
  }
}

void DataManager::setup_channels(AppState& state) {
  const ExecutionPlan& plan = *state.plan;
  // One proxy/channel per distinct remote peer host that any local task
  // sends to (§4.2: proxy activation + ack).
  std::set<common::HostId> peers;
  for (const auto& [task_value, task] : state.tasks) {
    for (const afg::Edge& e : plan.graph.out_edges(task.id)) {
      const sched::Assignment* a = plan.find_assignment(e.to);
      if (a == nullptr) continue;  // consumer unassigned: nothing to set up
      common::HostId dst = a->primary_host();
      if (dst != host_) peers.insert(dst);
    }
  }
  common::ChannelId::value_type channel_seq = 0;
  for (common::HostId peer : peers) {
    state.pending_setups[peer] =
        AppState::PendingSetup{common::ChannelId(channel_seq++), 0};
  }
  for (common::HostId peer : peers) send_setup(plan.app, peer);
}

void DataManager::send_setup(common::AppId app, common::HostId peer) {
  auto it = apps_.find(app.value());
  if (it == apps_.end()) return;
  AppState& state = it->second;
  auto pending = state.pending_setups.find(peer);
  if (pending == state.pending_setups.end()) return;  // acked meanwhile

  (void)core_.fabric().send(net::Message{
      host_, peer, msg::kDmSetup, wire::kSmall,
      std::any(ChannelSetup{app, host_, pending->second.channel})});

  // Retry with exponential backoff: the setup or its ack may be lost to a
  // partition or a transient-loss window; a bounded number of resends keeps
  // readiness from wedging on a permanently unreachable peer.
  const RuntimeOptions& opt = core_.options();
  if (opt.channel_retry_timeout <= 0.0) return;
  const int attempt = pending->second.resends;
  const common::SimDuration wait =
      opt.channel_retry_timeout *
      std::pow(std::max(opt.channel_backoff, 1.0), attempt);
  core_.engine().schedule(wait, [this, app, peer] {
    auto app_it = apps_.find(app.value());
    if (app_it == apps_.end()) return;
    AppState& st = app_it->second;
    auto p = st.pending_setups.find(peer);
    if (p == st.pending_setups.end()) return;  // acked: nothing to do
    if (!core_.topology().host_up(host_)) return;
    if (p->second.resends >= core_.options().channel_max_retries) {
      // Abandon the peer: report readiness anyway so the application can
      // proceed; if the peer matters, task-level recovery takes over later.
      st.pending_setups.erase(p);
      if (core_.metering()) {
        core_.meters().counter("recovery.channel_abandoned").add();
      }
      core_.health_event(
          obs::health::kRecoveryActions,
          static_cast<std::int64_t>(host_.value()),
          static_cast<std::int64_t>(core_.topology().host(host_).site.value()));
      if (core_.tracing()) {
        core_.trace_sink().instant(
            "recovery", "recovery.channel_abandoned", core_.now(),
            host_.value(),
            {obs::arg("app", app.value()), obs::arg("peer", peer.value())},
            obs::Causal{.app = app.value()});
      }
      if (st.pending_setups.empty() && !st.ready_fired) fire_ready(st);
      return;
    }
    ++p->second.resends;
    core_.flight(obs::FlightCode::kChannelRetry, host_.value(), app.value(),
                 static_cast<std::uint32_t>(p->second.resends));
    if (core_.metering()) {
      core_.meters().counter("recovery.channel_retries").add();
    }
    core_.health_event(
        obs::health::kRecoveryActions,
        static_cast<std::int64_t>(host_.value()),
        static_cast<std::int64_t>(core_.topology().host(host_).site.value()));
    if (core_.tracing()) {
      core_.trace_sink().instant(
          "recovery", "recovery.channel_retry", core_.now(), host_.value(),
          {obs::arg("app", app.value()), obs::arg("peer", peer.value()),
           obs::arg("attempt", p->second.resends)},
          obs::Causal{.app = app.value()});
    }
    send_setup(app, peer);
  });
}

void DataManager::start_app(common::AppId app) {
  auto it = apps_.find(app.value());
  if (it == apps_.end()) return;
  AppState& state = it->second;
  if (state.started) {
    // A repeated sm.start is the coordinator's stall recovery probing us:
    // re-send every completion notice it may have missed (at-least-once;
    // the coordinator dedupes on task id).
    for (const TaskDone& done : state.done_log) {
      (void)core_.fabric().send(net::Message{host_, state.plan->origin,
                                             msg::kAcTaskDone, wire::kSmall,
                                             std::any(done)});
    }
  }
  state.started = true;
  maybe_start(app);
}

void DataManager::suspend(common::AppId app) {
  auto it = apps_.find(app.value());
  if (it != apps_.end()) it->second.suspended = true;
}

void DataManager::resume(common::AppId app) {
  auto it = apps_.find(app.value());
  if (it == apps_.end()) return;
  it->second.suspended = false;
  maybe_start(app);
}

std::vector<DataManager::Aborted> DataManager::abort_running() {
  std::vector<Aborted> aborted;
  for (auto& [app_value, state] : apps_) {
    if (!state.busy) continue;
    if (state.unkillable.contains(state.running_task)) continue;
    auto task_it = state.tasks.find(state.running_task);
    assert(task_it != state.tasks.end());
    LocalTask& task = task_it->second;

    state.completion.cancel();
    state.busy = false;
    task.running = false;
    const sched::Assignment& a = state.plan->assignment(task.id);
    for (common::HostId h : a.hosts) {
      core_.topology().add_cpu_load(h, -1.0);
      --core_.topology().host(h).state.running_tasks;
    }

    aborted.push_back(Aborted{state.plan->app, task.id, state.plan->origin});
    // The task leaves this host; the coordinator will re-place it.
    state.tasks.erase(task_it);
  }
  // The machine is free again: let any queued work of the affected
  // applications proceed (they would otherwise wait forever).
  for (const Aborted& a : aborted) maybe_start(a.app);
  return aborted;
}

void DataManager::remove_task(common::AppId app, afg::TaskId task) {
  auto it = apps_.find(app.value());
  if (it == apps_.end()) return;
  AppState& state = it->second;
  auto t = state.tasks.find(task.value());
  if (t == state.tasks.end()) return;
  if (t->second.running) {
    state.completion.cancel();
    state.busy = false;
    const sched::Assignment& a = state.plan->assignment(task);
    for (common::HostId h : a.hosts) {
      core_.topology().add_cpu_load(h, -1.0);
      --core_.topology().host(h).state.running_tasks;
    }
  }
  if (t->second.queued) {
    state.queue.erase(std::remove(state.queue.begin(), state.queue.end(),
                                  task.value()),
                      state.queue.end());
  }
  state.tasks.erase(t);
  maybe_start(app);  // the machine may have been freed for queued work
}

void DataManager::maybe_start(common::AppId app) {
  auto it = apps_.find(app.value());
  if (it == apps_.end()) return;
  AppState& state = it->second;
  if (!state.started || state.suspended || state.busy || state.queue.empty()) {
    return;
  }
  const std::uint32_t task_value = state.queue.front();
  state.queue.pop_front();
  auto task_it = state.tasks.find(task_value);
  if (task_it == state.tasks.end()) {
    maybe_start(app);  // was removed while queued
    return;
  }
  LocalTask& task = task_it->second;
  task.queued = false;
  task.running = true;
  state.busy = true;
  state.running_task = task_value;
  state.run_started = core_.now();
  core_.flight(obs::FlightCode::kTaskStart, host_.value(),
               app.value(), task_value);

  const ExecutionPlan& plan = *state.plan;
  const sched::Assignment& a = plan.assignment(task.id);
  // Draw this run's noise once; progress rate is re-read each quantum so
  // load changes mid-run stretch or shrink the remaining time.
  const double cv = core_.options().exec_noise_cv;
  task.noise_factor = cv > 0.0 ? core_.rng().normal(1.0, cv, 0.05) : 1.0;
  task.remaining_mflop =
      std::max(plan.perf[task_value].computation_mflop, 1e-3) *
      task.noise_factor;
  for (common::HostId h : a.hosts) {
    core_.topology().add_cpu_load(h, +1.0);
    ++core_.topology().host(h).state.running_tasks;
  }

  VDCE_LOG(kDebug, "data-mgr", core_.now())
      << "host " << host_.value() << " starts "
      << plan.graph.task(task.id).instance_name;

  run_quantum(app, task_value);
}

void DataManager::run_quantum(common::AppId app, std::uint32_t task_value) {
  AppState& state = apps_.at(app.value());
  LocalTask& task = state.tasks.at(task_value);
  const ExecutionPlan& plan = *state.plan;
  const sched::Assignment& a = plan.assignment(task.id);

  const double rate = core_.ground_truth().rate_mflops(
      plan.perf[task_value], a.hosts, /*exclude_own_share=*/true);
  const common::SimDuration dt =
      std::min(task.remaining_mflop / rate, core_.options().exec_quantum);
  state.completion =
      core_.engine().schedule(dt, [this, app, task_value, rate, dt] {
        // A dead host computes nothing; its events are inert.
        if (!core_.topology().host_up(host_)) return;
        AppState& st = apps_.at(app.value());
        LocalTask& t = st.tasks.at(task_value);
        t.remaining_mflop -= rate * dt;
        if (t.remaining_mflop <= 1e-9) {
          finish_task(app, task_value);
        } else {
          run_quantum(app, task_value);
        }
      });
}

void DataManager::finish_task(common::AppId app, std::uint32_t task_value) {
  // A dead host computes nothing; its events are inert.
  if (!core_.topology().host_up(host_)) return;

  auto it = apps_.find(app.value());
  assert(it != apps_.end());
  AppState& state = it->second;
  auto task_it = state.tasks.find(task_value);
  assert(task_it != state.tasks.end());
  LocalTask& task = task_it->second;

  const ExecutionPlan& plan = *state.plan;
  const sched::Assignment& a = plan.assignment(task.id);
  for (common::HostId h : a.hosts) {
    core_.topology().add_cpu_load(h, -1.0);
    --core_.topology().host(h).state.running_tasks;
  }
  state.busy = false;
  task.running = false;
  task.done = true;
  const common::SimDuration elapsed = core_.now() - state.run_started;

  const afg::TaskNode& node = plan.graph.task(task.id);
  if (core_.metering()) {
    core_.meters().counter("exec.tasks_completed").add();
    core_.meters().histogram("exec.task_seconds").add(elapsed);
  }
  core_.flight(obs::FlightCode::kTaskDone, host_.value(), plan.app.value(),
               task_value, elapsed);
  if (core_.tracing()) {
    // Causal identity: which task this span is, and which AFG parents feed
    // it — the task->task edges of the causal DAG (obs/causal.hpp).
    obs::Causal causal{.app = plan.app.value(), .task = task_value};
    for (afg::TaskId parent : plan.graph.parents(task.id)) {
      causal.deps.push_back(parent.value());
    }
    core_.trace_sink().span(
        "exec", "exec.task", state.run_started, core_.now(), host_.value(),
        {obs::arg("task", node.instance_name),
         obs::arg("app", plan.app.value()),
         obs::arg("host", host_.value())},
        std::move(causal));
  }

  // Run the real kernel, if the application carries one.
  std::vector<tasklib::Value> outputs(
      static_cast<std::size_t>(node.out_ports()));
  const tasklib::Kernel& kernel = plan.kernels[task_value];
  if (kernel) {
    auto result = kernel(task.inputs);
    if (!result) {
      send_task_done(state, task.id, elapsed, /*failed=*/true,
                     result.error().to_string(), {});
      maybe_start(app);
      return;
    }
    for (std::size_t p = 0; p < result->size() && p < outputs.size(); ++p) {
      outputs[p] = (*result)[p];
    }
  }
  state.outputs[task_value] = outputs;

  // Ship each out-edge to its consumer's current host (honouring redirects).
  for (const afg::Edge& e : plan.graph.out_edges(task.id)) {
    send_edge(state, e,
              outputs[static_cast<std::size_t>(e.from_port)]);
  }

  // Output *files* travel back to the user's file space at the origin (the
  // I/O service stores them; Fig. 1's vector_X.dat).
  for (int p = 0; p < node.out_ports(); ++p) {
    const afg::FileSpec& f = node.props.outputs[static_cast<std::size_t>(p)];
    if (f.path.empty()) continue;
    (void)core_.fabric().send(net::Message{
        host_, plan.origin, msg::kDmOutput, std::max(f.size_bytes, 64.0),
        std::any(OutputFile{plan.app, task.id, f.path, f.size_bytes,
                            outputs[static_cast<std::size_t>(p)]})});
  }

  // Exit tasks return their port-0 value with the completion notice.
  tasklib::Value exit_output;
  if (plan.graph.children(task.id).empty() && !outputs.empty()) {
    exit_output = outputs.front();
  }
  send_task_done(state, task.id, elapsed, false, "", std::move(exit_output));
  maybe_start(app);
}

void DataManager::send_edge(AppState& state, const afg::Edge& edge,
                            const tasklib::Value& value) {
  const ExecutionPlan& plan = *state.plan;
  EdgeKey key{edge.from.value(), edge.from_port, edge.to.value()};
  common::HostId dst;
  if (auto r = state.redirects.find(key); r != state.redirects.end()) {
    dst = r->second;
  } else {
    const sched::Assignment* a = plan.find_assignment(edge.to);
    if (a == nullptr) return;  // consumer unassigned: drop, resend heals later
    dst = a->primary_host();
  }
  double bytes = std::max(plan.graph.edge_bytes(edge), 64.0);
  (void)core_.fabric().send(net::Message{
      host_, dst, msg::kDmData, bytes,
      std::any(DataDelivery{plan.app, edge.to, edge.to_port, value}),
      // Causal tag: this transfer feeds `edge.to`, produced by `edge.from`
      // (the transfer->consumer edge of the causal DAG).
      net::MessageCause{plan.app.value(), edge.to.value(),
                        edge.from.value()}});
}

void DataManager::send_task_done(AppState& state, afg::TaskId task,
                                 common::SimDuration elapsed, bool failed,
                                 const std::string& error,
                                 tasklib::Value exit_output) {
  TaskDone done;
  done.app = state.plan->app;
  done.task = task;
  done.host = host_;
  done.started = core_.now() - elapsed;
  done.finished = core_.now();
  done.elapsed = elapsed;
  done.failed = failed;
  done.error = error;
  done.exit_output = std::move(exit_output);
  // Keep a copy for at-least-once re-delivery on repeated sm.start.
  state.done_log.push_back(done);
  (void)core_.fabric().send(net::Message{host_, state.plan->origin,
                                         msg::kAcTaskDone, wire::kSmall,
                                         std::any(std::move(done))});
}

void DataManager::deliver(AppState& state, afg::TaskId task, int port,
                          const tasklib::Value& value, common::AppId app) {
  auto task_it = state.tasks.find(task.value());
  if (task_it == state.tasks.end()) return;  // task moved away: stale delivery
  LocalTask& t = task_it->second;
  auto p = static_cast<std::size_t>(port);
  if (p >= t.port_filled.size() || t.port_filled[p]) return;  // duplicate
  t.port_filled[p] = true;
  t.inputs[p] = value;
  if (--t.pending == 0 && !t.done && !t.running && !t.queued) {
    t.queued = true;
    state.queue.push_back(task.value());
    maybe_start(app);
  }
}

void DataManager::handle(const net::Message& message) {
  if (message.type == msg::kDmSetup) {
    const auto& setup = std::any_cast<const ChannelSetup&>(message.payload);
    (void)core_.fabric().send(net::Message{
        host_, setup.from, msg::kDmSetupAck, wire::kSmall,
        std::any(ChannelSetupAck{setup.app, host_, setup.channel})});
    return;
  }
  if (message.type == msg::kDmSetupAck) {
    const auto& ack = std::any_cast<const ChannelSetupAck&>(message.payload);
    auto it = apps_.find(ack.app.value());
    if (it == apps_.end()) return;
    AppState& state = it->second;
    state.pending_setups.erase(ack.from);  // duplicate acks are no-ops
    if (state.pending_setups.empty() && !state.ready_fired) fire_ready(state);
    return;
  }
  if (message.type == msg::kDmData || message.type == msg::kDmInput) {
    const auto& delivery = std::any_cast<const DataDelivery&>(message.payload);
    auto it = apps_.find(delivery.app.value());
    if (it == apps_.end()) return;  // app unknown here (host never involved)
    deliver(it->second, delivery.to_task, delivery.to_port, delivery.value,
            delivery.app);
    return;
  }
  if (message.type == msg::kDmResend) {
    const auto& req = std::any_cast<const ResendRequest&>(message.payload);
    auto it = apps_.find(req.app.value());
    if (it == apps_.end()) return;
    AppState& state = it->second;
    state.redirects[EdgeKey{req.from_task.value(), req.from_port,
                            req.to_task.value()}] = req.new_host;
    auto out = state.outputs.find(req.from_task.value());
    if (out != state.outputs.end()) {
      // Producer already finished: re-deliver immediately.
      const ExecutionPlan& plan = *state.plan;
      double bytes = 64.0;
      for (const afg::Edge& e : plan.graph.out_edges(req.from_task)) {
        if (e.to == req.to_task && e.from_port == req.from_port) {
          bytes = std::max(plan.graph.edge_bytes(e), 64.0);
          break;
        }
      }
      (void)core_.fabric().send(net::Message{
          host_, req.new_host, msg::kDmData, bytes,
          std::any(DataDelivery{
              req.app, req.to_task, req.to_port,
              out->second[static_cast<std::size_t>(req.from_port)]}),
          net::MessageCause{req.app.value(), req.to_task.value(),
                            req.from_task.value()}});
    }
    return;
  }
}

}  // namespace vdce::runtime
