// HostAgent: the per-host message dispatcher ("node daemon").
//
// The fabric delivers every message for a host to one handler; the agent
// demultiplexes by message type to the daemons resident on that machine.
// Every host runs a Monitor daemon, a Data Manager, and an Application
// Controller; group-leader machines additionally run a Group Manager; the
// site's VDCE Server machine additionally runs the Site Manager (§4.1,
// Fig. 4).
#pragma once

#include <memory>

#include "common/ids.hpp"
#include "runtime/app_controller.hpp"
#include "runtime/core.hpp"
#include "runtime/data_manager.hpp"
#include "runtime/group_manager.hpp"
#include "runtime/monitor.hpp"
#include "runtime/site_manager.hpp"

namespace vdce::runtime {

class HostAgent {
 public:
  /// Build the agent for `host`.  Roles are derived from the topology: the
  /// group leader gets a GroupManager, the site server a SiteManager.
  HostAgent(RuntimeCore& core, common::HostId host);

  HostAgent(const HostAgent&) = delete;
  HostAgent& operator=(const HostAgent&) = delete;

  /// Bind the fabric handler and start all resident daemons.
  void start();
  void stop();

  /// Extension services (e.g. the DSM runtime) can claim message types the
  /// core daemons do not know.  Extensions are consulted first; returning
  /// true consumes the message.
  using Extension = std::function<bool(const net::Message&)>;
  void add_extension(Extension extension) {
    extensions_.push_back(std::move(extension));
  }

  [[nodiscard]] common::HostId host() const noexcept { return host_; }
  [[nodiscard]] SiteManager* site_manager() noexcept {
    return site_manager_.get();
  }
  [[nodiscard]] GroupManager* group_manager() noexcept {
    return group_manager_.get();
  }
  [[nodiscard]] DataManager& data_manager() noexcept { return data_manager_; }

 private:
  void dispatch(const net::Message& message);

  RuntimeCore& core_;
  common::HostId host_;
  MonitorDaemon monitor_;
  DataManager data_manager_;
  AppController app_controller_;
  std::unique_ptr<GroupManager> group_manager_;
  std::unique_ptr<SiteManager> site_manager_;
  std::vector<Extension> extensions_;
  bool started_ = false;
};

}  // namespace vdce::runtime
