// User-requested runtime services (§4.2): "I/O service, console service,
// and visualization service."
//
//  * I/O service — "provides either file I/O or URL I/O for the inputs of
//    the application tasks."  ObjectStore is the user's VDCE file space at
//    a site: paths like "/users/VDCE/user_k/matrix_A.dat" or URLs like
//    "http://data.example/sensor0" resolve to stored values whose sizes are
//    charged to the network when the coordinator stages them.
//  * Console service — "the user can suspend and restart the application
//    execution": thin verbs over the origin Site Manager.
//  * Visualization service — "provides application performance and workload
//    visualizations": samples live host loads on the simulation clock and
//    renders ASCII workload traces (the execution Gantt lives on
//    ExecutionReport).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "common/strings.hpp"
#include "net/topology.hpp"
#include "runtime/core.hpp"
#include "runtime/site_manager.hpp"
#include "sim/engine.hpp"
#include "tasklib/registry.hpp"

namespace vdce::runtime {

/// A stored user object: its value (for real-kernel runs) and its size on
/// the wire.
struct StoredObject {
  tasklib::Value value;
  double size_bytes = 0.0;
};

class ObjectStore {
 public:
  /// Store or replace; `path` may be a file path or a URL.
  void put(const std::string& path, tasklib::Value value, double size_bytes);

  [[nodiscard]] common::Expected<StoredObject> get(const std::string& path) const;
  [[nodiscard]] bool contains(const std::string& path) const {
    return objects_.contains(path);
  }
  [[nodiscard]] static bool is_url(const std::string& path) {
    return common::starts_with(path, "http://") ||
           common::starts_with(path, "https://");
  }
  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }

 private:
  std::map<std::string, StoredObject> objects_;
};

/// Console service: suspend/resume a running application.
class ConsoleService {
 public:
  explicit ConsoleService(SiteManager& origin) : origin_(origin) {}
  void suspend(common::AppId app) { origin_.suspend_application(app); }
  void resume(common::AppId app) { origin_.resume_application(app); }

 private:
  SiteManager& origin_;
};

/// Visualization service: periodic sampling of every host's true load.
class VisualizationService {
 public:
  explicit VisualizationService(RuntimeCore& core) : core_(core) {}

  void start(common::SimDuration period);
  void stop();

  struct Sample {
    common::SimTime time;
    std::vector<double> loads;  ///< by host id
  };
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// ASCII per-host load trace over the sampling window.
  [[nodiscard]] std::string render_workload(std::size_t width = 60) const;

 private:
  RuntimeCore& core_;
  sim::TimerHandle timer_;
  std::vector<Sample> samples_;
};

}  // namespace vdce::runtime
