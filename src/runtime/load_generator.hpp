// Background load dynamics.
//
// VDCE targets *non-dedicated* networked resources: other users' jobs come
// and go underneath the scheduler.  The generator gives every host a
// mean-reverting random-walk load (an Ornstein–Uhlenbeck-style process,
// clamped at zero) plus optional injected spikes, producing exactly the
// conditions the monitoring pipeline (E4), prediction error (E3), and
// overload-rescheduling (E6) experiments need.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

struct LoadGeneratorOptions {
  common::SimDuration period = 0.5;  ///< update interval
  double mean_load = 0.4;            ///< long-run mean per host
  double reversion = 0.2;            ///< pull toward the mean per step
  double volatility = 0.15;          ///< per-step noise stddev
};

class BackgroundLoadGenerator {
 public:
  BackgroundLoadGenerator(sim::Engine& engine, net::Topology& topology,
                          common::Rng rng, LoadGeneratorOptions options = {})
      : engine_(engine), topology_(topology), rng_(rng), options_(options) {}

  /// Start perturbing every host's background load.
  void start();
  void stop();

  /// Add `amount` load to a host now, removing it after `duration` — an
  /// external job arriving (drives the E6 rescheduling experiment).
  void inject_spike(common::HostId host, double amount,
                    common::SimDuration duration);

 private:
  void step();

  sim::Engine& engine_;
  net::Topology& topology_;
  common::Rng rng_;
  LoadGeneratorOptions options_;
  sim::TimerHandle timer_;
  /// Background component per host (VDCE task load is layered on top by
  /// the Data Manager, so the generator must only touch its own share).
  std::vector<double> background_;
};

}  // namespace vdce::runtime
