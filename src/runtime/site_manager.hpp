// Site Manager (§1, §3, §4.1): the server software on each site's VDCE
// Server machine.  It "handles the inter-site communications and bridges
// the VDCE modules to the site databases."
//
// Repository maintenance — "periodically updates the resource-performance
// database ... with the monitoring information ... and it updates the
// task-performance database with the execution time after an application
// execution is completed":
//   * gm.report   -> ResourcePerformanceDb::record_workload
//   * gm.host_down-> ResourcePerformanceDb::set_host_up(false), plus an
//                    sm.host_down broadcast to peer Site Managers (the
//                    paper's "inter-site coordination").
//   * ac.task_done-> TaskPerformanceDb::record_execution (measured times
//                    sharpen future predictions, E3).
//
// Distributed scheduling (Fig. 2 over the fabric): the origin Site Manager
// multicasts the AFG (sm.afg) to the k nearest sites, each remote Site
// Manager runs the Host Selection Algorithm against its own repository and
// replies (sm.bids), and the origin runs the assignment phase when all
// replies arrive.
//
// Execution coordination (Fig. 4): multicast the resource allocation table
// (sm.rat -> involved sites -> sm.rat_gm -> group leaders -> gm.exec ->
// Application Controllers), collect ac.ready from every involved host,
// stage file inputs (dm.input), send the startup signal (sm.start), track
// ac.task_done, and drive recovery on ac.overload / host failures — the
// coordinator re-places tasks, ships an updated plan, and issues dm.resend
// pulls so moved tasks receive their inputs at the new machine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "net/fabric.hpp"
#include "runtime/core.hpp"
#include "runtime/execution.hpp"
#include "runtime/protocol.hpp"
#include "sched/site_scheduler.hpp"
#include "sim/engine.hpp"

namespace vdce::runtime {

class SiteManager {
 public:
  SiteManager(RuntimeCore& core, common::SiteId site, common::HostId server)
      : core_(core), site_(site), server_(server) {}

  void start();
  void stop();

  void handle(const net::Message& message);

  // --- origin-side APIs (called by the environment façade) ----------------

  using ScheduleCallback =
      std::function<void(common::Expected<sched::ResourceAllocationTable>)>;

  /// Fig. 2 over the fabric: multicast the AFG, gather bids, assign.  The
  /// callback fires (in simulated time) once the table is ready.
  void schedule_application(common::AppId app,
                            std::shared_ptr<const afg::Afg> graph,
                            sched::SchedulingPolicy options,
                            ScheduleCallback callback);

  using ReportCallback = std::function<void(ExecutionReport)>;

  /// Launch an application whose allocation table is already decided.
  /// `kernels` and `initial_inputs` may be empty (timing-only run).
  /// `budget` is the user's spending cap in G$ (docs/ECONOMY.md); 0 means
  /// unconstrained.  A positive budget gates recovery re-placements (a
  /// candidate that would push the quoted spend past it is skipped) and
  /// fills the report's spend quote on completion.
  void execute_application(
      common::AppId app, afg::Afg graph, sched::ResourceAllocationTable rat,
      std::vector<db::TaskPerfRecord> perf, std::vector<tasklib::Kernel> kernels,
      std::unordered_map<std::uint32_t, std::unordered_map<int, tasklib::Value>>
          initial_inputs,
      ReportCallback callback, double budget = 0.0);

  /// Console service verbs for a running application.
  void suspend_application(common::AppId app);
  void resume_application(common::AppId app);

  /// I/O service hook: where arriving output files (dm.output) are written.
  /// The environment points this at the user object store.
  using OutputSink =
      std::function<void(const std::string& path, tasklib::Value value,
                         double size_bytes)>;
  void set_output_sink(OutputSink sink) { output_sink_ = std::move(sink); }

  [[nodiscard]] common::SiteId site() const noexcept { return site_; }
  [[nodiscard]] common::HostId server() const noexcept { return server_; }

 private:
  struct PendingSchedule {
    std::shared_ptr<const afg::Afg> graph;
    sched::SchedulingPolicy options;
    std::vector<common::SiteId> sites;  ///< candidate set, local first
    std::map<common::SiteId, sched::HostSelectionOutput> outputs;
    ScheduleCallback callback;
    common::SimTime started = 0;  ///< when the request arrived (bid-gather span)
  };

  struct ActiveApp {
    PlanPtr plan;  ///< original plan (graph/kernels/inputs never change)
    /// Current assignment per task (reschedules update this).
    std::unordered_map<std::uint32_t, sched::Assignment> current;
    std::set<std::uint32_t> done;
    std::unordered_map<std::uint32_t, TaskOutcome> outcomes;
    std::unordered_map<std::uint32_t, int> attempts;
    std::set<common::HostId> involved;
    std::set<common::HostId> ready;
    std::unordered_map<std::uint32_t, std::set<common::HostId>> excluded;
    bool started = false;
    bool finished = false;
    int reschedules = 0;
    int failures_survived = 0;
    common::SimTime submitted = 0;
    common::SimTime exec_started = 0;
    /// User spending cap in G$ (docs/ECONOMY.md); 0 = unconstrained.  When
    /// positive, recovery re-placements are budget-gated and complete_app
    /// quotes the final placements into the report.
    double budget = 0.0;
    ReportCallback callback;
    std::unordered_map<std::uint32_t, tasklib::Value> exit_outputs;
    /// Per-fault recovery outcomes, surfaced through ExecutionReport.
    std::vector<RecoveryEvent> recoveries;
    /// Bounded-recovery accounting: actions taken so far; past
    /// RuntimeOptions::max_app_recovery_actions the app is failed with a
    /// descriptive report instead of looping forever.
    int recovery_actions = 0;
    /// Stall detection (progress sweeps with nothing newly done / not yet
    /// launched).  Past RuntimeOptions::stall_sweeps the coordinator
    /// re-sends start signals and inputs (pre-launch: re-multicasts the
    /// allocation table) — the lost-message safety net.
    std::size_t last_done_count = 0;
    int stalled_sweeps = 0;
    int prestart_sweeps = 0;
    /// Stall recoveries since the last completed task; capped so a slow but
    /// healthy application is not spammed with resends.
    int quiet_stalls = 0;
  };

  /// `scheduling_for` names the application the context schedules or
  /// re-places for; the shared reservation table then hides machines held
  /// by *other* in-flight applications from its decisions (docs/TENANCY.md).
  [[nodiscard]] sched::SchedulerContext make_context(
      common::AppId scheduling_for = common::AppId{}) const;

  // message handlers
  void on_gm_report(const net::Message& message);
  void on_gm_host_down(const net::Message& message);
  void on_sm_host_down(const net::Message& message);
  void on_sm_afg(const net::Message& message);
  void on_sm_bids(const net::Message& message);
  void on_sm_rat(const net::Message& message);
  void on_ac_ready(const net::Message& message);
  void on_ac_task_done(const net::Message& message);
  void on_ac_overload(const net::Message& message);

  void finish_schedule(std::uint32_t app_value);
  void maybe_launch(ActiveApp& app);
  void stage_file_inputs(ActiveApp& app, afg::TaskId task);
  /// Re-place one task after an overload or host failure.  `bad_host` joins
  /// the task's exclusion set.  Cascades to parents whose cached outputs
  /// died with a failed host.  `reason` labels the RecoveryEvent recorded
  /// for the report ("host_down", "overload", "cascade", ...).
  void reschedule_task(ActiveApp& app, afg::TaskId task,
                       common::HostId bad_host, const char* reason);
  /// Charge one action against the app's recovery budget; when exhausted,
  /// fails the app (descriptive report + recovery.escalation trace) and
  /// returns false.
  [[nodiscard]] bool consume_recovery_budget(ActiveApp& app,
                                             const char* action);
  /// Lost-message safety net: re-send start signals, staged inputs, and
  /// dataflow pulls for every unfinished task.
  void stall_recover(ActiveApp& app);
  void dispatch_updated_plan(ActiveApp& app, afg::TaskId task,
                             bool pin = false);
  void progress_sweep();
  void complete_app(ActiveApp& app, bool success, const std::string& reason);
  [[nodiscard]] PlanPtr current_plan(const ActiveApp& app) const;
  /// Quoted spend of the app's current assignments under the runtime price
  /// model, with `substitute` (when non-null) standing in for its own task —
  /// the what-if query the budget-gated recovery path asks per candidate
  /// (docs/ECONOMY.md).
  [[nodiscard]] econ::SpendBreakdown quote_current(
      const ActiveApp& app,
      const sched::Assignment* substitute = nullptr) const;
  void leader_echo_tick();
  void on_sm_echo_reply(const net::Message& message);

  RuntimeCore& core_;
  common::SiteId site_;
  common::HostId server_;
  sim::TimerHandle progress_timer_;
  sim::TimerHandle leader_echo_timer_;
  bool started_ = false;

  /// Leader failure detection (mirrors the Group Manager's member echo).
  std::set<common::HostId> leader_echo_replied_;
  std::set<common::HostId> leaders_reported_down_;
  std::uint64_t leader_echo_seq_ = 0;
  bool leader_echo_outstanding_ = false;

  std::unordered_map<std::uint32_t, PendingSchedule> pending_;
  std::unordered_map<std::uint32_t, ActiveApp> apps_;
  OutputSink output_sink_;
};

}  // namespace vdce::runtime
