#include "runtime/monitor.hpp"

#include <any>

#include "common/logging.hpp"

namespace vdce::runtime {

void MonitorDaemon::start() {
  if (started_) return;
  started_ = true;
  noise_ = common::Rng(core_.options().seed ^
                       (0x9e3779b97f4a7c15ULL * (host_.value() + 1)));
  if (core_.health_on()) {
    const net::Host& h = core_.topology().host(host_);
    obs::health::SeriesKey key;
    key.host = static_cast<std::int64_t>(host_.value());
    key.site = static_cast<std::int64_t>(h.site.value());
    key.metric = obs::health::kHostLoad;
    load_series_ = core_.health_plane().series(key, core_.now());
    key.metric = obs::health::kHostMem;
    mem_series_ = core_.health_plane().series(key, core_.now());
  }
  // Phase-stagger the first sample across the period.
  double phase = noise_.uniform(0.0, core_.options().monitor_period);
  timer_ = core_.engine().every(core_.options().monitor_period,
                                [this] { sample_and_report(); }, phase);
}

void MonitorDaemon::stop() { timer_.cancel(); }

void MonitorDaemon::sample_and_report() {
  const net::Host& h = core_.topology().host(host_);
  if (!h.state.up) return;  // a dead host measures nothing
  // Stale-monitor fault window: the daemon is alive (echoes still answer)
  // but its samples go missing, so repository data for this host ages.
  if (core_.monitor_muted(host_)) {
    if (core_.metering()) core_.meters().counter("monitor.samples_muted").add();
    return;
  }

  if (core_.metering()) core_.meters().counter("monitor.samples").add();

  MonReport report;
  report.host = host_;
  report.sample.time = core_.now();
  // Measurement noise models the coarse sampling of 1997 'uptime'-style
  // load probes.
  report.sample.cpu_load =
      noise_.normal(h.state.cpu_load, core_.options().measurement_noise, 0.0);
  report.sample.available_mb =
      noise_.normal(h.state.available_mb,
                    core_.options().measurement_noise * h.spec.memory_mb, 0.0);

  // Health-plane feed: the *measured* values, after the mute check, so a
  // crashed host and a stale-monitor window both starve the series and the
  // monitor-stale rule sees exactly what a real alerting pipeline would.
  if (load_series_ != nullptr) {
    obs::health::HealthPlane& health = core_.health_plane();
    health.observe(load_series_, core_.now(), report.sample.cpu_load);
    health.observe(mem_series_, core_.now(), report.sample.available_mb);
  }

  (void)core_.fabric().send(net::Message{
      host_, group_leader_, msg::kMonReport, wire::mon_report(),
      std::any(report)});
}

void MonitorDaemon::handle(const net::Message& message) {
  if (message.type == msg::kGmEcho) {
    const auto& echo = std::any_cast<const EchoPacket&>(message.payload);
    (void)core_.fabric().send(net::Message{host_, echo.leader,
                                           msg::kGmEchoReply, wire::kEcho,
                                           std::any(EchoPacket{host_, echo.seq})});
  } else if (message.type == msg::kSmEcho) {
    const auto& echo = std::any_cast<const EchoPacket&>(message.payload);
    (void)core_.fabric().send(net::Message{host_, echo.leader,
                                           msg::kSmEchoReply, wire::kEcho,
                                           std::any(EchoPacket{host_, echo.seq})});
  }
}

}  // namespace vdce::runtime
