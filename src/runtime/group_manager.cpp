#include "runtime/group_manager.hpp"

#include <any>
#include <cmath>

#include "common/logging.hpp"

namespace vdce::runtime {

void GroupManager::start() {
  if (started_) return;
  started_ = true;
  echo_timer_ = core_.engine().every(core_.options().echo_period,
                                     [this] { echo_tick(); },
                                     core_.options().echo_period * 0.5);
}

void GroupManager::stop() { echo_timer_.cancel(); }

void GroupManager::handle(const net::Message& message) {
  if (message.type == msg::kMonReport) {
    on_mon_report(message);
  } else if (message.type == msg::kGmEchoReply) {
    on_echo_reply(message);
  } else if (message.type == msg::kSmRatGm) {
    on_rat(message);
  }
}

void GroupManager::on_mon_report(const net::Message& message) {
  const auto& report = std::any_cast<const MonReport&>(message.payload);
  ++reports_received_;
  if (core_.metering()) core_.meters().counter("monitor.reports_received").add();

  // Any traffic from a host is proof of life: without this, an echo round
  // that straddles a host's recovery would declare it down again right
  // after its first post-recovery workload report.
  echo_replied_.insert(report.host);
  const bool recovered = reported_down_.erase(report.host) > 0;

  // Significant-change filter: forward only if the load moved by more than
  // the threshold since the last *forwarded* value.  First reports and
  // recovery reports always pass (the Site Manager must re-mark the host
  // up even if its load happens to match the last forwarded value).
  auto it = last_forwarded_load_.find(report.host);
  const bool significant =
      recovered || it == last_forwarded_load_.end() ||
      std::fabs(report.sample.cpu_load - it->second) >=
          core_.options().significant_change;
  if (!significant) return;

  last_forwarded_load_[report.host] = report.sample.cpu_load;
  ++reports_forwarded_;
  if (core_.metering()) {
    core_.meters().counter("monitor.reports_forwarded").add();
  }
  GmReport batch;
  batch.changed.push_back(report);
  (void)core_.fabric().send(net::Message{leader_, site_server_, msg::kGmReport,
                                         wire::gm_report(batch.changed.size()),
                                         std::any(std::move(batch))});
}

void GroupManager::echo_tick() {
  const net::Group& group = core_.topology().group(group_);

  // Close the previous round first: anyone silent is presumed failed.
  if (echo_outstanding_) {
    for (common::HostId member : group.members) {
      if (member == leader_) continue;  // the leader vouches for itself
      if (echo_replied_.contains(member) || reported_down_.contains(member)) {
        continue;
      }
      reported_down_.insert(member);
      VDCE_LOG(kInfo, "group-mgr", core_.now())
          << "host " << core_.topology().host(member).spec.name
          << " failed echo round " << echo_seq_;
      if (core_.metering()) {
        core_.meters().counter("monitor.failures_detected").add();
      }
      core_.health_event(obs::health::kFailuresDetected,
                         static_cast<std::int64_t>(member.value()),
                         static_cast<std::int64_t>(
                             core_.topology().host(member).site.value()));
      core_.flight(obs::FlightCode::kHostDown, member.value());
      if (core_.tracing()) {
        core_.trace_sink().instant(
            "monitor", "monitor.failure_detected", core_.now(), leader_.value(),
            {obs::arg("host", member.value()), obs::arg("round", echo_seq_)});
      }
      (void)core_.fabric().send(net::Message{leader_, site_server_,
                                             msg::kGmHostDown, wire::kSmall,
                                             std::any(HostDownNotice{member})});
    }
  }

  // Open the next round.
  ++echo_seq_;
  echo_replied_.clear();
  echo_outstanding_ = true;
  if (core_.metering()) core_.meters().counter("monitor.echo_rounds").add();
  if (core_.tracing()) {
    core_.trace_sink().instant("monitor", "monitor.echo_round", core_.now(),
                               leader_.value(),
                               {obs::arg("group", group_.value()),
                                obs::arg("round", echo_seq_)});
  }
  for (common::HostId member : group.members) {
    if (member == leader_) continue;
    (void)core_.fabric().send(net::Message{leader_, member, msg::kGmEcho,
                                           wire::kEcho,
                                           std::any(EchoPacket{leader_, echo_seq_})});
  }
}

void GroupManager::on_echo_reply(const net::Message& message) {
  const auto& echo = std::any_cast<const EchoPacket&>(message.payload);
  if (echo.seq != echo_seq_) return;  // stale reply from an earlier round
  echo_replied_.insert(message.src);
}

void GroupManager::on_rat(const net::Message& message) {
  const auto& rat = std::any_cast<const RatMulticast&>(message.payload);
  const net::Group& group = core_.topology().group(group_);

  // Forward an execution request to the Application Controller of each
  // member that appears in the allocation table.
  for (common::HostId member : group.members) {
    bool involved = false;
    for (const sched::Assignment& a : rat.plan->rat.assignments) {
      for (common::HostId h : a.hosts) {
        if (h == member) {
          involved = true;
          break;
        }
      }
      if (involved) break;
    }
    if (!involved) continue;
    (void)core_.fabric().send(net::Message{leader_, member, msg::kGmExec,
                                           wire::kSmall,
                                           std::any(ExecRequest{rat.plan, member})});
  }
}

}  // namespace vdce::runtime
