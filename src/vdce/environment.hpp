// VdceEnvironment — the public façade of the library.
//
// Owns the full simulated deployment: the topology, the discrete-event
// engine and fabric, one site repository per site, the per-host daemons
// (HostAgents wiring Monitor / Group Manager / Site Manager / Application
// Controller / Data Manager), the task registry, the user object store, and
// the background-load generator.
//
// Typical use (see examples/quickstart.cpp):
//
//   VdceEnvironment env(vdce::make_campus_pair());
//   env.bring_up();
//   auto session = env.login(SiteId(0), "user_k", "secret").value();
//   editor::AppBuilder app("my-app");
//   ... build the AFG ...
//   auto report = env.run_application(app.build().value(), session);
//
// `run_application` performs the paper's full pipeline in simulated time:
// distributed scheduling (AFG multicast -> host selection -> assignment),
// RAT distribution, channel setup, staging, execution with monitoring and
// recovery, and returns the ExecutionReport.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "afg/graph.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "common/expected.hpp"
#include "common/logging.hpp"
#include "db/site_repository.hpp"
#include "obs/obs.hpp"
#include "dsm/dsm.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "runtime/core.hpp"
#include "runtime/execution.hpp"
#include "runtime/host_agent.hpp"
#include "runtime/load_generator.hpp"
#include "runtime/services.hpp"
#include "scale/generate.hpp"
#include "sched/site_scheduler.hpp"
#include "sim/engine.hpp"
#include "tasklib/registry.hpp"
#include "tenancy/tenancy.hpp"

namespace vdce {

// ---------------------------------------------------------------------------
// Error taxonomy
//
// Every fallible entry point returns common::Expected<T> (or common::Status)
// carrying a common::Error{code, message}.  The codes mean, across this API:
//
//   kInvalidArgument     — the call itself is malformed: bring-up repeated,
//                          a malformed fault plan, bad options.
//   kNotFound            — a named thing does not exist: unknown site id,
//                          unknown user, a task name absent from both the
//                          task library and the kernel registry, a fault
//                          plan referencing a host/site the topology lacks,
//                          a missing input object.
//   kPermissionDenied    — authentication failed or the access domain
//                          forbids the operation.
//   kNoFeasibleResource  — scheduling found no machine satisfying the
//                          task's constraints, or admission control
//                          rejected the deadline.
//   kQuotaExceeded       — multi-tenant admission control turned a
//                          submission away: the user's quota or the global
//                          admission-queue bound is exhausted (retry after
//                          in-flight applications finish).
//   kBudgetExceeded      — the economy plane's admission gate rejected the
//                          submission: the quoted spend of the best schedule
//                          found already exceeds RunOptions::budget
//                          (docs/ECONOMY.md); raise the budget, relax the
//                          deadline, or pick a cost-optimising strategy.
//                          Unlike kQuotaExceeded this is not retryable —
//                          waiting changes nothing about the price.
//   kReservationConflict — an advance-reservation request overlaps a window
//                          already committed on the same host or link
//                          capacity (docs/RESERVATIONS.md); pick a
//                          different interval or different machines.
//   kHostDown            — a required host is down right now.
//   kTimeout             — a synchronous wait exceeded
//                          EnvironmentOptions::sync_timeout.
//   kParseError          — DSL / fault-plan text did not parse.
//   kInternal            — an invariant broke (the environment is not up,
//                          the simulation drained mid-operation); a bug or
//                          misuse, not a user-data problem.
//
// Messages always name the offending entity (task, host, site, user), so
// they can be surfaced to users verbatim.
// ---------------------------------------------------------------------------

/// An authenticated editor session (the result of the paper's "user
/// authentication" step before the Application Editor is served).
struct Session {
  common::SiteId site;        ///< the site the user connected to
  db::UserAccount account;
};

struct EnvironmentOptions {
  runtime::RuntimeOptions runtime;
  /// Which pending-set implementation the event kernel uses (DESIGN.md
  /// "Event kernel").  kCalendar is the production zero-allocation kernel;
  /// kBinaryHeapReference replays the frozen pre-redesign firing order and
  /// exists so differential tests can assert the two produce byte-identical
  /// traces on any scenario.  Never set the reference kind in real runs.
  sim::QueueKind sim_kernel = sim::QueueKind::kCalendar;
  /// Environment-wide default scheduling policy (docs/SCHEDULING.md).
  /// Validated at try_bring_up(): a `strategy` naming nothing in the
  /// registry is a typed kInvalidArgument there, before any daemon starts.
  /// Per-run RunOptions::sched with an empty strategy inherits this
  /// policy's strategy name; a non-empty per-run strategy wins.
  sched::SchedulingPolicy scheduling;
  /// Start the background-load generator at bring-up.
  bool background_load = false;
  runtime::LoadGeneratorOptions load;
  /// Abort a synchronous wait after this much simulated time.
  common::SimDuration sync_timeout = 24.0 * 3600.0;

  /// Structured metrics (counters / gauges / histograms over the daemons,
  /// fabric, scheduler, and executions).  Read them via env.metrics().
  obs::MetricsOptions metrics;
  /// Structured tracing: typed span/instant records stamped with simulated
  /// time.  Export via env.trace().write_chrome_trace(path) and open in
  /// chrome://tracing or Perfetto.  Off by default — when disabled every
  /// instrumentation site is a single predictable branch.
  obs::TraceOptions trace;
  /// Always-on flight recorder: a fixed-size ring of recent runtime events
  /// kept even when tracing is off, auto-dumped to
  /// flight.postmortem_path when recovery escalates or bring-up/run fails.
  /// Near-zero cost (preallocated POD ring, no allocation per record) — see
  /// docs/OBSERVABILITY.md.
  obs::FlightOptions flight;
  /// Live health plane (obs/health.hpp, docs/OBSERVABILITY.md): windowed
  /// time-series over monitor samples / queue depth / recovery actions /
  /// inter-site probe RTTs, declarative SLO rules evaluated every `cadence`
  /// simulated seconds, and typed alerts surfaced through env.health(),
  /// ExecutionReport::alerts, and the trace stream (replayable offline via
  /// vdce-inspect --alerts).  Off by default; a disabled plane registers
  /// nothing and leaves traces byte-identical to a build without it.
  obs::health::HealthOptions health;
  /// Console log verbosity for the whole environment.  Prefer this (and
  /// set_log_level()) over poking common::Logger::instance() directly.
  common::LogLevel log_level = common::LogLevel::kOff;

  /// Deterministic fault injection: when non-empty, bring-up arms this plan
  /// against the environment (crashes, partitions, loss, slowdowns, stale
  /// monitors fire at their simulated instants).  Identical (plan, seeds)
  /// produce byte-identical fault/recovery traces — see
  /// docs/FAULT_INJECTION.md.  Inspect the injector via env.chaos().
  chaos::FaultPlan faults;

  /// Multi-tenant admission control for the asynchronous submission API
  /// (docs/TENANCY.md): concurrent-application bound, per-user quotas, and
  /// the FIFO/priority admission order.  The defaults never reject a
  /// sequential caller, so run_application() behaves as before.
  tenancy::TenancyOptions tenancy;
};

// --- advance reservations (docs/RESERVATIONS.md) ---------------------------

/// A request for a committed time window over named machines (and,
/// optionally, a fraction of one directed inter-host link).  Passed to
/// VdceEnvironment::reserve(); on success the window is booked in the site
/// schedulers' shared WindowTable and foreign work is conservatively
/// backfilled around it.
struct ReservationRequest {
  /// Machines the window covers (need not be sorted; duplicates collapse).
  std::vector<common::HostId> hosts;
  common::SimTime start = 0.0;  ///< window opens (absolute simulated time)
  common::SimTime end = 0.0;    ///< window closes; must be > start
  /// Optional directed link share: while the window is open, `link_fraction`
  /// of the src->dst capacity is considered booked.  Leave the hosts invalid
  /// to reserve machines only.
  common::HostId link_src;
  common::HostId link_dst;
  double link_fraction = 0.0;
};

/// Proof of a committed reservation, returned by reserve().  Attach it to
/// RunOptions::reservation so the submission parks until the window opens
/// and then schedules exclusively onto the booked machines.
struct ReservationTicket {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

struct RunOptions {
  sched::SchedulingPolicy sched;
  /// Execute with real kernels from the registry (false = timing-only).
  bool real_kernels = true;
  /// QoS: requested completion deadline in seconds of makespan (0 = none).
  common::SimDuration deadline = 0.0;
  /// Admission control: reject before execution if the scheduler's
  /// estimated schedule length already exceeds the deadline (the user can
  /// retry with a wider access domain or fewer constraints).
  bool enforce_admission = false;
  /// Economy (docs/ECONOMY.md): spending cap in G$ over the quoted cost of
  /// the schedule (per-task predicted CPU-seconds at host prices plus
  /// per-edge bytes at link prices); 0 = unconstrained.  A positive budget
  /// is always enforced: submissions whose quoted spend exceeds it are
  /// rejected with kBudgetExceeded before execution (independent of
  /// enforce_admission — a spend cap is a hard constraint, not a QoS hint),
  /// and recovery re-placements are restricted to machines that keep the
  /// quote within it.  Both deadline and budget are copied into the
  /// scheduling policy so the cost-aware `dbc-cost` / `dbc-time` strategies
  /// can optimise against them.
  double budget = 0.0;
  /// Advance-reservation ticket from reserve().  A valid ticket parks the
  /// admitted submission until its window opens (AppState::kReserved) and
  /// restricts placement to the booked machines; the default (invalid)
  /// ticket leaves the pipeline exactly as before.
  ReservationTicket reservation;
};

/// Opaque ticket for an asynchronous submission (docs/TENANCY.md).  Returned
/// by submit_application(); redeem it with wait() / report(), or finish the
/// whole fleet with drain().
struct AppHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

/// Where a submission currently is in the admission -> schedule -> execute
/// pipeline.
enum class AppState {
  kQueued,      ///< accepted, waiting for an admission slot
  kReserved,    ///< admitted with a reservation ticket; parked until the
                ///< committed window opens (docs/RESERVATIONS.md)
  kScheduling,  ///< admitted; Fig. 2 scheduling in flight
  kDeferred,    ///< every candidate machine was held by concurrent apps;
                ///< re-queued, retries after the next completion
  kExecuting,   ///< allocation table decided; Fig. 4 execution in flight
  kFinished,    ///< terminal — wait()/report() return the result
};

/// Convenience bring-up of a generated grid-scale deployment (the scale
/// plane's S sites × H hosts topologies; see scale/generate.hpp and
/// docs/SCALING.md).
struct ScaleSpec {
  scale::GridSpec grid;
  EnvironmentOptions options;
  /// Account created at every site after bring-up (empty = skip).
  std::string admin_user = "scale_admin";
  std::string admin_password = "scale";
};

class VdceEnvironment {
 public:
  explicit VdceEnvironment(net::Topology topology,
                           EnvironmentOptions options = {});
  ~VdceEnvironment();

  VdceEnvironment(const VdceEnvironment&) = delete;
  VdceEnvironment& operator=(const VdceEnvironment&) = delete;

  /// Create repositories, seed them from the task registry, start every
  /// daemon, and arm the fault plan (if EnvironmentOptions::faults is
  /// non-empty).  Must be called exactly once before any other operation.
  /// Fails (kInvalidArgument / kNotFound) on a repeated call or a fault
  /// plan that is malformed or references hosts/sites this topology lacks.
  [[nodiscard]] common::Status try_bring_up();

  /// Deprecated shim over try_bring_up(): prints the error and aborts on
  /// failure.  Prefer try_bring_up() in new code.
  void bring_up();

  // --- component access --------------------------------------------------
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Topology& topology() noexcept { return topology_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] tasklib::TaskRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] runtime::ObjectStore& store() noexcept { return store_; }
  [[nodiscard]] runtime::BackgroundLoadGenerator& background();
  [[nodiscard]] runtime::RuntimeCore& core();

  /// Checked accessors: an unknown site id or an environment that has not
  /// been brought up yields a descriptive error instead of undefined
  /// behaviour.
  [[nodiscard]] common::Expected<std::reference_wrapper<db::SiteRepository>>
  try_repo(common::SiteId site);
  [[nodiscard]] common::Expected<std::reference_wrapper<runtime::SiteManager>>
  try_site_manager(common::SiteId site);

  /// Unchecked forms of the above: print a diagnostic and abort on misuse
  /// (never silently corrupt).
  [[nodiscard]] db::SiteRepository& repo(common::SiteId site);
  [[nodiscard]] runtime::SiteManager& site_manager(common::SiteId site);

  /// Deployment enumeration, for tooling that walks the testbed without
  /// reaching into the topology object.
  [[nodiscard]] const std::vector<net::Site>& sites() const noexcept {
    return topology_.sites();
  }
  [[nodiscard]] const std::vector<net::Host>& hosts() const noexcept {
    return topology_.hosts();
  }

  // --- observability -------------------------------------------------------
  /// The environment's metrics/trace bundle (shared with every daemon).
  [[nodiscard]] obs::Observability& observability() noexcept { return obs_; }
  /// Metrics registry; refreshes the `sim.*` gauges (clock, event counts,
  /// queue high-water mark) so a snapshot or export is current.
  [[nodiscard]] obs::MetricsRegistry& metrics();
  [[nodiscard]] obs::TraceSink& trace() noexcept { return obs_.trace(); }
  /// The always-on flight recorder (post-mortem ring); see
  /// EnvironmentOptions::flight.
  [[nodiscard]] obs::FlightRecorder& flight_recorder() noexcept {
    return obs_.flight();
  }
  /// The live health plane (series, rules, alert log, OpenMetrics export);
  /// see EnvironmentOptions::health.  Valid whether or not the plane is
  /// enabled — a disabled plane just holds no series and no alerts.
  [[nodiscard]] obs::health::HealthPlane& health() noexcept {
    return obs_.health();
  }

  /// Console log verbosity (the supported replacement for poking
  /// common::Logger::instance() in user code).
  void set_log_level(common::LogLevel level) {
    common::Logger::instance().set_level(level);
  }
  [[nodiscard]] common::LogLevel log_level() const {
    return common::Logger::instance().level();
  }

  /// Start the distributed-shared-memory service (the paper's §5 future
  /// work) across every host.  Idempotent; returns the runtime for defining
  /// objects and creating per-host clients.
  dsm::DsmRuntime& enable_dsm();

  // --- fault injection ------------------------------------------------------
  /// The armed chaos injector (its deterministic log, drop counters, plan),
  /// or null when EnvironmentOptions::faults was empty.
  [[nodiscard]] chaos::ChaosInjector* chaos() noexcept { return chaos_.get(); }

  // --- accounts & sessions -------------------------------------------------
  /// Create the account at every site (the prototype replicated accounts).
  /// Fails when the environment is not up or any site rejects the account
  /// (e.g. a duplicate name).
  [[nodiscard]] common::Status try_add_user(
      const std::string& name, const std::string& password, int priority = 1,
      db::AccessDomain domain = db::AccessDomain::kGlobal);

  /// Deprecated shim over try_add_user(): prints the error and aborts on
  /// failure.  Prefer try_add_user() in new code.
  void add_user(const std::string& name, const std::string& password,
                int priority = 1,
                db::AccessDomain domain = db::AccessDomain::kGlobal);
  common::Expected<Session> login(common::SiteId site, const std::string& name,
                                  const std::string& password);

  // --- advance reservations (docs/RESERVATIONS.md) -------------------------
  /// Commit a time window over the requested machines (and optional link
  /// share).  Typed rejections: kInvalidArgument (empty host list, end <=
  /// start, window opening in the past), kNotFound (a host the topology
  /// lacks), kQuotaExceeded (TenancyOptions::max_reservations_per_user),
  /// kReservationConflict (overlaps a committed window on a shared host or
  /// oversubscribes the link).  No simulated time passes.  The booking's
  /// quota share frees when the owning run completes or the ticket is
  /// cancelled; the window itself blocks foreign placement until `end`.
  common::Expected<ReservationTicket> reserve(const Session& session,
                                              const ReservationRequest& request);

  /// Cancel a committed window.  kNotFound for an unknown/spent ticket,
  /// kPermissionDenied when the session user does not own the booking.
  common::Status cancel_reservation(const Session& session,
                                    ReservationTicket ticket);

  /// The committed window behind a ticket (null after cancel).  For tests
  /// and tooling; the scheduler reads the same table.
  [[nodiscard]] const sched::Window* reservation_window(
      ReservationTicket ticket) const;

  // --- the application pipeline -------------------------------------------
  /// Distributed scheduling only (Fig. 2 over the fabric); synchronous in
  /// simulated time.
  common::Expected<sched::ResourceAllocationTable> schedule(
      const afg::Afg& graph, const Session& session,
      sched::SchedulingPolicy options = {});

  /// Full pipeline: schedule, distribute, execute, report.  Implemented as
  /// submit_application() + wait(), so a solo run takes exactly the same
  /// simulated path as a single-submission fleet (tests/test_tenancy.cpp
  /// proves the equivalence differentially).
  common::Expected<runtime::ExecutionReport> run_application(
      const afg::Afg& graph, const Session& session, RunOptions options = {});

  // --- multi-tenant asynchronous submission (docs/TENANCY.md) -------------
  /// Enter a submission into the admission queue and return immediately (no
  /// simulated time passes).  Typed rejections: kQuotaExceeded (user quota
  /// or queue bound), kNotFound (unknown user or task), kInvalidArgument /
  /// kCycleDetected (malformed graph).  The pipeline advances whenever the
  /// engine runs — wait(), drain(), or run_for().
  common::Expected<AppHandle> submit_application(const afg::Afg& graph,
                                                 const Session& session,
                                                 RunOptions options = {});

  /// Drive simulated time until `handle`'s submission is terminal; returns
  /// its ExecutionReport (or the schedule/admission error that stopped it).
  /// Idempotent — a second wait() on a finished handle returns the same
  /// result without advancing time.
  common::Expected<runtime::ExecutionReport> wait(AppHandle handle);

  /// Drive simulated time until every submission is terminal.  Results stay
  /// available through wait()/report().
  common::Status drain();

  /// Non-blocking result fetch: the report if `handle` is terminal,
  /// kInvalidArgument if it is still in flight, kNotFound for an unknown
  /// handle.
  [[nodiscard]] common::Expected<runtime::ExecutionReport> report(
      AppHandle handle) const;

  /// Pipeline position of a submission.
  [[nodiscard]] common::Expected<AppState> app_state(AppHandle handle) const;

  /// Admission-control counters (submissions, rejections, deferrals, peaks).
  [[nodiscard]] const tenancy::TenancyStats& tenancy_stats() const noexcept {
    return admission_.stats();
  }
  /// Submissions accepted but not yet terminal.
  [[nodiscard]] std::size_t in_flight_submissions() const noexcept {
    return active_submissions_;
  }

  /// Execute a graph with an externally supplied allocation table (used by
  /// benches comparing schedulers on identical runtimes).
  common::Expected<runtime::ExecutionReport> execute_with_table(
      const afg::Afg& graph, sched::ResourceAllocationTable table,
      const Session& session, RunOptions options = {});

  /// Advance simulated time (lets monitoring history accumulate, load
  /// dynamics play out, measured task times build up).
  void run_for(common::SimDuration duration);

  [[nodiscard]] common::SimTime now() const noexcept { return engine_.now(); }

  /// Build the grid described by `spec.grid`, pre-size the event heap for
  /// its daemon population, bring the environment up, and create the admin
  /// account.  Returns the live environment (heap-allocated — the
  /// environment is not movable) or the first error.
  [[nodiscard]] static common::Expected<std::unique_ptr<VdceEnvironment>>
  make_scale_environment(const ScaleSpec& spec);

 private:
  /// Per-task artifacts an execution needs, resolved from the session
  /// site's databases, the kernel registry, and the user object store.
  struct ResolvedApp {
    std::vector<db::TaskPerfRecord> perf;
    std::vector<tasklib::Kernel> kernels;
    std::unordered_map<std::uint32_t, std::unordered_map<int, tasklib::Value>>
        initial;
  };
  common::Expected<ResolvedApp> resolve_app_resources(const afg::Afg& graph,
                                                      const Session& session,
                                                      const RunOptions& options);

  /// One asynchronous submission moving through the pipeline.  Slots are
  /// heap-allocated and never erased, so `terminal` is a stable flag
  /// drive_until() can watch and results stay queryable after completion.
  struct SubmissionSlot {
    AppHandle handle;
    Session session;
    std::shared_ptr<const afg::Afg> graph;
    RunOptions options;
    AppState state = AppState::kQueued;
    common::SimTime enqueued = 0;
    common::SimTime admitted = 0;
    /// When scheduling actually began: the reservation window's start for a
    /// parked submission, == admitted otherwise (docs/RESERVATIONS.md).
    common::SimTime released = 0;
    common::SimDuration scheduling_time = 0;
    common::AppId sched_app;  ///< id of the latest scheduling round
    common::AppId exec_app;   ///< id of the execution (valid once executing)
    common::Expected<runtime::ExecutionReport> result =
        common::Error{common::ErrorCode::kInternal, "submission in flight"};
    bool terminal = false;
  };

  /// Admit queued submissions while the controller allows, issuing their
  /// scheduling rounds.  Runs at submit time and after every completion.
  /// Admitted submissions carrying a reservation ticket whose window has
  /// not opened yet park in AppState::kReserved instead; a timer fires
  /// release_reserved() at the window start.
  void pump_submissions();
  /// Start (or restart, after a deferral) slot's Fig. 2 scheduling round,
  /// binding its reservation booking to the round's AppId first so the site
  /// schedulers can recognise the owner.
  void begin_scheduling(SubmissionSlot& slot);
  /// Window-start timer: un-park a reserved submission and schedule it.
  void release_reserved(std::uint64_t handle);
  void on_scheduled(std::uint64_t handle,
                    common::Expected<sched::ResourceAllocationTable> table);
  void on_executed(std::uint64_t handle, runtime::ExecutionReport report);
  void finalize_submission(SubmissionSlot& slot,
                           common::Expected<runtime::ExecutionReport> result);

  common::Expected<runtime::ExecutionReport> execute_plan(
      const afg::Afg& graph, sched::ResourceAllocationTable table,
      const Session& session, const RunOptions& options);

  /// Drive the engine until `*flag` is true or the sync timeout elapses.
  common::Status drive_until(const bool& flag);

  /// Post-mortem: dump the flight-recorder ring to
  /// EnvironmentOptions::flight.postmortem_path (no-op when the recorder is
  /// disabled, empty, or the path is empty).
  void dump_postmortem();

  /// Up-front validation: every task name in the graph must resolve against
  /// the session site's task library or the kernel registry, so a typo'd
  /// task fails here with its name instead of deep inside the runtime.
  common::Status validate_tasks(const afg::Afg& graph, const Session& session);

  // --- health plane (EnvironmentOptions::health) ----------------------------
  /// Install rules and pre-register every series in deterministic topology
  /// order.  Runs before the daemons start so their cached series lookups
  /// find stable, pre-created rings.  No-op when the plane is disabled.
  void setup_health_plane();
  /// Cadence tick: send inter-site probes, sample the control-plane series,
  /// and evaluate every rule.
  void health_tick();
  /// HostAgent extension: answer health.probe, fold health.probe_reply into
  /// the link.rtt series.  Returns true when the message was consumed.
  bool handle_health_message(const net::Message& message);

  net::Topology topology_;
  EnvironmentOptions options_;
  obs::Observability obs_;
  sim::Engine engine_;
  net::Fabric fabric_;
  tasklib::TaskRegistry registry_;
  runtime::ObjectStore store_;
  std::vector<std::unique_ptr<db::SiteRepository>> repos_;
  std::unique_ptr<runtime::RuntimeCore> core_;
  std::vector<std::unique_ptr<runtime::HostAgent>> agents_;
  std::unique_ptr<runtime::BackgroundLoadGenerator> load_generator_;
  std::unique_ptr<dsm::DsmRuntime> dsm_;
  std::unique_ptr<chaos::ChaosInjector> chaos_;
  bool up_ = false;
  common::AppId::value_type next_app_ = 0;

  // --- health plane state ---------------------------------------------------
  sim::TimerHandle health_timer_;
  std::uint64_t probe_seq_ = 0;
  /// Cached control-plane series (null when the plane is off or the series
  /// cap was hit; HealthPlane::observe(nullptr, ...) is a no-op).
  obs::health::TimeSeries* queue_series_ = nullptr;
  obs::health::TimeSeries* sched_series_ = nullptr;
  obs::health::TimeSeries* events_series_ = nullptr;

  // --- multi-tenant submission pipeline (docs/TENANCY.md) -----------------
  tenancy::AdmissionController admission_;
  std::unordered_map<std::uint64_t, std::unique_ptr<SubmissionSlot>> slots_;
  std::uint64_t next_handle_ = 0;
  std::size_t active_submissions_ = 0;
};

}  // namespace vdce
