// Canonical simulated testbeds.
//
// Generators for the wide-area topologies the experiments run on, shaped
// after the paper's 1997 setting: campus sites of heterogeneous Unix
// workstations (SPARC/SGI/Alpha/Pentium classes, tens to a few hundred
// MFLOPS, 64-512 MB), Ethernet/ATM LANs inside a site, and multi-
// millisecond WAN links between sites.  Deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace vdce {

struct TestbedSpec {
  std::size_t sites = 2;
  std::size_t hosts_per_site = 8;
  std::size_t group_size = 4;  ///< hosts per group-leader machine
  /// Host heterogeneity: speeds drawn uniformly from this range (MFLOPS).
  double min_mflops = 50.0;
  double max_mflops = 300.0;
  /// LAN: ~Fast-Ethernet/ATM campus networks.
  net::LinkSpec lan{0.001, 5e6};
  /// WAN latency range between sites (seconds); bandwidth fixed.
  double min_wan_latency = 0.010;
  double max_wan_latency = 0.080;
  double wan_bandwidth_bps = 1.25e6;
  std::uint64_t seed = 7;
};

/// Build a heterogeneous multi-site topology.  Host names follow the
/// paper's flavour ("serval.site0.vdce.edu").
net::Topology make_testbed(const TestbedSpec& spec);

/// The small two-site campus testbed used by the quickstart and most unit
/// tests: 2 sites x 6 hosts.
net::Topology make_campus_pair(std::uint64_t seed = 7);

}  // namespace vdce
