// Umbrella header: everything a VDCE application developer needs.
//
//   #include "vdce/vdce.hpp"
//
// pulls in the environment façade, the application builder/DSL, the task
// libraries, the schedulers, and the runtime services.  Individual headers
// remain available for finer-grained inclusion.
#pragma once

#include "afg/generate.hpp"
#include "afg/graph.hpp"
#include "afg/levels.hpp"
#include "editor/builder.hpp"
#include "editor/dsl.hpp"
#include "dsm/dsm.hpp"
#include "editor/panels.hpp"
#include "predict/model.hpp"
#include "runtime/execution.hpp"
#include "runtime/services.hpp"
#include "sched/baselines.hpp"
#include "sched/host_selection.hpp"
#include "sched/list_variants.hpp"
#include "sched/policy.hpp"
#include "sched/site_scheduler.hpp"
#include "sched/strategy.hpp"
#include "tasklib/image.hpp"
#include "tasklib/matrix.hpp"
#include "tasklib/registry.hpp"
#include "tasklib/signal.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"
