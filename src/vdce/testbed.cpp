#include "vdce/testbed.hpp"

#include <array>
#include <cassert>

namespace vdce {

namespace {

struct MachineClass {
  const char* arch;
  const char* os;
  const char* machine_type;
};

constexpr std::array<MachineClass, 5> kClasses{{
    {"sparc", "sunos", "SUN sparc"},
    {"sparc", "solaris", "SUN solaris"},
    {"mips", "irix", "SGI"},
    {"alpha", "osf1", "DEC alpha"},
    {"x86", "linux", "Intel pentium"},
}};

constexpr std::array<const char*, 12> kNames{{
    "serval", "hunding", "falcon", "osprey", "merlin", "condor",
    "harrier", "kestrel", "goshawk", "peregrine", "caracal", "lynx",
}};

}  // namespace

net::Topology make_testbed(const TestbedSpec& spec) {
  assert(spec.sites >= 1 && spec.hosts_per_site >= 1 && spec.group_size >= 1);
  common::Rng rng(spec.seed);
  net::Topology topology;
  topology.set_default_wan(net::LinkSpec{0.030, spec.wan_bandwidth_bps});

  for (std::size_t s = 0; s < spec.sites; ++s) {
    auto site = topology.add_site("site" + std::to_string(s), spec.lan);
    for (std::size_t h = 0; h < spec.hosts_per_site; ++h) {
      const MachineClass& mc = kClasses[rng.pick_index(kClasses.size())];
      net::HostSpec host;
      host.name = std::string(kNames[h % kNames.size()]) +
                  (h >= kNames.size() ? std::to_string(h / kNames.size()) : "") +
                  ".site" + std::to_string(s) + ".vdce.edu";
      host.ip = "10." + std::to_string(s) + "." + std::to_string(h / 250) +
                "." + std::to_string(h % 250 + 1);
      host.arch = mc.arch;
      host.os = mc.os;
      host.machine_type = mc.machine_type;
      host.speed_mflops = rng.uniform(spec.min_mflops, spec.max_mflops);
      // Memory in discrete 1997-plausible sizes.
      static constexpr std::array<double, 4> kMem{64.0, 128.0, 256.0, 512.0};
      host.memory_mb = kMem[rng.pick_index(kMem.size())];
      topology.add_host(site, std::move(host),
                        static_cast<int>(h / spec.group_size));
    }
  }

  // Pairwise WAN links with independent latencies.
  for (std::size_t a = 0; a < spec.sites; ++a) {
    for (std::size_t b = a + 1; b < spec.sites; ++b) {
      topology.set_wan_link(
          common::SiteId(static_cast<std::uint32_t>(a)),
          common::SiteId(static_cast<std::uint32_t>(b)),
          net::LinkSpec{rng.uniform(spec.min_wan_latency, spec.max_wan_latency),
                        spec.wan_bandwidth_bps});
    }
  }
  return topology;
}

net::Topology make_campus_pair(std::uint64_t seed) {
  TestbedSpec spec;
  spec.sites = 2;
  spec.hosts_per_site = 6;
  spec.seed = seed;
  return make_testbed(spec);
}

}  // namespace vdce
