#include "vdce/environment.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "econ/econ.hpp"
#include "sched/strategy.hpp"
#include "sched/support.hpp"

namespace vdce {

VdceEnvironment::VdceEnvironment(net::Topology topology,
                                 EnvironmentOptions options)
    : topology_(std::move(topology)),
      options_(options),
      obs_(options.metrics, options.trace, options.flight, options.health),
      engine_(options.sim_kernel),
      fabric_(engine_, topology_),
      admission_(options.tenancy) {
  set_log_level(options_.log_level);
  fabric_.set_observability(&obs_);
  tasklib::register_standard_libraries(registry_);
}

VdceEnvironment::~VdceEnvironment() {
  for (auto& agent : agents_) agent->stop();
}

common::Status VdceEnvironment::try_bring_up() {
  if (up_) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "bring_up(): environment is already up"};
  }
  if (common::Status plan_ok = options_.faults.validate(); !plan_ok.ok()) {
    return plan_ok;
  }
  // Fail fast on a default policy naming an unregistered strategy — a typo
  // here must not silently fall back to the VDCE default at schedule time.
  if (common::Status policy_ok = sched::validate_policy(options_.scheduling);
      !policy_ok.ok()) {
    return policy_ok;
  }
  up_ = true;

  // One repository per site, populated with its hosts and the standard
  // task libraries (the paper's site bring-up registration).
  std::vector<db::SiteRepository*> repo_ptrs;
  for (const net::Site& site : topology_.sites()) {
    auto repo = std::make_unique<db::SiteRepository>(site.id);
    repo->register_site_hosts(topology_);
    registry_.seed_database(repo->tasks());
    repo_ptrs.push_back(repo.get());
    repos_.push_back(std::move(repo));
  }

  core_ = std::make_unique<runtime::RuntimeCore>(
      engine_, fabric_, topology_, std::move(repo_ptrs), options_.runtime);
  core_->set_observability(&obs_);

  // Describe every host track so exporters (Chrome trace, vdce-inspect) can
  // group rows by site and label them with real host names.
  std::vector<obs::TrackInfo> tracks;
  tracks.reserve(topology_.hosts().size());
  for (const net::Host& host : topology_.hosts()) {
    tracks.push_back(obs::TrackInfo{host.id.value(), host.site.value(),
                                    host.spec.name});
  }
  obs_.trace().set_tracks(std::move(tracks));

  // Health plane before the daemons: rules and series registered here, in
  // deterministic topology order, so the monitor daemons' cached lookups
  // (and the trace's series indices) never depend on agent start order.
  setup_health_plane();

  for (const net::Host& host : topology_.hosts()) {
    agents_.push_back(std::make_unique<runtime::HostAgent>(*core_, host.id));
  }
  for (auto& agent : agents_) agent->start();

  // Wire every Site Manager's I/O service to the user object store, so
  // output files (Fig. 1's vector_X.dat) land back in the user's space.
  for (auto& agent : agents_) {
    if (runtime::SiteManager* manager = agent->site_manager()) {
      manager->set_output_sink([this](const std::string& path,
                                      tasklib::Value value, double bytes) {
        store_.put(path, std::move(value), bytes);
      });
    }
  }

  if (options_.background_load) {
    load_generator_ = std::make_unique<runtime::BackgroundLoadGenerator>(
        engine_, topology_, core_->rng().fork(), options_.load);
    load_generator_->start();
  }

  // Arm the fault plan last, so injected events find a fully wired runtime.
  if (!options_.faults.empty()) {
    chaos_ = std::make_unique<chaos::ChaosInjector>(engine_, topology_, &obs_,
                                                    options_.faults);
    if (common::Status armed = chaos_->arm(); !armed.ok()) {
      chaos_.reset();
      obs_.flight().record(engine_.now(), obs::FlightCode::kBringUpFailed);
      dump_postmortem();
      return armed;
    }
    fabric_.set_fault_interceptor(chaos_.get());
    core_->set_monitor_mute(
        [this](common::HostId h) { return chaos_->monitor_muted(h); });
  }

  // Health probes and rule evaluation start once everything else is wired,
  // so the first tick sees the same world an injected fault would.
  if (obs_.health_on()) {
    for (auto& agent : agents_) {
      agent->add_extension([this](const net::Message& message) {
        return handle_health_message(message);
      });
    }
    health_timer_ = engine_.every(options_.health.cadence,
                                  [this] { health_tick(); });
  }
  return common::Status::success();
}

void VdceEnvironment::setup_health_plane() {
  if (!obs_.health_on()) return;
  obs::health::HealthPlane& hp = obs_.health();
  const common::SimTime now = engine_.now();
  hp.start(now);

  if (options_.health.default_rules) {
    obs::health::DefaultRuleParams params;
    params.monitor_period = options_.runtime.monitor_period;
    params.cadence = options_.health.cadence;
    params.sensitivity = options_.health.sensitivity;
    params.overload_threshold = options_.runtime.overload_threshold;
    for (obs::health::HealthRule& rule : obs::health::default_rules(params)) {
      hp.add_rule(std::move(rule), now);
    }
  }
  if (options_.health.default_rules) {
    // Any displaced reservation window is an SLO event: the committed
    // machines changed under a booking (docs/RESERVATIONS.md).  The series
    // is a cumulative counter fed by the site managers' recovery path, so
    // the alert fires on the first displacement and stays active.
    obs::health::HealthRule displaced;
    displaced.id = "reservation-displaced";
    displaced.kind = obs::health::RuleKind::kThreshold;
    displaced.metric = obs::health::kReservationDisplaced;
    displaced.threshold = 0.0;
    displaced.above = true;
    hp.add_rule(std::move(displaced), now);
  }
  for (const obs::health::HealthRule& rule : options_.health.rules) {
    hp.add_rule(rule, now);
  }

  // Per-host sample series (monitor daemons cache these at start()).
  obs::health::SeriesKey key;
  for (const net::Host& host : topology_.hosts()) {
    key = obs::health::SeriesKey{};
    key.host = static_cast<std::int64_t>(host.id.value());
    key.site = static_cast<std::int64_t>(host.site.value());
    key.metric = obs::health::kHostLoad;
    (void)hp.series(key, now);
    key.metric = obs::health::kHostMem;
    (void)hp.series(key, now);
  }
  // One RTT series per unordered site pair, fed by the cadence probes.
  const std::size_t site_count = topology_.site_count();
  for (std::size_t a = 0; a + 1 < site_count; ++a) {
    for (std::size_t b = a + 1; b < site_count; ++b) {
      key = obs::health::SeriesKey{};
      key.metric = obs::health::kLinkRtt;
      key.link_a = static_cast<std::int64_t>(a);
      key.link_b = static_cast<std::int64_t>(b);
      (void)hp.series(key, now);
    }
  }
  // Control-plane series, cached for the tick's zero-lookup feeds.
  key = obs::health::SeriesKey{};
  key.metric = obs::health::kQueueDepth;
  queue_series_ = hp.series(key, now);
  key.metric = obs::health::kSchedSeconds;
  sched_series_ = hp.series(key, now);
  key.metric = obs::health::kRejections;
  (void)hp.series(key, now);
  // Wall-clock series: visible in env.health() and --series, excluded from
  // rules, tracing, and replay (same contract as metrics wall gauges).
  key = obs::health::SeriesKey{};
  key.metric = obs::health::kEventsPerSec;
  events_series_ = hp.wall_series(key, now);
}

void VdceEnvironment::health_tick() {
  obs::health::HealthPlane& hp = obs_.health();
  const common::SimTime now = engine_.now();
  // Active inter-site probes: monitor feeds are in-process per host, so a
  // partition starves nothing on its own — the probe RTT series is what the
  // link staleness/latency rules watch.
  ++probe_seq_;
  const std::size_t site_count = topology_.site_count();
  for (std::size_t a = 0; a + 1 < site_count; ++a) {
    for (std::size_t b = a + 1; b < site_count; ++b) {
      obs::health::HealthProbe probe;
      probe.site_a = static_cast<std::int64_t>(a);
      probe.site_b = static_cast<std::int64_t>(b);
      probe.seq = probe_seq_;
      probe.sent = now;
      (void)fabric_.send(net::Message{
          topology_.site(common::SiteId(static_cast<std::uint32_t>(a))).server,
          topology_.site(common::SiteId(static_cast<std::uint32_t>(b))).server,
          "health.probe", 64.0, std::any(probe)});
    }
  }
  hp.observe(queue_series_, now,
             static_cast<double>(admission_.queue_depth()));
  hp.observe(events_series_, now, engine_.events_per_sec());
  hp.evaluate(now);
}

bool VdceEnvironment::handle_health_message(const net::Message& message) {
  if (!common::starts_with(message.type, "health.")) return false;
  if (message.type == "health.probe") {
    // Bounce the payload back unchanged; the reply's arrival time measures
    // the round trip.
    (void)fabric_.send(net::Message{message.dst, message.src,
                                    "health.probe_reply", 64.0,
                                    message.payload});
  } else if (message.type == "health.probe_reply") {
    const auto& probe =
        std::any_cast<const obs::health::HealthProbe&>(message.payload);
    obs::health::SeriesKey key;
    key.metric = obs::health::kLinkRtt;
    key.link_a = probe.site_a;
    key.link_b = probe.site_b;
    obs::health::HealthPlane& hp = obs_.health();
    hp.observe(hp.find_series(key), engine_.now(),
               engine_.now() - probe.sent);
  }
  return true;
}

common::Expected<std::reference_wrapper<db::SiteRepository>>
VdceEnvironment::try_repo(common::SiteId site) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "repo(): environment not brought up"};
  }
  if (site.value() >= repos_.size()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "repo(): unknown site id " +
                             std::to_string(site.value()) + " (environment has " +
                             std::to_string(repos_.size()) + " sites)"};
  }
  return std::ref(*repos_[site.value()]);
}

common::Expected<std::reference_wrapper<runtime::SiteManager>>
VdceEnvironment::try_site_manager(common::SiteId site) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "site_manager(): environment not brought up"};
  }
  if (site.value() >= repos_.size()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "site_manager(): unknown site id " +
                             std::to_string(site.value())};
  }
  common::HostId server = topology_.site(site).server;
  runtime::SiteManager* manager = agents_.at(server.value())->site_manager();
  if (manager == nullptr) {
    return common::Error{common::ErrorCode::kInternal,
                         "site_manager(): server host " +
                             std::to_string(server.value()) +
                             " runs no Site Manager"};
  }
  return std::ref(*manager);
}

namespace {

[[noreturn]] void accessor_abort(const common::Error& error) {
  std::fprintf(stderr, "VdceEnvironment: %s\n", error.to_string().c_str());
  std::abort();
}

}  // namespace

void VdceEnvironment::bring_up() {
  auto st = try_bring_up();
  if (!st.ok()) accessor_abort(st.error());
}

db::SiteRepository& VdceEnvironment::repo(common::SiteId site) {
  auto r = try_repo(site);
  if (!r) accessor_abort(r.error());
  return r->get();
}

runtime::SiteManager& VdceEnvironment::site_manager(common::SiteId site) {
  auto r = try_site_manager(site);
  if (!r) accessor_abort(r.error());
  return r->get();
}

obs::MetricsRegistry& VdceEnvironment::metrics() {
  obs::MetricsRegistry& m = obs_.metrics();
  m.gauge("sim.now").set(engine_.now());
  m.gauge("sim.events_fired").set(static_cast<double>(engine_.total_fired()));
  m.gauge("sim.events_scheduled")
      .set(static_cast<double>(engine_.total_scheduled()));
  m.gauge("sim.max_queue_depth")
      .set(static_cast<double>(engine_.max_queue_depth()));
  m.gauge("sim.pending_events")
      .set(static_cast<double>(engine_.pending_events()));
  // Event-kernel health: throughput (events fired per wall-clock second
  // spent inside the run loops) and arena occupancy (docs/SCALING.md).
  // Throughput is wall-clock-derived, so it lives in the wall_gauge family
  // that the byte-identical to_jsonl() export omits.
  m.wall_gauge("sim.events_per_sec").set(engine_.events_per_sec());
  m.gauge("sim.arena_capacity")
      .set(static_cast<double>(engine_.arena_capacity()));
  m.gauge("sim.arena_live").set(static_cast<double>(engine_.arena_live()));
  m.gauge("sim.arena_high_water")
      .set(static_cast<double>(engine_.arena_high_water()));
  m.gauge("sim.timer_capacity")
      .set(static_cast<double>(engine_.timer_capacity()));
  return m;
}

runtime::BackgroundLoadGenerator& VdceEnvironment::background() {
  assert(load_generator_ != nullptr &&
         "enable EnvironmentOptions::background_load");
  return *load_generator_;
}

runtime::RuntimeCore& VdceEnvironment::core() {
  assert(up_);
  return *core_;
}

dsm::DsmRuntime& VdceEnvironment::enable_dsm() {
  assert(up_);
  if (!dsm_) {
    std::vector<common::HostId> hosts;
    for (const net::Host& h : topology_.hosts()) hosts.push_back(h.id);
    dsm_ = std::make_unique<dsm::DsmRuntime>(fabric_, std::move(hosts));
    for (auto& agent : agents_) {
      agent->add_extension([this](const net::Message& message) {
        if (!common::starts_with(message.type, "dsm.")) return false;
        dsm_->handle(message);
        return true;
      });
    }
  }
  return *dsm_;
}

common::Status VdceEnvironment::try_add_user(const std::string& name,
                                             const std::string& password,
                                             int priority,
                                             db::AccessDomain domain) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "add_user(): environment not brought up"};
  }
  for (auto& repo : repos_) {
    auto added = repo->users().add_user(name, password, priority, domain);
    if (!added.has_value()) return added.error();
  }
  return common::Status::success();
}

void VdceEnvironment::add_user(const std::string& name,
                               const std::string& password, int priority,
                               db::AccessDomain domain) {
  auto st = try_add_user(name, password, priority, domain);
  if (!st.ok()) accessor_abort(st.error());
}

common::Expected<Session> VdceEnvironment::login(common::SiteId site,
                                                 const std::string& name,
                                                 const std::string& password) {
  auto site_repo = try_repo(site);
  if (!site_repo) return site_repo.error();
  auto account = site_repo->get().users().authenticate(name, password);
  if (!account) return account.error();
  return Session{site, *account};
}

common::Status VdceEnvironment::drive_until(const bool& flag) {
  const common::SimTime deadline = engine_.now() + options_.sync_timeout;
  while (!flag) {
    if (engine_.empty()) {
      return common::Error{common::ErrorCode::kInternal,
                           "simulation drained with operation incomplete"};
    }
    if (engine_.now() > deadline) {
      return common::Error{common::ErrorCode::kTimeout,
                           "operation exceeded sync timeout"};
    }
    // Small step quantum so the clock stops close to the completion event
    // (the daemons' periodic timers would otherwise drag time forward).
    engine_.run_steps(8);
  }
  return common::Status::success();
}

common::Status VdceEnvironment::validate_tasks(const afg::Afg& graph,
                                               const Session& session) {
  auto site_repo = try_repo(session.site);
  if (!site_repo) return site_repo.error();
  const db::TaskPerformanceDb& tasks = site_repo->get().tasks();
  for (const afg::TaskNode& node : graph.tasks()) {
    if (tasks.contains(node.task_name)) continue;
    if (registry_.find(node.task_name).has_value()) continue;
    return common::Error{
        common::ErrorCode::kNotFound,
        "task \"" + node.task_name + "\" (instance \"" + node.instance_name +
            "\") is not registered in site " +
            std::to_string(session.site.value()) +
            "'s task library or the kernel registry; register the task "
            "before running the application"};
  }
  return common::Status::success();
}

common::Expected<sched::ResourceAllocationTable> VdceEnvironment::schedule(
    const afg::Afg& graph, const Session& session,
    sched::SchedulingPolicy options) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "schedule(): environment not brought up"};
  }
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  if (auto tasks_ok = validate_tasks(graph, session); !tasks_ok.ok()) {
    return tasks_ok.error();
  }

  // Clip the candidate set to what this user may touch.
  options.access = session.account.domain;
  // An empty per-call strategy inherits the environment default; a named
  // one must exist in the registry — fail fast with the known-name list.
  if (options.strategy.empty()) options.strategy = options_.scheduling.strategy;
  if (auto policy_ok = sched::validate_policy(options); !policy_ok.ok()) {
    return policy_ok.error();
  }

  common::AppId app(next_app_++);
  bool done = false;
  common::Expected<sched::ResourceAllocationTable> result =
      common::Error{common::ErrorCode::kInternal, "scheduling did not finish"};
  site_manager(session.site)
      .schedule_application(
          app, std::make_shared<const afg::Afg>(graph), options,
          [&done, &result](common::Expected<sched::ResourceAllocationTable> r) {
            result = std::move(r);
            done = true;
          });
  auto st = drive_until(done);
  if (!st.ok()) return st.error();
  return result;
}

common::Expected<runtime::ExecutionReport> VdceEnvironment::run_application(
    const afg::Afg& graph, const Session& session, RunOptions options) {
  auto handle = submit_application(graph, session, options);
  if (!handle) return handle.error();
  return wait(*handle);
}

// ---- advance reservations (docs/RESERVATIONS.md) ----------------------------

common::Expected<ReservationTicket> VdceEnvironment::reserve(
    const Session& session, const ReservationRequest& request) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "reserve(): environment not brought up"};
  }
  if (request.hosts.empty()) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "reserve(): a reservation must name at least one host"};
  }
  if (request.end <= request.start) {
    return common::Error{
        common::ErrorCode::kInvalidArgument,
        "reserve(): window end " + common::format_double(request.end, 3) +
            "s must be after start " + common::format_double(request.start, 3) +
            "s"};
  }
  if (request.start < engine_.now()) {
    return common::Error{
        common::ErrorCode::kInvalidArgument,
        "reserve(): window start " + common::format_double(request.start, 3) +
            "s is in the past (now " +
            common::format_double(engine_.now(), 3) + "s)"};
  }
  for (common::HostId host : request.hosts) {
    if (!host.valid() || host.value() >= topology_.hosts().size()) {
      return common::Error{common::ErrorCode::kNotFound,
                           "reserve(): host " +
                               (host.valid() ? std::to_string(host.value())
                                             : std::string("<invalid>")) +
                               " does not exist in this topology"};
    }
  }
  if (request.link_fraction > 0.0) {
    if (request.link_fraction > 1.0) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "reserve(): link_fraction must be in (0, 1]"};
    }
    if (!request.link_src.valid() || !request.link_dst.valid() ||
        request.link_src.value() >= topology_.hosts().size() ||
        request.link_dst.value() >= topology_.hosts().size()) {
      return common::Error{
          common::ErrorCode::kNotFound,
          "reserve(): link endpoints must name existing hosts"};
    }
  }
  // A stale or forged session is a typed kNotFound, exactly as at submit.
  auto account = repo(session.site).users().find(session.account.user_name);
  if (!account) return account.error();

  sched::Window window;
  window.user = account->user_name;
  window.start = request.start;
  window.end = request.end;
  window.hosts = request.hosts;
  if (request.link_fraction > 0.0) {
    window.link_src = request.link_src;
    window.link_dst = request.link_dst;
    window.link_fraction = request.link_fraction;
  }
  auto booked = core_->reservations().book(std::move(window));
  if (!booked) return booked.error();  // kReservationConflict, entity named
  if (auto quota = admission_.reserve_booking(account->user_name);
      !quota.ok()) {
    (void)core_->reservations().cancel(*booked);
    return quota.error();
  }

  if (obs_.trace_on()) {
    obs_.trace().instant(
        "reservation", "reservation.commit", engine_.now(), obs::kControlTrack,
        {obs::arg("booking", *booked), obs::arg("user", account->user_name),
         obs::arg("start", request.start), obs::arg("end", request.end),
         obs::arg("hosts", std::uint64_t{request.hosts.size()})});
  }
  if (obs_.metrics_on()) {
    obs_.metrics().counter("reservation.bookings").add();
  }
  return ReservationTicket{*booked};
}

common::Status VdceEnvironment::cancel_reservation(const Session& session,
                                                   ReservationTicket ticket) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "cancel_reservation(): environment not brought up"};
  }
  const sched::Window* window = core_->reservations().window(ticket.id);
  if (window == nullptr) {
    return common::Error{common::ErrorCode::kNotFound,
                         "cancel_reservation(): unknown or already-released "
                         "booking " +
                             std::to_string(ticket.id)};
  }
  if (window->user != session.account.user_name) {
    return common::Error{common::ErrorCode::kPermissionDenied,
                         "cancel_reservation(): booking " +
                             std::to_string(ticket.id) + " belongs to user " +
                             window->user};
  }
  const std::string user = window->user;
  if (auto st = core_->reservations().cancel(ticket.id); !st.ok()) return st;
  admission_.release_booking(user);
  if (obs_.trace_on()) {
    obs_.trace().instant("reservation", "reservation.cancel", engine_.now(),
                         obs::kControlTrack,
                         {obs::arg("booking", ticket.id),
                          obs::arg("user", user)});
  }
  if (obs_.metrics_on()) {
    obs_.metrics().counter("reservation.cancellations").add();
  }
  return common::Status::success();
}

const sched::Window* VdceEnvironment::reservation_window(
    ReservationTicket ticket) const {
  if (!up_ || core_ == nullptr) return nullptr;
  return core_->reservations().window(ticket.id);
}

// ---- multi-tenant submission pipeline (docs/TENANCY.md) ---------------------

common::Expected<AppHandle> VdceEnvironment::submit_application(
    const afg::Afg& graph, const Session& session, RunOptions options) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "submit_application(): environment not brought up"};
  }
  auto valid = graph.validate();
  if (!valid.ok()) return valid.error();
  if (auto tasks_ok = validate_tasks(graph, session); !tasks_ok.ok()) {
    return tasks_ok.error();
  }
  // The submitting user must still exist at the session site — a stale or
  // forged session is a typed kNotFound, not a deep runtime failure.
  auto account = repo(session.site).users().find(session.account.user_name);
  if (!account) return account.error();

  // A submission carrying a reservation ticket must redeem a live window it
  // owns — typed rejections here, before the queue ever sees it.
  if (options.reservation.valid()) {
    const sched::Window* window =
        core_->reservations().window(options.reservation.id);
    if (window == nullptr) {
      return common::Error{common::ErrorCode::kNotFound,
                           "submit_application(): reservation ticket " +
                               std::to_string(options.reservation.id) +
                               " is unknown or already released"};
    }
    if (window->user != account->user_name) {
      return common::Error{common::ErrorCode::kPermissionDenied,
                           "submit_application(): reservation ticket " +
                               std::to_string(options.reservation.id) +
                               " belongs to user " + window->user};
    }
    if (window->end <= engine_.now()) {
      return common::Error{common::ErrorCode::kInvalidArgument,
                           "submit_application(): reservation window [" +
                               common::format_double(window->start, 3) + "s, " +
                               common::format_double(window->end, 3) +
                               "s) has already closed"};
    }
  }

  // Resolve the effective policy before admission: an empty per-run
  // strategy inherits the environment default, and unknown names are a
  // typed kInvalidArgument here — never a silent fallback at schedule time.
  if (options.sched.strategy.empty()) {
    options.sched.strategy = options_.scheduling.strategy;
  }
  if (auto policy_ok = sched::validate_policy(options.sched); !policy_ok.ok()) {
    return policy_ok.error();
  }
  // Economy (docs/ECONOMY.md): the user-level constraints travel inside the
  // scheduling policy so the cost-aware strategies (and any future ones)
  // can optimise against them.  The legacy kill-switch leaves both at zero,
  // keeping the policy — and with it every strategy decision — byte-
  // identical to the pre-economy pipeline.
  if (!options_.runtime.legacy_no_economy) {
    options.sched.deadline = options.deadline;
    options.sched.budget = options.budget;
  }

  AppHandle handle{++next_handle_};
  if (auto st = admission_.enqueue(handle.id, account->user_name,
                                   account->priority);
      !st.ok()) {
    if (obs_.health_on()) {
      obs::health::SeriesKey key;
      key.metric = obs::health::kRejections;
      obs_.health().observe_delta(key, engine_.now());
    }
    return st.error();
  }

  auto slot = std::make_unique<SubmissionSlot>();
  slot->handle = handle;
  slot->session = session;
  slot->graph = std::make_shared<const afg::Afg>(graph);
  slot->options = options;
  slot->options.sched.access = session.account.domain;
  slot->enqueued = engine_.now();
  slots_.emplace(handle.id, std::move(slot));
  ++active_submissions_;

  if (obs_.trace_on()) {
    obs_.trace().instant("tenancy", "tenancy.submit", engine_.now(),
                         obs::kControlTrack,
                         {obs::arg("handle", handle.id),
                          obs::arg("user", account->user_name),
                          obs::arg("app_name", graph.name()),
                          obs::arg("queued",
                                   std::uint64_t{admission_.queue_depth()})});
  }
  if (obs_.metrics_on()) {
    obs_.metrics().counter("tenancy.submissions").add();
  }

  pump_submissions();
  return handle;
}

void VdceEnvironment::pump_submissions() {
  while (auto next = admission_.admit_next()) {
    SubmissionSlot& slot = *slots_.at(*next);
    slot.admitted = engine_.now();
    slot.released = slot.admitted;
    const std::uint64_t booking = slot.options.reservation.id;
    if (booking != 0 && !options_.runtime.legacy_instant_reservations) {
      const sched::Window* window = core_->reservations().window(booking);
      if (window == nullptr) {
        // Cancelled between submit and admission.
        finalize_submission(
            slot, common::Error{common::ErrorCode::kNotFound,
                                "reservation booking " +
                                    std::to_string(booking) +
                                    " was cancelled before admission"});
        continue;
      }
      if (window->start > engine_.now()) {
        // Park until the committed window opens; the timer un-parks it.
        slot.state = AppState::kReserved;
        engine_.post_at(window->start, [this, handle = slot.handle.id] {
          release_reserved(handle);
        });
        continue;
      }
    }
    begin_scheduling(slot);
  }
}

void VdceEnvironment::begin_scheduling(SubmissionSlot& slot) {
  slot.state = AppState::kScheduling;
  slot.sched_app = common::AppId(next_app_++);
  const std::uint64_t booking = slot.options.reservation.id;
  if (booking != 0 && !options_.runtime.legacy_instant_reservations) {
    // Bind the booking to this round's AppId so the site schedulers treat
    // the window as the owner's (candidates restricted to the booked
    // machines, own window never blocks).
    core_->reservations().bind_owner(booking, slot.sched_app);
  }
  site_manager(slot.session.site)
      .schedule_application(
          slot.sched_app, slot.graph, slot.options.sched,
          [this, handle = slot.handle.id](
              common::Expected<sched::ResourceAllocationTable> table) {
            on_scheduled(handle, std::move(table));
          });
}

void VdceEnvironment::release_reserved(std::uint64_t handle) {
  auto it = slots_.find(handle);
  if (it == slots_.end()) return;
  SubmissionSlot& slot = *it->second;
  if (slot.terminal || slot.state != AppState::kReserved) return;
  slot.released = engine_.now();
  if (obs_.health_on()) {
    obs::health::SeriesKey key;
    key.metric = obs::health::kReservationWait;
    obs_.health().observe_delta(key, engine_.now(),
                                slot.released - slot.admitted);
  }
  begin_scheduling(slot);
}

void VdceEnvironment::on_scheduled(
    std::uint64_t handle, common::Expected<sched::ResourceAllocationTable> table) {
  auto it = slots_.find(handle);
  if (it == slots_.end()) return;
  SubmissionSlot& slot = *it->second;
  // Measured from released, not admitted: a reserved submission's parked
  // wait is its own phase, not scheduling time.  released == admitted for
  // every other run.
  slot.scheduling_time = engine_.now() - slot.released;
  obs_.health().observe(sched_series_, engine_.now(), slot.scheduling_time);

  if (!table) {
    if (table.error().code == common::ErrorCode::kNoFeasibleResource &&
        core_->reservations().any_other(slot.sched_app)) {
      // Machines exist but concurrent applications hold them: re-queue and
      // retry after the next completion frees its reservations.  At least
      // one other application is executing (reservations imply it), so a
      // completion — and with it another pump — is guaranteed.
      slot.state = AppState::kDeferred;
      admission_.defer(handle);
      if (obs_.trace_on()) {
        obs_.trace().instant("tenancy", "tenancy.defer", engine_.now(),
                             obs::kControlTrack,
                             {obs::arg("handle", handle),
                              obs::arg("app_name", slot.graph->name())});
      }
      if (obs_.metrics_on()) {
        obs_.metrics().counter("tenancy.deferrals").add();
      }
      return;
    }
    finalize_submission(slot, table.error());
    return;
  }

  const RunOptions& run = slot.options;
  if (run.enforce_admission && run.deadline > 0.0 &&
      table->schedule_length > run.deadline) {
    finalize_submission(
        slot, common::Error{
                  common::ErrorCode::kNoFeasibleResource,
                  "admission rejected: estimated schedule length " +
                      common::format_double(table->schedule_length, 3) +
                      "s exceeds the " +
                      common::format_double(run.deadline, 3) + "s deadline"});
    return;
  }
  // Economy admission gate (docs/ECONOMY.md): a positive budget is a hard
  // constraint, enforced unconditionally (unlike the deadline QoS check
  // above).  The quote charged here — predicted CPU-seconds at host prices
  // plus edge bytes at link prices — is the same estimate recovery
  // re-placement and the final report use, so an admitted run satisfies
  // spend() <= budget by construction.  Typed kBudgetExceeded, not
  // kNoFeasibleResource: the contention-deferral path above must not retry
  // a submission that no amount of waiting can make affordable.
  if (!options_.runtime.legacy_no_economy && run.budget > 0.0) {
    const econ::SpendBreakdown quote = econ::estimate_spend(
        *slot.graph, *table, topology_, options_.runtime.prices);
    if (quote.total() > run.budget) {
      if (obs_.metrics_on()) {
        obs_.metrics().counter("econ.budget_rejections").add();
      }
      finalize_submission(
          slot,
          common::Error{common::ErrorCode::kBudgetExceeded,
                        "admission rejected: quoted spend " +
                            common::format_double(quote.total(), 3) +
                            " G$ exceeds the " +
                            common::format_double(run.budget, 3) +
                            " G$ budget"});
      return;
    }
  }

  auto resolved = resolve_app_resources(*slot.graph, slot.session, run);
  if (!resolved) {
    finalize_submission(slot, resolved.error());
    return;
  }
  slot.exec_app = common::AppId(next_app_++);
  slot.state = AppState::kExecuting;
  if (slot.options.reservation.valid() &&
      !options_.runtime.legacy_instant_reservations) {
    // Re-bind to the execution's AppId: recovery re-placement checks the
    // window table against the executing app, not the scheduling round.
    core_->reservations().bind_owner(slot.options.reservation.id,
                                     slot.exec_app);
  }
  site_manager(slot.session.site)
      .execute_application(slot.exec_app, *slot.graph, std::move(*table),
                           std::move(resolved->perf),
                           std::move(resolved->kernels),
                           std::move(resolved->initial),
                           [this, handle](runtime::ExecutionReport report) {
                             on_executed(handle, std::move(report));
                           },
                           run.budget);
}

void VdceEnvironment::on_executed(std::uint64_t handle,
                                  runtime::ExecutionReport report) {
  auto it = slots_.find(handle);
  if (it == slots_.end()) return;
  SubmissionSlot& slot = *it->second;
  report.scheduling_time = slot.scheduling_time;
  report.deadline = slot.options.deadline;
  report.enqueued = slot.enqueued;
  report.admitted = slot.admitted;
  report.released = std::max(slot.released, slot.admitted);
  // Contention span only when the submission actually waited behind other
  // tenants — a solo run's trace stays byte-identical to the pre-tenancy
  // pipeline's.
  if (obs_.trace_on() && slot.admitted > slot.enqueued) {
    obs_.trace().span("app", "app.contention", slot.enqueued, slot.admitted,
                      obs::kControlTrack,
                      {obs::arg("app", report.app.value()),
                       obs::arg("user", slot.session.account.user_name)},
                      obs::Causal{.app = report.app.value()});
  }
  if (obs_.metrics_on() && slot.admitted > slot.enqueued) {
    obs_.metrics()
        .histogram("tenancy.contention_seconds")
        .add(slot.admitted - slot.enqueued);
  }
  // Reservation span only when the submission actually parked for a window
  // — a ticketless run's trace stays byte-identical to the pre-reservation
  // pipeline's (the differential suite pins this).
  if (obs_.trace_on() && slot.released > slot.admitted) {
    obs_.trace().span("app", "app.reservation", slot.admitted, slot.released,
                      obs::kControlTrack,
                      {obs::arg("app", report.app.value()),
                       obs::arg("user", slot.session.account.user_name),
                       obs::arg("booking", slot.options.reservation.id)},
                      obs::Causal{.app = report.app.value()});
  }
  if (obs_.metrics_on() && slot.released > slot.admitted) {
    obs_.metrics()
        .histogram("reservation.wait_seconds")
        .add(slot.released - slot.admitted);
  }
  if (!report.success) {
    obs_.flight().record(engine_.now(), obs::FlightCode::kRunFailed,
                         obs::kControlTrack, report.app.value());
    dump_postmortem();
  }
  finalize_submission(slot, std::move(report));
}

void VdceEnvironment::finalize_submission(
    SubmissionSlot& slot, common::Expected<runtime::ExecutionReport> result) {
  // Surface the health alerts that fired while this submission was in
  // flight — the run's own SLO weather report.
  if (result.has_value() && obs_.health_on()) {
    for (const obs::health::Alert& alert : obs_.health().alerts()) {
      if (alert.fired >= slot.enqueued) result->alerts.push_back(alert);
    }
  }
  slot.result = std::move(result);
  slot.state = AppState::kFinished;
  slot.terminal = true;
  admission_.complete(slot.handle.id);
  // A reservation is spent by its run: release the remaining window (more
  // room for backfill — the no-delay invariant only ever gains) and free
  // the user's booking-quota share.  A later cancel_reservation() on the
  // spent ticket is a clean kNotFound, never a double release.
  if (slot.options.reservation.valid() &&
      !options_.runtime.legacy_instant_reservations &&
      core_->reservations().window(slot.options.reservation.id) != nullptr) {
    (void)core_->reservations().cancel(slot.options.reservation.id);
    admission_.release_booking(slot.session.account.user_name);
  }
  --active_submissions_;
  // A freed slot (and freed reservations) may unblock queued or deferred
  // submissions.
  pump_submissions();
}

common::Expected<runtime::ExecutionReport> VdceEnvironment::wait(
    AppHandle handle) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "wait(): environment not brought up"};
  }
  auto it = slots_.find(handle.id);
  if (it == slots_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "wait(): unknown application handle " +
                             std::to_string(handle.id)};
  }
  SubmissionSlot& slot = *it->second;
  if (!slot.terminal) {
    if (auto st = drive_until(slot.terminal); !st.ok()) {
      obs_.flight().record(engine_.now(), obs::FlightCode::kRunFailed,
                           obs::kControlTrack, slot.exec_app.value());
      dump_postmortem();
      return st.error();
    }
  }
  return slot.result;
}

common::Status VdceEnvironment::drain() {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "drain(): environment not brought up"};
  }
  const common::SimTime deadline = engine_.now() + options_.sync_timeout;
  while (active_submissions_ > 0) {
    if (engine_.empty()) {
      return common::Error{common::ErrorCode::kInternal,
                           "simulation drained with operation incomplete"};
    }
    if (engine_.now() > deadline) {
      return common::Error{common::ErrorCode::kTimeout,
                           "operation exceeded sync timeout"};
    }
    engine_.run_steps(8);
  }
  return common::Status::success();
}

common::Expected<runtime::ExecutionReport> VdceEnvironment::report(
    AppHandle handle) const {
  auto it = slots_.find(handle.id);
  if (it == slots_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "report(): unknown application handle " +
                             std::to_string(handle.id)};
  }
  if (!it->second->terminal) {
    return common::Error{common::ErrorCode::kInvalidArgument,
                         "report(): application " + std::to_string(handle.id) +
                             " is still in flight; wait() or drain() first"};
  }
  return it->second->result;
}

common::Expected<AppState> VdceEnvironment::app_state(AppHandle handle) const {
  auto it = slots_.find(handle.id);
  if (it == slots_.end()) {
    return common::Error{common::ErrorCode::kNotFound,
                         "app_state(): unknown application handle " +
                             std::to_string(handle.id)};
  }
  return it->second->state;
}

common::Expected<runtime::ExecutionReport> VdceEnvironment::execute_with_table(
    const afg::Afg& graph, sched::ResourceAllocationTable table,
    const Session& session, RunOptions options) {
  return execute_plan(graph, std::move(table), session, options);
}

common::Expected<VdceEnvironment::ResolvedApp>
VdceEnvironment::resolve_app_resources(const afg::Afg& graph,
                                       const Session& session,
                                       const RunOptions& options) {
  ResolvedApp resolved;

  // Resolve per-task performance records and kernels.
  resolved.kernels.resize(graph.task_count());
  resolved.perf.reserve(graph.task_count());
  for (const afg::TaskNode& node : graph.tasks()) {
    auto record = sched::resolve_perf(node, repo(session.site).tasks());
    if (!record) return record.error();
    resolved.perf.push_back(std::move(*record));
    if (options.real_kernels) {
      auto impl = registry_.find(node.task_name);
      if (impl && impl->kernel) {
        resolved.kernels[node.id.value()] = impl->kernel;
      }
    }
  }

  // Resolve non-dataflow file inputs through the I/O service's object
  // store; a missing object is fine for timing-only tasks (the transfer is
  // still charged at the declared size) but fatal when a real kernel needs
  // the value.
  for (const afg::TaskNode& node : graph.tasks()) {
    for (int port = 0; port < node.in_ports(); ++port) {
      const afg::FileSpec& f =
          node.props.inputs[static_cast<std::size_t>(port)];
      if (f.dataflow || f.path.empty()) continue;
      auto object = store_.get(f.path);
      if (object) {
        resolved.initial[node.id.value()][port] = object->value;
      } else if (options.real_kernels && resolved.kernels[node.id.value()]) {
        return common::Error{common::ErrorCode::kNotFound,
                             "input object missing from store: " + f.path +
                                 " (task " + node.instance_name + ")"};
      }
    }
  }
  return resolved;
}

common::Expected<runtime::ExecutionReport> VdceEnvironment::execute_plan(
    const afg::Afg& graph, sched::ResourceAllocationTable table,
    const Session& session, const RunOptions& options) {
  if (!up_) {
    return common::Error{common::ErrorCode::kInternal,
                         "execute(): environment not brought up"};
  }
  if (auto tasks_ok = validate_tasks(graph, session); !tasks_ok.ok()) {
    return tasks_ok.error();
  }
  auto resolved = resolve_app_resources(graph, session, options);
  if (!resolved) return resolved.error();

  common::AppId app(next_app_++);
  bool done = false;
  runtime::ExecutionReport report;
  site_manager(session.site)
      .execute_application(app, graph, std::move(table),
                           std::move(resolved->perf),
                           std::move(resolved->kernels),
                           std::move(resolved->initial),
                           [&done, &report](runtime::ExecutionReport r) {
                             report = std::move(r);
                             done = true;
                           },
                           options.budget);
  auto st = drive_until(done);
  if (!st.ok()) {
    obs_.flight().record(engine_.now(), obs::FlightCode::kRunFailed,
                         obs::kControlTrack, app.value());
    dump_postmortem();
    return st.error();
  }
  report.deadline = options.deadline;
  if (!report.success) {
    // Recovery escalated past the budget (or the run failed outright): the
    // coordinator already logged kEscalation / kAppDone(success=0); preserve
    // the recent-event ring for offline diagnosis.
    obs_.flight().record(engine_.now(), obs::FlightCode::kRunFailed,
                         obs::kControlTrack, app.value());
    dump_postmortem();
  }
  return report;
}

void VdceEnvironment::dump_postmortem() {
  obs::FlightRecorder& flight = obs_.flight();
  if (!flight.enabled() || flight.total() == 0) return;
  if (options_.flight.postmortem_path.empty()) return;
  if (common::Status written = flight.dump(options_.flight.postmortem_path);
      !written.ok()) {
    std::fprintf(stderr, "VdceEnvironment: post-mortem dump failed: %s\n",
                 written.error().to_string().c_str());
  }
}

void VdceEnvironment::run_for(common::SimDuration duration) {
  engine_.run_until(engine_.now() + duration);
}

common::Expected<std::unique_ptr<VdceEnvironment>>
VdceEnvironment::make_scale_environment(const ScaleSpec& spec) {
  net::Topology topology = scale::make_grid(spec.grid);
  auto env = std::make_unique<VdceEnvironment>(std::move(topology),
                                               spec.options);
  // Bring-up schedules a handful of daemon timers per host; reserve the
  // event heap once instead of regrowing it through the initial burst.
  env->engine().reserve_events(env->topology().host_count() * 8);
  if (common::Status up = env->try_bring_up(); !up.ok()) return up.error();
  if (!spec.admin_user.empty()) {
    if (common::Status added =
            env->try_add_user(spec.admin_user, spec.admin_password);
        !added.ok()) {
      return added.error();
    }
  }
  return env;
}

}  // namespace vdce
