#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

namespace vdce::obs {

namespace {

/// Deterministic JSON number rendering: shortest-ish fixed form via %.9g.
/// The same binary over the same event sequence renders identical bytes,
/// which is what the determinism guarantee needs.
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_args_object(std::string& out, const std::vector<TraceArg>& args) {
  out += '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(args[i].key);
    out += "\":";
    if (args[i].is_number) {
      out += args[i].value;
    } else {
      out += '"';
      out += json_escape(args[i].value);
      out += '"';
    }
  }
  out += '}';
}

void append_causal_fields(std::string& out, const Causal& causal) {
  if (causal.app != kNoCausalId) {
    out += ",\"app\":";
    out += std::to_string(causal.app);
  }
  if (causal.task != kNoCausalId) {
    out += ",\"task\":";
    out += std::to_string(causal.task);
  }
  if (causal.src_task != kNoCausalId) {
    out += ",\"src_task\":";
    out += std::to_string(causal.src_task);
  }
  if (!causal.deps.empty()) {
    out += ",\"deps\":[";
    for (std::size_t i = 0; i < causal.deps.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(causal.deps[i]);
    }
    out += ']';
  }
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
TraceArg arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), json_number(value), true};
}
TraceArg arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, std::uint32_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, std::int64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, int value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false", true};
}

void TraceSink::push(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSink::span(std::string category, std::string name,
                     common::SimTime start, common::SimTime end,
                     std::uint32_t track, std::vector<TraceArg> args,
                     Causal causal) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.phase = TracePhase::kSpan;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.start = start;
  ev.duration = end - start;
  ev.track = track;
  ev.causal = std::move(causal);
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::instant(std::string category, std::string name,
                        common::SimTime time, std::uint32_t track,
                        std::vector<TraceArg> args, Causal causal) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.phase = TracePhase::kInstant;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.start = time;
  ev.track = track;
  ev.causal = std::move(causal);
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::clear() {
  events_.clear();
  dropped_ = 0;
}

std::size_t TraceSink::count(std::string_view name_prefix) const {
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name.size() >= name_prefix.size() &&
        std::string_view(ev.name).substr(0, name_prefix.size()) ==
            name_prefix) {
      ++n;
    }
  }
  return n;
}

std::string render_jsonl(const std::vector<TrackInfo>& tracks,
                         const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TrackInfo& t : tracks) {
    out += "{\"meta\":\"track\",\"track\":";
    out += std::to_string(t.track);
    out += ",\"site\":";
    out += std::to_string(t.site);
    out += ",\"name\":\"";
    out += json_escape(t.name);
    out += "\"}\n";
  }
  for (const TraceEvent& ev : events) {
    out += "{\"phase\":\"";
    out += to_string(ev.phase);
    out += "\",\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"t\":";
    out += json_number(ev.start);
    if (ev.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      out += json_number(ev.duration);
    }
    out += ",\"track\":";
    out += std::to_string(ev.track);
    append_causal_fields(out, ev.causal);
    if (!ev.args.empty()) {
      out += ",\"args\":";
      append_args_object(out, ev.args);
    }
    out += "}\n";
  }
  return out;
}

std::string TraceSink::to_jsonl() const {
  return render_jsonl(tracks_, events_);
}

std::string render_chrome_trace(const std::vector<TrackInfo>& tracks,
                                const std::vector<TraceEvent>& events) {
  // Timestamps are simulated seconds; Chrome expects microseconds.
  constexpr double kUsPerSecond = 1e6;
  // pid layout: 0 = control plane, site s = pid s + 1.  Hosts whose site is
  // unknown (no track metadata) fall back onto the control pid so bare
  // sinks still export a readable single-process trace.
  constexpr std::uint32_t kControlPid = 0;
  auto pid_of = [&](std::uint32_t track) -> std::uint32_t {
    if (track == kControlTrack) return kControlPid;
    for (const TrackInfo& t : tracks) {
      if (t.track == track && t.site != kNoCausalId) return t.site + 1;
    }
    return kControlPid;
  };
  auto name_of = [&](std::uint32_t track) -> std::string {
    if (track == kControlTrack) return "control";
    for (const TrackInfo& t : tracks) {
      if (t.track == track && !t.name.empty()) return t.name;
    }
    return "host " + std::to_string(track);
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  // process_name metadata: one process per site plus the control plane.
  std::vector<std::uint32_t> pids_seen;
  auto emit_process = [&](std::uint32_t pid) {
    for (std::uint32_t p : pids_seen) {
      if (p == pid) return;
    }
    pids_seen.push_back(pid);
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += pid == kControlPid ? "control"
                              : "site " + std::to_string(pid - 1);
    out += "\"}}";
  };

  // thread_name metadata so tracks read "m3.site1.vdce" in the viewer.
  std::vector<std::uint32_t> tracks_seen;
  for (const TraceEvent& ev : events) {
    bool seen = false;
    for (std::uint32_t t : tracks_seen) {
      if (t == ev.track) {
        seen = true;
        break;
      }
    }
    if (!seen) tracks_seen.push_back(ev.track);
  }
  for (std::uint32_t track : tracks_seen) {
    emit_process(pid_of(track));
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(pid_of(track));
    out += ",\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"name\":\"";
    out += json_escape(name_of(track));
    out += "\"}}";
  }

  for (const TraceEvent& ev : events) {
    comma();
    out += "{\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"ph\":\"";
    out += ev.phase == TracePhase::kSpan ? 'X' : 'i';
    out += "\",\"ts\":";
    out += json_number(ev.start * kUsPerSecond);
    if (ev.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      out += json_number(ev.duration * kUsPerSecond);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"pid\":";
    out += std::to_string(pid_of(ev.track));
    out += ",\"tid\":";
    out += std::to_string(ev.track);
    if (!ev.args.empty() || !ev.causal.empty()) {
      // Surface causal identity inside args so the viewer shows it on click.
      out += ",\"args\":{";
      bool first_arg = true;
      auto arg_comma = [&] {
        if (!first_arg) out += ',';
        first_arg = false;
      };
      if (ev.causal.app != kNoCausalId) {
        arg_comma();
        out += "\"causal_app\":" + std::to_string(ev.causal.app);
      }
      if (ev.causal.task != kNoCausalId) {
        arg_comma();
        out += "\"causal_task\":" + std::to_string(ev.causal.task);
      }
      if (ev.causal.src_task != kNoCausalId) {
        arg_comma();
        out += "\"causal_src_task\":" + std::to_string(ev.causal.src_task);
      }
      for (const TraceArg& a : ev.args) {
        arg_comma();
        out += '"';
        out += json_escape(a.key);
        out += "\":";
        if (a.is_number) {
          out += a.value;
        } else {
          out += '"';
          out += json_escape(a.value);
          out += '"';
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceSink::to_chrome_trace() const {
  return render_chrome_trace(tracks_, events_);
}

// ---- JSONL parse-back -------------------------------------------------------
//
// A deliberately small JSON-object-per-line parser for the exporter's own
// output.  It is lossless: number tokens are kept as raw text, so
// render_jsonl(parse_jsonl(x)) == x byte-for-byte.

namespace {

class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  /// Parse `{"key":value,...}` invoking `field(key, raw_or_unescaped)`.
  /// Returns false on malformed syntax.
  template <typename OnString, typename OnNumber, typename OnArray,
            typename OnObjectStart>
  bool parse_object(const OnString& on_string, const OnNumber& on_number,
                    const OnArray& on_array, const OnObjectStart& on_object);

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ == s_.size();
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (peek() != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The exporter only emits \u00xx for control bytes.
          out += static_cast<char>(code & 0xFF);
          break;
        }
        default: return false;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  /// Raw number token (kept as text for lossless round-trips).
  bool parse_number_raw(std::string& out) {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    out.assign(s_.substr(start, pos_ - start));
    return true;
  }

  bool parse_literal(std::string_view word) {
    skip_ws();
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void advance() { ++pos_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// One parsed value in an exporter line: a string, a raw number token, a
/// boolean literal (from bool args), or an array of raw number tokens.
struct FieldValue {
  enum class Kind { kString, kNumber, kLiteral, kNumberArray, kArgs } kind;
  std::string text;                         ///< string (unescaped) / raw token
  std::vector<std::string> numbers;         ///< kNumberArray
  std::vector<TraceArg> args;               ///< kArgs
};

bool parse_value(LineParser& p, FieldValue& out);

bool parse_args_object(LineParser& p, std::vector<TraceArg>& out) {
  if (p.peek() != '{') return false;
  p.advance();
  if (p.peek() == '}') {
    p.advance();
    return true;
  }
  while (true) {
    TraceArg a;
    if (!p.parse_string(a.key)) return false;
    if (p.peek() != ':') return false;
    p.advance();
    char c = p.peek();
    if (c == '"') {
      if (!p.parse_string(a.value)) return false;
      a.is_number = false;
    } else if (c == 't') {
      if (!p.parse_literal("true")) return false;
      a.value = "true";
      a.is_number = true;
    } else if (c == 'f') {
      if (!p.parse_literal("false")) return false;
      a.value = "false";
      a.is_number = true;
    } else {
      if (!p.parse_number_raw(a.value)) return false;
      a.is_number = true;
    }
    out.push_back(std::move(a));
    if (p.peek() == ',') {
      p.advance();
      continue;
    }
    if (p.peek() == '}') {
      p.advance();
      return true;
    }
    return false;
  }
}

bool parse_value(LineParser& p, FieldValue& out) {
  char c = p.peek();
  if (c == '"') {
    out.kind = FieldValue::Kind::kString;
    return p.parse_string(out.text);
  }
  if (c == '[') {
    out.kind = FieldValue::Kind::kNumberArray;
    p.advance();
    if (p.peek() == ']') {
      p.advance();
      return true;
    }
    while (true) {
      std::string num;
      if (!p.parse_number_raw(num)) return false;
      out.numbers.push_back(std::move(num));
      if (p.peek() == ',') {
        p.advance();
        continue;
      }
      if (p.peek() == ']') {
        p.advance();
        return true;
      }
      return false;
    }
  }
  if (c == '{') {
    out.kind = FieldValue::Kind::kArgs;
    return parse_args_object(p, out.args);
  }
  if (c == 't' || c == 'f') {
    out.kind = FieldValue::Kind::kLiteral;
    if (p.parse_literal("true")) {
      out.text = "true";
      return true;
    }
    if (p.parse_literal("false")) {
      out.text = "false";
      return true;
    }
    return false;
  }
  out.kind = FieldValue::Kind::kNumber;
  return p.parse_number_raw(out.text);
}

common::Error parse_error(std::size_t line_no, const std::string& what) {
  return common::Error{common::ErrorCode::kParseError,
                       "trace JSONL line " + std::to_string(line_no) + ": " +
                           what};
}

bool to_u32(const std::string& raw, std::uint32_t& out) {
  if (raw.empty()) return false;
  std::uint64_t v = 0;
  for (char c : raw) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xFFFFFFFFull) return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace

common::Expected<ParsedTrace> parse_jsonl(std::string_view text) {
  ParsedTrace parsed;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    LineParser p(line);
    if (p.peek() != '{') return parse_error(line_no, "expected '{'");
    p.advance();

    // Collect the line's fields generically, then interpret.
    bool is_meta = false;
    TrackInfo track_info;
    TraceEvent ev;
    bool has_dur = false;
    bool first_field = true;
    while (true) {
      if (p.peek() == '}') {
        p.advance();
        break;
      }
      if (!first_field) {
        if (p.peek() != ',') return parse_error(line_no, "expected ','");
        p.advance();
      }
      first_field = false;
      std::string key;
      if (!p.parse_string(key)) return parse_error(line_no, "bad key");
      if (p.peek() != ':') return parse_error(line_no, "expected ':'");
      p.advance();
      FieldValue value;
      if (!parse_value(p, value)) {
        return parse_error(line_no, "bad value for \"" + key + "\"");
      }

      if (key == "meta") {
        is_meta = true;
      } else if (key == "phase") {
        ev.phase = value.text == "span" ? TracePhase::kSpan
                                        : TracePhase::kInstant;
      } else if (key == "cat") {
        ev.category = std::move(value.text);
      } else if (key == "name") {
        if (is_meta) {
          track_info.name = std::move(value.text);
        } else {
          ev.name = std::move(value.text);
        }
      } else if (key == "t") {
        ev.start = std::strtod(value.text.c_str(), nullptr);
      } else if (key == "dur") {
        ev.duration = std::strtod(value.text.c_str(), nullptr);
        has_dur = true;
      } else if (key == "track") {
        std::uint32_t v = 0;
        if (!to_u32(value.text, v)) return parse_error(line_no, "bad track");
        if (is_meta) {
          track_info.track = v;
        } else {
          ev.track = v;
        }
      } else if (key == "site") {
        std::uint32_t v = 0;
        if (!to_u32(value.text, v)) return parse_error(line_no, "bad site");
        track_info.site = v;
      } else if (key == "app") {
        if (!to_u32(value.text, ev.causal.app)) {
          return parse_error(line_no, "bad app");
        }
      } else if (key == "task") {
        if (!to_u32(value.text, ev.causal.task)) {
          return parse_error(line_no, "bad task");
        }
      } else if (key == "src_task") {
        if (!to_u32(value.text, ev.causal.src_task)) {
          return parse_error(line_no, "bad src_task");
        }
      } else if (key == "deps") {
        for (const std::string& raw : value.numbers) {
          std::uint32_t v = 0;
          if (!to_u32(raw, v)) return parse_error(line_no, "bad dep");
          ev.causal.deps.push_back(v);
        }
      } else if (key == "args") {
        ev.args = std::move(value.args);
      } else {
        return parse_error(line_no, "unknown key \"" + key + "\"");
      }
    }
    if (!p.at_end()) return parse_error(line_no, "trailing characters");

    if (is_meta) {
      parsed.tracks.push_back(std::move(track_info));
    } else {
      if (ev.phase == TracePhase::kSpan && !has_dur) {
        return parse_error(line_no, "span without dur");
      }
      parsed.events.push_back(std::move(ev));
    }
  }
  return parsed;
}

namespace {

common::Status write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot open for writing: " + path};
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    return common::Error{common::ErrorCode::kIoError,
                         "short write to: " + path};
  }
  return common::Status::success();
}

}  // namespace

common::Status TraceSink::write_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

common::Status TraceSink::write_chrome_trace(const std::string& path) const {
  return write_file(path, to_chrome_trace());
}

}  // namespace vdce::obs
