#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

namespace vdce::obs {

namespace {

/// Deterministic JSON number rendering: shortest-ish fixed form via %.9g.
/// The same binary over the same event sequence renders identical bytes,
/// which is what the determinism guarantee needs.
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_args_object(std::string& out, const std::vector<TraceArg>& args) {
  out += '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(args[i].key);
    out += "\":";
    if (args[i].is_number) {
      out += args[i].value;
    } else {
      out += '"';
      out += json_escape(args[i].value);
      out += '"';
    }
  }
  out += '}';
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
TraceArg arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), json_number(value), true};
}
TraceArg arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, std::uint32_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, std::int64_t value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, int value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}
TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false", true};
}

void TraceSink::push(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSink::span(std::string category, std::string name,
                     common::SimTime start, common::SimTime end,
                     std::uint32_t track, std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.phase = TracePhase::kSpan;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.start = start;
  ev.duration = end - start;
  ev.track = track;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::instant(std::string category, std::string name,
                        common::SimTime time, std::uint32_t track,
                        std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.phase = TracePhase::kInstant;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.start = time;
  ev.track = track;
  ev.args = std::move(args);
  push(std::move(ev));
}

void TraceSink::clear() {
  events_.clear();
  dropped_ = 0;
}

std::size_t TraceSink::count(std::string_view name_prefix) const {
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name.size() >= name_prefix.size() &&
        std::string_view(ev.name).substr(0, name_prefix.size()) ==
            name_prefix) {
      ++n;
    }
  }
  return n;
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    out += "{\"phase\":\"";
    out += to_string(ev.phase);
    out += "\",\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"t\":";
    out += json_number(ev.start);
    if (ev.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      out += json_number(ev.duration);
    }
    out += ",\"track\":";
    out += std::to_string(ev.track);
    if (!ev.args.empty()) {
      out += ",\"args\":";
      append_args_object(out, ev.args);
    }
    out += "}\n";
  }
  return out;
}

std::string TraceSink::to_chrome_trace() const {
  // Timestamps are simulated seconds; Chrome expects microseconds.
  constexpr double kUsPerSecond = 1e6;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  // thread_name metadata so tracks read "host 3" / "control" in the viewer.
  std::vector<std::uint32_t> tracks;
  for (const TraceEvent& ev : events_) {
    bool seen = false;
    for (std::uint32_t t : tracks) {
      if (t == ev.track) {
        seen = true;
        break;
      }
    }
    if (!seen) tracks.push_back(ev.track);
  }
  for (std::uint32_t track : tracks) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"name\":\"";
    out += track == kControlTrack ? "control"
                                  : "host " + std::to_string(track);
    out += "\"}}";
  }

  for (const TraceEvent& ev : events_) {
    comma();
    out += "{\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"ph\":\"";
    out += ev.phase == TracePhase::kSpan ? 'X' : 'i';
    out += "\",\"ts\":";
    out += json_number(ev.start * kUsPerSecond);
    if (ev.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      out += json_number(ev.duration * kUsPerSecond);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(ev.track);
    if (!ev.args.empty()) {
      out += ",\"args\":";
      append_args_object(out, ev.args);
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

namespace {

common::Status write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot open for writing: " + path};
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    return common::Error{common::ErrorCode::kIoError,
                         "short write to: " + path};
  }
  return common::Status::success();
}

}  // namespace

common::Status TraceSink::write_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

common::Status TraceSink::write_chrome_trace(const std::string& path) const {
  return write_file(path, to_chrome_trace());
}

}  // namespace vdce::obs
