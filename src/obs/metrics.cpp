#include "obs/metrics.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace vdce::obs {

namespace {

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::wall_gauge_value(const std::string& name) const {
  auto it = wall_gauges_.find(name);
  return it == wall_gauges_.end() ? 0.0 : it->second.value();
}

const common::Stats* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::reset() {
  // Values are reset in place so handles cached by instrumented components
  // remain valid (map nodes are never erased).
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.set(0.0);
  for (auto& [name, h] : histograms_) h = common::Stats{};
  for (auto& [name, g] : wall_gauges_) g.set(0.0);
}

std::string MetricsRegistry::to_jsonl() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "{\"kind\":\"counter\",\"name\":\"" + json_escape(name) +
           "\",\"value\":" + std::to_string(c.value()) + "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "{\"kind\":\"gauge\",\"name\":\"" + json_escape(name) +
           "\",\"value\":" + json_number(g.value()) + "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "{\"kind\":\"histogram\",\"name\":\"" + json_escape(name) +
           "\",\"count\":" + std::to_string(h.count());
    if (!h.empty()) {
      out += ",\"mean\":" + json_number(h.mean()) +
             ",\"min\":" + json_number(h.min()) +
             ",\"p50\":" + json_number(h.percentile(50)) +
             ",\"p99\":" + json_number(h.percentile(99)) +
             ",\"max\":" + json_number(h.max());
    }
    out += "}\n";
  }
  return out;
}

std::string MetricsRegistry::render() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "  " + name + " = " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "  " + name + " = " + common::format_double(g.value(), 3) + "\n";
  }
  for (const auto& [name, g] : wall_gauges_) {
    out += "  " + name + " = " + common::format_double(g.value(), 3) +
           " (wall clock)\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "  " + name + ": " + h.summary() + "\n";
  }
  return out;
}

}  // namespace vdce::obs
