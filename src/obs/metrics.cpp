#include "obs/metrics.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace vdce::obs {

namespace {

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::wall_gauge_value(const std::string& name) const {
  auto it = wall_gauges_.find(name);
  return it == wall_gauges_.end() ? 0.0 : it->second.value();
}

const common::Stats* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::reset() {
  // Values are reset in place so handles cached by instrumented components
  // remain valid (map nodes are never erased).
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.set(0.0);
  for (auto& [name, h] : histograms_) h = common::Stats{};
  for (auto& [name, g] : wall_gauges_) g.set(0.0);
}

std::string MetricsRegistry::to_jsonl() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "{\"kind\":\"counter\",\"name\":\"" + json_escape(name) +
           "\",\"value\":" + std::to_string(c.value()) + "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "{\"kind\":\"gauge\",\"name\":\"" + json_escape(name) +
           "\",\"value\":" + json_number(g.value()) + "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "{\"kind\":\"histogram\",\"name\":\"" + json_escape(name) +
           "\",\"count\":" + std::to_string(h.count());
    if (!h.empty()) {
      out += ",\"mean\":" + json_number(h.mean()) +
             ",\"min\":" + json_number(h.min()) +
             ",\"p50\":" + json_number(h.percentile(50)) +
             ",\"p90\":" + json_number(h.percentile(90)) +
             ",\"p99\":" + json_number(h.percentile(99)) +
             ",\"p999\":" + json_number(h.percentile(99.9)) +
             ",\"max\":" + json_number(h.max());
    } else {
      // No samples: quantiles are undefined — export nulls, never the
      // NaN/Inf an unguarded percentile would produce.
      out += ",\"mean\":null,\"min\":null,\"p50\":null,\"p90\":null,"
             "\"p99\":null,\"p999\":null,\"max\":null";
    }
    out += "}\n";
  }
  return out;
}

std::string MetricsRegistry::to_openmetrics() const {
  std::string out;
  auto sanitize = [](const std::string& name) {
    std::string s = name;
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  for (const auto& [name, c] : counters_) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + "_total " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + json_number(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " summary\n";
    if (!h.empty()) {
      out += n + "{quantile=\"0.5\"} " + json_number(h.percentile(50)) + "\n";
      out += n + "{quantile=\"0.9\"} " + json_number(h.percentile(90)) + "\n";
      out += n + "{quantile=\"0.99\"} " + json_number(h.percentile(99)) + "\n";
      out +=
          n + "{quantile=\"0.999\"} " + json_number(h.percentile(99.9)) + "\n";
    }
    out += n + "_sum " + json_number(h.sum()) + "\n";
    out += n + "_count " + std::to_string(h.count()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

std::string MetricsRegistry::render() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "  " + name + " = " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "  " + name + " = " + common::format_double(g.value(), 3) + "\n";
  }
  for (const auto& [name, g] : wall_gauges_) {
    out += "  " + name + " = " + common::format_double(g.value(), 3) +
           " (wall clock)\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "  " + name + ": " + h.summary() + "\n";
  }
  return out;
}

}  // namespace vdce::obs
