// Structured trace half of the observability layer (docs/OBSERVABILITY.md).
//
// A TraceSink collects typed span/instant records stamped with *simulated*
// time: scheduler phases, fabric transfers, daemon heartbeats, task
// executions, recovery actions.  Records are appended in the order the
// simulation produces them, which — because the engine is deterministic —
// makes the exported trace byte-identical across identical-seed runs.
//
// Records optionally carry **causal identity** (which application, which
// task, which producer task, which AFG dependencies) so the offline
// analyzer (obs/causal.hpp, tools/vdce-inspect) can reconstruct the
// per-application causal DAG and compute critical paths, per-resource
// timelines, and what-if slack — see the "Causal trace analysis" section of
// docs/OBSERVABILITY.md.
//
// Two exporters:
//  * JSONL: one JSON object per record, for diffing and ad-hoc analysis;
//    the export is self-describing (track metadata lines up front) and can
//    be parsed back losslessly with parse_jsonl().
//  * Chrome trace_event JSON: open the file in chrome://tracing or
//    https://ui.perfetto.dev to see per-site (pid) / per-host (tid)
//    timelines of a run.
//
// Zero-cost discipline: every instrumentation site guards on
// `sink.enabled()` (a single bool load) before building any record, so a
// disabled sink costs one predictable branch per site.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"

namespace vdce::obs {

/// Track identity: which simulated entity an event happened on.  Host-side
/// events use the host id; coordinator/control-plane events that have no
/// single host use kControlTrack (rendered as the "control" timeline).
inline constexpr std::uint32_t kControlTrack = 0xFFFFFFFFu;

/// Sentinel for "no causal identity" on the optional app/task fields.
inline constexpr std::uint32_t kNoCausalId = 0xFFFFFFFFu;

enum class TracePhase { kSpan, kInstant };

[[nodiscard]] constexpr const char* to_string(TracePhase phase) {
  return phase == TracePhase::kSpan ? "span" : "instant";
}

/// A key/value annotation.  The value is pre-rendered; numbers are emitted
/// unquoted in JSON (rendering happens at record time so exports are pure
/// serialization).
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

[[nodiscard]] TraceArg arg(std::string key, std::string value);
[[nodiscard]] TraceArg arg(std::string key, const char* value);
[[nodiscard]] TraceArg arg(std::string key, double value);
[[nodiscard]] TraceArg arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceArg arg(std::string key, std::uint32_t value);
[[nodiscard]] TraceArg arg(std::string key, std::int64_t value);
[[nodiscard]] TraceArg arg(std::string key, int value);
[[nodiscard]] TraceArg arg(std::string key, bool value);

/// Causal identity of a record: which application/task it belongs to and
/// which tasks causally precede it.  All fields optional (kNoCausalId /
/// empty).  Semantics by record name:
///  * exec.task      — task = the executed task, deps = its AFG parents
///                     (task→task edges of the causal DAG);
///  * fabric.transfer — task = the consumer task the payload feeds,
///                     src_task = the producer (transfer→consumer edge);
///  * sched.*        — app = the application being scheduled
///                     (scheduler-decision→placement edge);
///  * recovery.*     — task = the task being re-placed; the next exec.task
///                     span of that task is the relaunched attempt
///                     (recovery-event→relaunched-span edge).
struct Causal {
  std::uint32_t app = kNoCausalId;
  std::uint32_t task = kNoCausalId;
  std::uint32_t src_task = kNoCausalId;
  std::vector<std::uint32_t> deps;

  [[nodiscard]] bool empty() const noexcept {
    return app == kNoCausalId && task == kNoCausalId &&
           src_task == kNoCausalId && deps.empty();
  }
};

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  std::string category;  ///< "sched", "fabric", "exec", "monitor", "recovery", "app"
  std::string name;      ///< e.g. "fabric.transfer", "sched.bid_gather"
  common::SimTime start = 0.0;
  common::SimDuration duration = 0.0;  ///< 0 for instants
  std::uint32_t track = kControlTrack;
  Causal causal;
  std::vector<TraceArg> args;

  [[nodiscard]] common::SimTime end() const noexcept {
    return start + duration;
  }
};

/// Static description of one track (host): which site it belongs to and its
/// human-readable name.  Injected once at bring-up so exports can map
/// pid/tid to site/host and the offline analyzer can label resources.
struct TrackInfo {
  std::uint32_t track = kControlTrack;  ///< host id
  std::uint32_t site = kNoCausalId;
  std::string name;
};

struct TraceOptions {
  bool enabled = false;
  /// Hard cap on retained events; past it, new records are counted in
  /// dropped() instead of stored (bounded memory on long runs).
  std::size_t capacity = 1u << 20;
};

class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(TraceOptions options)
      : enabled_(options.enabled), capacity_(options.capacity) {}

  /// The guard every instrumentation site checks before building a record.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Record a span covering [start, end] in simulated time.  No-op (plus a
  /// drop count once full) when disabled or at capacity.
  void span(std::string category, std::string name, common::SimTime start,
            common::SimTime end, std::uint32_t track,
            std::vector<TraceArg> args = {}, Causal causal = {});

  /// Record a point event at `time`.
  void instant(std::string category, std::string name, common::SimTime time,
               std::uint32_t track, std::vector<TraceArg> args = {},
               Causal causal = {});

  /// Track metadata (host → site/name), set once at environment bring-up.
  /// Exports embed it so offline tools can label resources.
  void set_tracks(std::vector<TrackInfo> tracks) {
    tracks_ = std::move(tracks);
  }
  [[nodiscard]] const std::vector<TrackInfo>& tracks() const noexcept {
    return tracks_;
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Count of retained events whose name starts with `name_prefix`.
  [[nodiscard]] std::size_t count(std::string_view name_prefix) const;

  /// One JSON object per line: track-metadata lines first, then every event
  /// in recording order, e.g.
  ///   {"meta":"track","track":4,"site":1,"name":"m4"}
  ///   {"phase":"span","cat":"exec","name":"combine","t":3.25,"dur":1.5,
  ///    "track":4,"app":1,"task":2,"deps":[0,1],"args":{"app":1}}
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace_event "JSON Object Format": {"traceEvents":[...]} with
  /// complete ("X") and instant ("i") events, timestamps in microseconds of
  /// simulated time.  With track metadata set, pid = site (process_name
  /// "site N") and tid = host (thread_name = host name), so Perfetto renders
  /// one process group per site and one lane per host.
  [[nodiscard]] std::string to_chrome_trace() const;

  common::Status write_jsonl(const std::string& path) const;
  common::Status write_chrome_trace(const std::string& path) const;

 private:
  void push(TraceEvent event);

  bool enabled_ = false;
  std::size_t capacity_ = 1u << 20;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<TrackInfo> tracks_;
};

/// A parsed JSONL export: the same (tracks, events) pair a live TraceSink
/// holds, reconstructed offline.  render_jsonl(parsed) reproduces the input
/// byte-for-byte, which the round-trip tests assert.
struct ParsedTrace {
  std::vector<TrackInfo> tracks;
  std::vector<TraceEvent> events;
};

/// Exporters over raw (tracks, events) — what the TraceSink methods and the
/// offline vdce-inspect tool share.
[[nodiscard]] std::string render_jsonl(const std::vector<TrackInfo>& tracks,
                                       const std::vector<TraceEvent>& events);
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<TrackInfo>& tracks,
    const std::vector<TraceEvent>& events);

/// Parse a JSONL export produced by to_jsonl()/render_jsonl().  Lossless:
/// number-valued args keep their raw token text, so re-rendering a parse
/// result is byte-identical to the input.  Fails (kParseError) on the first
/// malformed line, naming its line number.
[[nodiscard]] common::Expected<ParsedTrace> parse_jsonl(std::string_view text);

}  // namespace vdce::obs
