// Structured trace half of the observability layer (docs/OBSERVABILITY.md).
//
// A TraceSink collects typed span/instant records stamped with *simulated*
// time: scheduler phases, fabric transfers, daemon heartbeats, task
// executions, recovery actions.  Records are appended in the order the
// simulation produces them, which — because the engine is deterministic —
// makes the exported trace byte-identical across identical-seed runs.
//
// Two exporters:
//  * JSONL: one JSON object per record, for diffing and ad-hoc analysis;
//  * Chrome trace_event JSON: open the file in chrome://tracing or
//    https://ui.perfetto.dev to see per-host timelines of a run.
//
// Zero-cost discipline: every instrumentation site guards on
// `sink.enabled()` (a single bool load) before building any record, so a
// disabled sink costs one predictable branch per site.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"

namespace vdce::obs {

/// Track identity: which simulated entity an event happened on.  Host-side
/// events use the host id; coordinator/control-plane events that have no
/// single host use kControlTrack (rendered as the "control" timeline).
inline constexpr std::uint32_t kControlTrack = 0xFFFFFFFFu;

enum class TracePhase { kSpan, kInstant };

[[nodiscard]] constexpr const char* to_string(TracePhase phase) {
  return phase == TracePhase::kSpan ? "span" : "instant";
}

/// A key/value annotation.  The value is pre-rendered; numbers are emitted
/// unquoted in JSON (rendering happens at record time so exports are pure
/// serialization).
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

[[nodiscard]] TraceArg arg(std::string key, std::string value);
[[nodiscard]] TraceArg arg(std::string key, const char* value);
[[nodiscard]] TraceArg arg(std::string key, double value);
[[nodiscard]] TraceArg arg(std::string key, std::uint64_t value);
[[nodiscard]] TraceArg arg(std::string key, std::uint32_t value);
[[nodiscard]] TraceArg arg(std::string key, std::int64_t value);
[[nodiscard]] TraceArg arg(std::string key, int value);
[[nodiscard]] TraceArg arg(std::string key, bool value);

struct TraceEvent {
  TracePhase phase = TracePhase::kInstant;
  std::string category;  ///< "sched", "fabric", "exec", "monitor", "recovery", "app"
  std::string name;      ///< e.g. "fabric.transfer", "sched.bid_gather"
  common::SimTime start = 0.0;
  common::SimDuration duration = 0.0;  ///< 0 for instants
  std::uint32_t track = kControlTrack;
  std::vector<TraceArg> args;
};

struct TraceOptions {
  bool enabled = false;
  /// Hard cap on retained events; past it, new records are counted in
  /// dropped() instead of stored (bounded memory on long runs).
  std::size_t capacity = 1u << 20;
};

class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(TraceOptions options)
      : enabled_(options.enabled), capacity_(options.capacity) {}

  /// The guard every instrumentation site checks before building a record.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Record a span covering [start, end] in simulated time.  No-op (plus a
  /// drop count once full) when disabled or at capacity.
  void span(std::string category, std::string name, common::SimTime start,
            common::SimTime end, std::uint32_t track,
            std::vector<TraceArg> args = {});

  /// Record a point event at `time`.
  void instant(std::string category, std::string name, common::SimTime time,
               std::uint32_t track, std::vector<TraceArg> args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Count of retained events whose name starts with `name_prefix`.
  [[nodiscard]] std::size_t count(std::string_view name_prefix) const;

  /// One JSON object per event, in recording order, e.g.
  ///   {"phase":"span","cat":"exec","name":"combine","t":3.25,"dur":1.5,
  ///    "track":4,"args":{"app":1}}
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace_event "JSON Object Format": {"traceEvents":[...]} with
  /// complete ("X") and instant ("i") events, timestamps in microseconds of
  /// simulated time, plus thread_name metadata per track.
  [[nodiscard]] std::string to_chrome_trace() const;

  common::Status write_jsonl(const std::string& path) const;
  common::Status write_chrome_trace(const std::string& path) const;

 private:
  void push(TraceEvent event);

  bool enabled_ = false;
  std::size_t capacity_ = 1u << 20;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace vdce::obs
