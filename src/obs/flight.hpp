// Flight recorder: an always-on, fixed-size ring of the most recent
// noteworthy runtime events, kept even when tracing is disabled.
//
// The full TraceSink answers "what happened?" for runs you *planned* to
// observe.  The flight recorder answers "what just happened?" for runs you
// didn't: when recovery escalates past its budget or an environment call
// fails, the environment dumps the ring to a post-mortem file
// (EnvironmentOptions::flight.postmortem_path) so the last N events before
// the failure are never lost.
//
// Cost discipline (this is the always-on path, so it is the one that has to
// be free): records are POD, the ring is preallocated at construction, and
// record() is a handful of stores — no allocation, no branching beyond the
// enabled check.  A disabled recorder costs a single bool load per site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/time.hpp"

namespace vdce::obs {

/// What kind of event a FlightRecord describes.  The a/b/v fields are
/// interpreted per code (documented inline); kNone (= uint32 max) marks an
/// unused field.
enum class FlightCode : std::uint8_t {
  kAppStart = 0,      ///< a = app id
  kAppDone,           ///< a = app id, b = 1 if success else 0, v = makespan
  kTaskStart,         ///< a = app id, b = task id
  kTaskDone,          ///< a = app id, b = task id, v = duration
  kTransfer,          ///< a = src host, b = dst host, v = bytes
  kHostDown,          ///< track = host that went down
  kRecovery,          ///< a = app id, b = task id (re-placed)
  kEscalation,        ///< a = app id, v = actions consumed
  kStall,             ///< a = app id, b = task id
  kOverload,          ///< a = app id, b = task id
  kChannelRetry,      ///< a = app id, b = attempt count
  kSchedule,          ///< a = app id, v = scheduling cost estimate
  kBringUpFailed,     ///< control-plane bring-up failure
  kRunFailed,         ///< a = app id if known
};

[[nodiscard]] const char* to_string(FlightCode code);

/// One ring slot.  POD on purpose: recording is a memcpy-grade operation.
struct FlightRecord {
  common::SimTime t = 0.0;
  FlightCode code = FlightCode::kAppStart;
  std::uint32_t track = 0xFFFFFFFFu;  ///< host id or kControlTrack
  std::uint32_t a = 0xFFFFFFFFu;
  std::uint32_t b = 0xFFFFFFFFu;
  double v = 0.0;
};

struct FlightOptions {
  /// On by default — the whole point is capturing runs nobody planned to
  /// observe.  Turn off to shave the last branch per site in benchmarks.
  bool enabled = true;
  /// Ring capacity (records). Memory is capacity * sizeof(FlightRecord),
  /// allocated once at construction.
  std::size_t capacity = 1024;
  /// Where the environment writes the post-mortem dump on failure; empty
  /// disables dumping (the ring still records).
  std::string postmortem_path = "vdce-postmortem.jsonl";
};

class FlightRecorder {
 public:
  FlightRecorder() : FlightRecorder(FlightOptions{}) {}
  explicit FlightRecorder(const FlightOptions& options)
      : enabled_(options.enabled),
        capacity_(options.capacity == 0 ? 1 : options.capacity) {
    ring_.resize(capacity_);
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// The hot path: a guarded handful of stores into the preallocated ring.
  void record(common::SimTime t, FlightCode code,
              std::uint32_t track = 0xFFFFFFFFu,
              std::uint32_t a = 0xFFFFFFFFu, std::uint32_t b = 0xFFFFFFFFu,
              double v = 0.0) noexcept {
    if (!enabled_) return;
    FlightRecord& slot = ring_[head_];
    slot.t = t;
    slot.code = code;
    slot.track = track;
    slot.a = a;
    slot.b = b;
    slot.v = v;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    ++total_;
  }

  /// Total records ever seen (>= retained count; the excess wrapped).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// JSONL rendering of snapshot(), e.g.
  ///   {"t":3.25,"code":"task_done","track":4,"a":1,"b":2,"v":1.5}
  /// plus a trailing summary line with total/retained counts.
  [[nodiscard]] std::string render_jsonl() const;

  /// Write render_jsonl() to `path`.
  common::Status dump(const std::string& path) const;

  void clear() noexcept {
    head_ = 0;
    total_ = 0;
  }

 private:
  bool enabled_ = true;
  std::size_t capacity_ = 1024;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::vector<FlightRecord> ring_;
};

}  // namespace vdce::obs
