#include "obs/health.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace vdce::obs::health {

namespace {

/// Same formatter as the trace/metrics exporters (%.9g) so every rendered
/// number round-trips through the JSONL trace bit-stably.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SeriesKey
// ---------------------------------------------------------------------------

std::string SeriesKey::label() const {
  std::string out = metric;
  std::string labels;
  auto append = [&labels](const char* name, const std::string& value) {
    if (!labels.empty()) labels += ',';
    labels += name;
    labels += '=';
    labels += value;
  };
  if (host >= 0) append("host", std::to_string(host));
  if (site >= 0) append("site", std::to_string(site));
  if (link_a >= 0) append("link_a", std::to_string(link_a));
  if (link_b >= 0) append("link_b", std::to_string(link_b));
  if (!tenant.empty()) append("tenant", tenant);
  if (!labels.empty()) out += '{' + labels + '}';
  return out;
}

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

TimeSeries::TimeSeries(SeriesKey key, std::size_t capacity,
                       common::SimTime created, bool wall)
    : key_(std::move(key)),
      ring_(std::max<std::size_t>(capacity, 2)),
      created_(created),
      wall_(wall) {}

void TimeSeries::observe(common::SimTime time, double value) {
  const std::size_t cap = ring_.size();
  if (size_ < cap) {
    ring_[(start_ + size_) % cap] = SeriesPoint{time, value};
    ++size_;
  } else {
    ring_[start_] = SeriesPoint{time, value};
    start_ = (start_ + 1) % cap;
  }
  ++total_;
}

double TimeSeries::last() const noexcept {
  if (size_ == 0) return 0.0;
  return ring_[(start_ + size_ - 1) % ring_.size()].value;
}

common::SimTime TimeSeries::last_time() const noexcept {
  if (size_ == 0) return -1.0;
  return ring_[(start_ + size_ - 1) % ring_.size()].time;
}

WindowStats TimeSeries::window(common::SimTime now,
                               common::SimDuration window) const {
  WindowStats w;
  const common::SimTime cutoff = now - window;
  double baseline = 0.0;
  bool has_baseline = false;
  double first_value = 0.0;
  common::SimTime first_time = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    const SeriesPoint& p = ring_[(start_ + i) % ring_.size()];
    if (p.time < cutoff) {
      baseline = p.value;
      has_baseline = true;
      continue;
    }
    if (w.count == 0) {
      first_value = p.value;
      first_time = p.time;
      w.min = w.max = p.value;
    } else {
      w.min = std::min(w.min, p.value);
      w.max = std::max(w.max, p.value);
    }
    sum += p.value;
    w.last = p.value;
    w.last_time = p.time;
    ++w.count;
  }
  if (w.count > 0) {
    w.mean = sum / static_cast<double>(w.count);
    if (w.count >= 2 && w.last_time > first_time) {
      w.rate = (w.last - first_value) / (w.last_time - first_time);
    }
    if (has_baseline) {
      w.increase = w.last - baseline;
    } else if (cutoff <= created_) {
      // The window reaches back past the series' birth: a counter series
      // implicitly started at 0.
      w.increase = w.last;
    } else {
      // Older points were evicted from the ring; the in-window span is the
      // best (under-)estimate available.
      w.increase = w.last - first_value;
    }
  }
  return w;
}

double TimeSeries::window_quantile(common::SimTime now,
                                   common::SimDuration window, double q,
                                   std::vector<double>& scratch) const {
  scratch.clear();
  const common::SimTime cutoff = now - window;
  for (std::size_t i = 0; i < size_; ++i) {
    const SeriesPoint& p = ring_[(start_ + i) % ring_.size()];
    if (p.time >= cutoff) scratch.push_back(p.value);
  }
  if (scratch.empty()) return 0.0;
  std::sort(scratch.begin(), scratch.end());
  q = std::clamp(q, 0.0, 1.0);
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(scratch.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), scratch.size());
  return scratch[rank - 1];
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const char* to_string(RuleKind kind) {
  switch (kind) {
    case RuleKind::kThreshold: return "threshold";
    case RuleKind::kSustained: return "sustained";
    case RuleKind::kRateOfChange: return "rate_of_change";
    case RuleKind::kBurnRate: return "burn_rate";
    case RuleKind::kStaleness: return "staleness";
  }
  return "unknown";
}

common::Expected<RuleKind> rule_kind_from_string(std::string_view text) {
  if (text == "threshold") return RuleKind::kThreshold;
  if (text == "sustained") return RuleKind::kSustained;
  if (text == "rate_of_change") return RuleKind::kRateOfChange;
  if (text == "burn_rate") return RuleKind::kBurnRate;
  if (text == "staleness") return RuleKind::kStaleness;
  return common::Error{common::ErrorCode::kParseError,
                       "unknown health rule kind \"" + std::string(text) +
                           "\""};
}

std::string render_alerts(const std::vector<Alert>& alerts) {
  std::string out;
  for (const Alert& a : alerts) {
    out += "alert rule=" + a.rule + " series=" + a.series.label() +
           " fired=" + fmt(a.fired) +
           " value=" + fmt(a.value) +
           " threshold=" + fmt(a.threshold) +
           " cleared=" + (a.active() ? std::string("-") : fmt(a.cleared)) +
           "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// HealthPlane
// ---------------------------------------------------------------------------

HealthPlane::HealthPlane(HealthOptions options)
    : options_(std::move(options)) {}

void HealthPlane::wire(MetricsRegistry* metrics, TraceSink* trace) {
  if (!options_.enabled) return;  // off means off: never touch the sinks
  metrics_ = metrics;
  trace_ = trace;
}

void HealthPlane::start(common::SimTime now) {
  if (!options_.enabled || started_) return;
  started_ = true;
  if (trace_ != nullptr && trace_->enabled() && !replay_) {
    trace_->instant(
        "health", "health.config", now, kControlTrack,
        {arg("cadence", options_.cadence),
         arg("ring_capacity", std::uint64_t{options_.ring_capacity}),
         arg("sensitivity", options_.sensitivity)});
  }
}

TimeSeries* HealthPlane::series(const SeriesKey& key, common::SimTime now) {
  if (!options_.enabled) return nullptr;
  auto it = index_.find(key);
  if (it != index_.end()) return store_[it->second].get();
  if (store_.size() >= options_.max_series) {
    ++series_dropped_;
    if (metrics_ != nullptr) {
      metrics_->counter("vdce.health.series_dropped").add();
    }
    return nullptr;
  }
  const std::size_t index = store_.size();
  store_.push_back(
      std::make_unique<TimeSeries>(key, options_.ring_capacity, now));
  index_.emplace(key, index);
  emit_series_record(*store_.back(), index, now);
  return store_.back().get();
}

TimeSeries* HealthPlane::wall_series(const SeriesKey& key,
                                     common::SimTime now) {
  if (!options_.enabled) return nullptr;
  auto it = index_.find(key);
  if (it != index_.end()) return store_[it->second].get();
  if (store_.size() >= options_.max_series) {
    ++series_dropped_;
    return nullptr;
  }
  const std::size_t index = store_.size();
  store_.push_back(
      std::make_unique<TimeSeries>(key, options_.ring_capacity, now, true));
  index_.emplace(key, index);
  // Wall series are never traced — replay must not depend on wall time.
  return store_.back().get();
}

TimeSeries* HealthPlane::find_series(const SeriesKey& key) {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : store_[it->second].get();
}

const TimeSeries* HealthPlane::find_series(const SeriesKey& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : store_[it->second].get();
}

void HealthPlane::emit_series_record(const TimeSeries& ts, std::size_t index,
                                     common::SimTime now) {
  if (trace_ == nullptr || !trace_->enabled() || replay_) return;
  const SeriesKey& k = ts.key();
  const std::uint32_t track =
      k.host >= 0 ? static_cast<std::uint32_t>(k.host) : kControlTrack;
  trace_->instant("health", "health.series", now, track,
                  {arg("s", std::uint64_t{index}), arg("metric", k.metric),
                   arg("host", k.host), arg("site", k.site),
                   arg("link_a", k.link_a), arg("link_b", k.link_b),
                   arg("tenant", k.tenant)});
}

void HealthPlane::observe(TimeSeries* ts, common::SimTime time, double value) {
  if (ts == nullptr || !options_.enabled) return;
  ts->observe(time, value);
  if (ts->wall()) return;  // wall feeds stay out of traces and metrics
  ++samples_;
  if (metrics_ != nullptr) metrics_->counter("vdce.health.samples").add();
  if (trace_ != nullptr && trace_->enabled() && !replay_) {
    auto it = index_.find(ts->key());
    const SeriesKey& k = ts->key();
    const std::uint32_t track =
        k.host >= 0 ? static_cast<std::uint32_t>(k.host) : kControlTrack;
    trace_->instant("health", "health.sample", time, track,
                    {arg("s", std::uint64_t{it->second}), arg("v", value)});
  }
}

void HealthPlane::observe(const SeriesKey& key, common::SimTime time,
                          double value) {
  observe(series(key, time), time, value);
}

void HealthPlane::observe_delta(const SeriesKey& key, common::SimTime time,
                                double delta) {
  TimeSeries* ts = series(key, time);
  if (ts == nullptr) return;
  observe(ts, time, ts->last() + delta);
}

void HealthPlane::add_rule(HealthRule rule, common::SimTime now) {
  if (!options_.enabled) return;
  if (trace_ != nullptr && trace_->enabled() && !replay_) {
    trace_->instant(
        "health", "health.rule", now, kControlTrack,
        {arg("id", rule.id), arg("kind", to_string(rule.kind)),
         arg("metric", rule.metric), arg("threshold", rule.threshold),
         arg("above", rule.above), arg("window", rule.window),
         arg("long_window", rule.long_window),
         arg("min_samples", std::uint64_t{rule.min_samples}),
         arg("rhost", rule.host), arg("rsite", rule.site)});
  }
  rules_.push_back(std::move(rule));
}

bool HealthPlane::violated(const HealthRule& rule, const TimeSeries& ts,
                           common::SimTime now, double& value) const {
  auto beyond = [&rule](double v) {
    return rule.above ? v > rule.threshold : v < rule.threshold;
  };
  switch (rule.kind) {
    case RuleKind::kThreshold: {
      if (ts.empty()) return false;
      value = ts.last();
      return beyond(value);
    }
    case RuleKind::kSustained: {
      WindowStats w = ts.window(now, rule.window);
      if (w.count < std::max<std::size_t>(rule.min_samples, 1)) return false;
      // All in-window samples beyond the threshold <=> the extremum is.
      value = rule.above ? w.min : w.max;
      return beyond(value);
    }
    case RuleKind::kRateOfChange: {
      WindowStats w = ts.window(now, rule.window);
      if (w.count < 2) return false;
      value = w.rate;
      return beyond(value);
    }
    case RuleKind::kBurnRate: {
      const common::SimDuration long_window =
          rule.long_window > 0.0 ? rule.long_window : rule.window * 4.0;
      WindowStats ws = ts.window(now, rule.window);
      WindowStats wl = ts.window(now, long_window);
      const double short_rate =
          ws.count > 0 ? ws.increase / rule.window : 0.0;
      const double long_rate = wl.count > 0 ? wl.increase / long_window : 0.0;
      value = short_rate;
      return beyond(short_rate) && beyond(long_rate);
    }
    case RuleKind::kStaleness: {
      const common::SimTime reference =
          std::max(ts.last_time(), ts.created());
      value = now - reference;
      return value > rule.window;
    }
  }
  return false;
}

void HealthPlane::emit_transition(const HealthRule& rule,
                                  std::size_t rule_index, const TimeSeries& ts,
                                  std::size_t series_index, bool fire,
                                  common::SimTime now, double value,
                                  double threshold) {
  (void)rule_index;
  if (metrics_ != nullptr) {
    metrics_->counter(fire ? "vdce.health.alerts_fired"
                           : "vdce.health.alerts_cleared")
        .add();
    metrics_->gauge("vdce.health.alerts_active")
        .set(static_cast<double>(active_));
  }
  if (trace_ != nullptr && trace_->enabled() && !replay_) {
    const SeriesKey& k = ts.key();
    const std::uint32_t track =
        k.host >= 0 ? static_cast<std::uint32_t>(k.host) : kControlTrack;
    trace_->instant("health", "health.alert", now, track,
                    {arg("state", fire ? "fire" : "clear"),
                     arg("rule", rule.id),
                     arg("s", std::uint64_t{series_index}),
                     arg("value", value), arg("threshold", threshold)});
  }
}

void HealthPlane::evaluate(common::SimTime now) {
  if (!options_.enabled) return;
  ++evaluations_;
  if (metrics_ != nullptr) metrics_->counter("vdce.health.evaluations").add();
  if (trace_ != nullptr && trace_->enabled() && !replay_) {
    trace_->instant("health", "health.eval", now, kControlTrack,
                    {arg("seq", evaluations_)});
  }
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const HealthRule& rule = rules_[r];
    for (std::size_t s = 0; s < store_.size(); ++s) {
      const TimeSeries& ts = *store_[s];
      if (ts.wall()) continue;
      const SeriesKey& key = ts.key();
      if (key.metric != rule.metric) continue;
      if (rule.host >= 0 && key.host != rule.host) continue;
      if (rule.site >= 0 && key.site != rule.site) continue;
      double value = 0.0;
      const bool firing = violated(rule, ts, now, value);
      RuleState& state = state_[{r, s}];
      if (firing && !state.firing) {
        state.firing = true;
        state.alert = alerts_.size();
        alerts_.push_back(Alert{rule.id, key, now, -1.0, value,
                                rule.threshold});
        ++active_;
        emit_transition(rule, r, ts, s, true, now, value, rule.threshold);
      } else if (!firing && state.firing) {
        state.firing = false;
        alerts_[state.alert].cleared = now;
        --active_;
        emit_transition(rule, r, ts, s, false, now, value, rule.threshold);
      }
    }
  }
}

std::string HealthPlane::to_openmetrics(common::SimTime now,
                                        common::SimDuration window,
                                        bool include_wall) const {
  // Group series by metric (ordered) so each OpenMetrics family is
  // declared exactly once.
  std::map<std::string, std::vector<const TimeSeries*>> families;
  for (const auto& ts : store_) {
    if (ts->wall() && !include_wall) continue;
    families[ts->key().metric].push_back(ts.get());
  }
  std::string out;
  auto label_set = [](const SeriesKey& k) {
    std::string labels;
    auto append = [&labels](const char* name, const std::string& value) {
      if (!labels.empty()) labels += ',';
      labels += name;
      labels += "=\"";
      labels += value;
      labels += '"';
    };
    if (k.host >= 0) append("host", std::to_string(k.host));
    if (k.site >= 0) append("site", std::to_string(k.site));
    if (k.link_a >= 0) append("link_a", std::to_string(k.link_a));
    if (k.link_b >= 0) append("link_b", std::to_string(k.link_b));
    if (!k.tenant.empty()) append("tenant", k.tenant);
    return labels;
  };
  const std::string window_label = "window=\"" + fmt(window) + "\"";
  for (const auto& [metric, list] : families) {
    const std::string family = "vdce_health_" + sanitize(metric);
    out += "# TYPE " + family + " gauge\n";
    for (const TimeSeries* ts : list) {
      std::string labels = label_set(ts->key());
      out += family + (labels.empty() ? "" : "{" + labels + "}") + " " +
             fmt(ts->last()) + "\n";
    }
    out += "# TYPE " + family + "_window gauge\n";
    for (const TimeSeries* ts : list) {
      WindowStats w = ts->window(now, window);
      std::string base = label_set(ts->key());
      auto line = [&](const char* agg, double v) {
        std::string labels = base.empty() ? std::string() : base + ",";
        labels += "agg=\"";
        labels += agg;
        labels += "\",";
        labels += window_label;
        out += family + "_window{" + labels + "} " + fmt(v) + "\n";
      };
      line("count", static_cast<double>(w.count));
      line("mean", w.mean);
      line("max", w.max);
      line("rate", w.rate);
      line("p50", ts->window_quantile(now, window, 0.50, scratch_));
      line("p99", ts->window_quantile(now, window, 0.99, scratch_));
    }
  }
  out += "# TYPE vdce_health_alerts_active gauge\n";
  out += "vdce_health_alerts_active " +
         std::to_string(active_) + "\n";
  out += "# TYPE vdce_health_alerts counter\n";
  out += "vdce_health_alerts_total " + std::to_string(alerts_.size()) + "\n";
  out += "# EOF\n";
  return out;
}

// ---------------------------------------------------------------------------
// Default rules
// ---------------------------------------------------------------------------

std::vector<HealthRule> default_rules(const DefaultRuleParams& p) {
  const double s = p.sensitivity;
  std::vector<HealthRule> rules;
  // A healthy monitor reports every monitor_period; a crash or a stale
  // window starves the series.  At s = 1 the window is 3.5 periods — three
  // missed samples plus phase slack.  Below s ~ 0.17 the window undercuts
  // the sampling period itself and false positives appear (the regime
  // bench_health's sweep exposes).
  rules.push_back(HealthRule{"monitor-stale", RuleKind::kStaleness, kHostLoad,
                             0.0, true, (0.5 + 3.0 * s) * p.monitor_period});
  // Site-server probes answer within one cadence; a partition starves the
  // pair's rtt series in both directions.
  rules.push_back(HealthRule{"link-probe-stale", RuleKind::kStaleness,
                             kLinkRtt, 0.0, true,
                             (2.0 + 3.0 * s) * p.cadence});
  // Healthy WAN rtt tops out well under 0.5 s on the generated testbeds; a
  // degraded link multiplies it past the threshold.
  rules.push_back(HealthRule{"link-slow", RuleKind::kThreshold, kLinkRtt,
                             0.5 * s, true});
  // Load spikes: every sample in the window above the overload threshold.
  {
    HealthRule r{"host-overload", RuleKind::kSustained, kHostLoad,
                 p.overload_threshold, true,
                 std::max(3.0 * s * p.monitor_period, p.cadence)};
    r.min_samples = 2;
    rules.push_back(std::move(r));
  }
  {
    HealthRule r{"admission-backlog", RuleKind::kSustained, kQueueDepth,
                 p.queue_alert_depth, true, 5.0 * s * p.cadence};
    r.min_samples = 3;
    rules.push_back(std::move(r));
  }
  {
    HealthRule r{"quota-burn", RuleKind::kBurnRate, kRejections,
                 p.recovery_rate_per_sec, true, 5.0 * s};
    r.long_window = 20.0 * s;
    rules.push_back(std::move(r));
  }
  {
    HealthRule r{"recovery-storm", RuleKind::kBurnRate, kRecoveryActions,
                 p.recovery_rate_per_sec, true, 5.0 * s};
    r.long_window = 20.0 * s;
    rules.push_back(std::move(r));
  }
  rules.push_back(HealthRule{"sched-slow", RuleKind::kThreshold,
                             kSchedSeconds, p.sched_alert_seconds * s, true});
  return rules;
}

// ---------------------------------------------------------------------------
// Detection scoring
// ---------------------------------------------------------------------------

namespace {

common::SimTime fault_end(const GroundTruthFault& f,
                          const DetectionOptions& options) {
  if (f.duration > 0.0) return f.at + f.duration;
  if (options.horizon >= 0.0) return options.horizon;
  return std::numeric_limits<double>::infinity();
}

/// Does the alert's series label point at this fault's target?
bool label_match(const GroundTruthFault& f, const SeriesKey& k) {
  if (k.link_a >= 0) {
    // Link series: only pairwise faults, as an unordered pair.
    if (f.site_a < 0 || f.site_b < 0) return false;
    const std::int64_t lo = std::min(f.site_a, f.site_b);
    const std::int64_t hi = std::max(f.site_a, f.site_b);
    return lo == k.link_a && hi == k.link_b;
  }
  if (k.host >= 0) {
    if (f.host >= 0) return f.host == k.host;
    // Site-scoped fault (stale site): any host series inside the site.
    return f.site >= 0 && f.site == k.site;
  }
  if (k.site >= 0) return f.site == k.site || f.site_a == k.site ||
                          f.site_b == k.site;
  return false;  // control-plane series never pin a specific fault
}

bool control_scoped(const SeriesKey& k) {
  return k.host < 0 && k.site < 0 && k.link_a < 0;
}

}  // namespace

DetectionScore score_detections(const std::vector<GroundTruthFault>& faults,
                                const std::vector<Alert>& alerts,
                                const DetectionOptions& options) {
  DetectionScore score;
  score.faults.reserve(faults.size());
  for (const GroundTruthFault& f : faults) {
    score.faults.push_back(FaultDetection{f});
  }

  for (const Alert& a : alerts) {
    bool explained = false;
    bool excused = false;
    for (FaultDetection& d : score.faults) {
      const GroundTruthFault& f = d.fault;
      const bool in_window =
          a.fired >= f.at &&
          a.fired <= fault_end(f, options) + options.max_latency;
      if (!in_window) continue;
      if (control_scoped(a.series)) {
        // Storm/backlog alerts are excused when any fault overlaps, but
        // they are too unspecific to claim the detection — they count
        // toward neither precision bucket.
        excused = true;
        continue;
      }
      if (!label_match(f, a.series)) continue;
      explained = true;
      if (!d.detected || a.fired < d.detected_at) {
        d.detected = true;
        d.detected_at = a.fired;
        d.latency = a.fired - f.at;
        d.rule = a.rule;
      }
    }
    if (explained) {
      ++score.true_positive_alerts;
    } else if (!excused) {
      ++score.false_positive_alerts;
    }
  }

  for (const FaultDetection& d : score.faults) {
    ClassScore& cls = score.by_class[d.fault.kind];
    ++cls.total;
    if (d.detected) {
      ++cls.detected;
      cls.latency.add(d.latency);
    }
  }
  return score;
}

std::string DetectionScore::render() const {
  std::string out;
  for (const FaultDetection& d : faults) {
    out += "fault kind=" + d.fault.kind + " at=" + fmt(d.fault.at) +
           " duration=" + fmt(d.fault.duration);
    if (d.fault.host >= 0) out += " host=" + std::to_string(d.fault.host);
    if (d.fault.site >= 0) out += " site=" + std::to_string(d.fault.site);
    if (d.fault.site_a >= 0) {
      out += " sites=" + std::to_string(d.fault.site_a) + "|" +
             std::to_string(d.fault.site_b);
    }
    if (d.detected) {
      out += " detected_at=" + fmt(d.detected_at) +
             " latency=" + fmt(d.latency) + " rule=" + d.rule;
    } else {
      out += " detected=no";
    }
    out += "\n";
  }
  for (const auto& [kind, cls] : by_class) {
    out += "class " + kind + ": total=" + std::to_string(cls.total) +
           " detected=" + std::to_string(cls.detected) +
           " recall=" + fmt(cls.recall());
    if (!cls.latency.empty()) {
      out += " latency_mean=" + fmt(cls.latency.mean()) +
             " latency_max=" + fmt(cls.latency.max());
    }
    out += "\n";
  }
  out += "alerts: tp=" + std::to_string(true_positive_alerts) +
         " fp=" + std::to_string(false_positive_alerts) +
         " precision=" + fmt(precision()) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Offline replay
// ---------------------------------------------------------------------------

namespace {

const std::string* find_arg(const TraceEvent& e, std::string_view key) {
  for (const TraceArg& a : e.args) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

double num_arg(const TraceEvent& e, std::string_view key, double fallback) {
  const std::string* v = find_arg(e, key);
  if (v == nullptr) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

std::int64_t int_arg(const TraceEvent& e, std::string_view key,
                     std::int64_t fallback) {
  const std::string* v = find_arg(e, key);
  if (v == nullptr) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

std::string str_arg(const TraceEvent& e, std::string_view key) {
  const std::string* v = find_arg(e, key);
  return v == nullptr ? std::string() : *v;
}

}  // namespace

common::Expected<ReplayResult> replay_trace(const ParsedTrace& trace) {
  const TraceEvent* config = nullptr;
  for (const TraceEvent& e : trace.events) {
    if (e.name == "health.config") {
      config = &e;
      break;
    }
  }
  if (config == nullptr) {
    return common::Error{
        common::ErrorCode::kNotFound,
        "replay_trace: no health.config record — was the health plane "
        "enabled (EnvironmentOptions.health.enabled) when the trace was "
        "written?"};
  }

  HealthOptions options;
  options.enabled = true;
  options.default_rules = false;
  options.cadence = num_arg(*config, "cadence", 1.0);
  options.ring_capacity =
      static_cast<std::size_t>(int_arg(*config, "ring_capacity", 512));
  options.sensitivity = num_arg(*config, "sensitivity", 1.0);

  ReplayResult result;
  result.plane = HealthPlane(options);
  result.plane.set_replay(true);
  result.plane.start(config->start);

  // Live index -> replayed series.  Indices are NOT contiguous: wall-clock
  // feeds hold live slots but never emit trace records, so the recorded
  // stream skips theirs.
  std::map<std::size_t, TimeSeries*> by_index;
  // (rule id, series index) -> open recorded alert, for matching clears.
  std::map<std::pair<std::string, std::size_t>, std::size_t> open;

  for (const TraceEvent& e : trace.events) {
    if (e.category != "health") continue;
    if (e.name == "health.rule") {
      HealthRule rule;
      rule.id = str_arg(e, "id");
      auto kind = rule_kind_from_string(str_arg(e, "kind"));
      if (!kind) return kind.error();
      rule.kind = *kind;
      rule.metric = str_arg(e, "metric");
      rule.threshold = num_arg(e, "threshold", 0.0);
      rule.above = str_arg(e, "above") == "true";
      rule.window = num_arg(e, "window", 10.0);
      rule.long_window = num_arg(e, "long_window", 0.0);
      rule.min_samples =
          static_cast<std::size_t>(int_arg(e, "min_samples", 1));
      rule.host = int_arg(e, "rhost", -1);
      rule.site = int_arg(e, "rsite", -1);
      result.plane.add_rule(std::move(rule), e.start);
    } else if (e.name == "health.series") {
      SeriesKey key;
      key.metric = str_arg(e, "metric");
      key.host = int_arg(e, "host", -1);
      key.site = int_arg(e, "site", -1);
      key.link_a = int_arg(e, "link_a", -1);
      key.link_b = int_arg(e, "link_b", -1);
      key.tenant = str_arg(e, "tenant");
      const auto index = static_cast<std::size_t>(int_arg(e, "s", -1));
      TimeSeries* ts = result.plane.series(key, e.start);
      if (ts == nullptr || by_index.count(index) != 0) {
        return common::Error{common::ErrorCode::kParseError,
                             "replay_trace: duplicate health.series "
                             "record (index " +
                                 std::to_string(index) + ")"};
      }
      by_index.emplace(index, ts);
    } else if (e.name == "health.sample") {
      const auto index = static_cast<std::size_t>(int_arg(e, "s", -1));
      auto it = by_index.find(index);
      if (it == by_index.end()) {
        return common::Error{common::ErrorCode::kParseError,
                             "replay_trace: health.sample references "
                             "unknown series " +
                                 std::to_string(index)};
      }
      result.plane.observe(it->second, e.start, num_arg(e, "v", 0.0));
    } else if (e.name == "health.eval") {
      result.plane.evaluate(e.start);
    } else if (e.name == "health.alert") {
      const auto index = static_cast<std::size_t>(int_arg(e, "s", -1));
      auto it = by_index.find(index);
      if (it == by_index.end()) {
        return common::Error{common::ErrorCode::kParseError,
                             "replay_trace: health.alert references "
                             "unknown series " +
                                 std::to_string(index)};
      }
      const std::string rule = str_arg(e, "rule");
      if (str_arg(e, "state") == "fire") {
        open[{rule, index}] = result.recorded.size();
        result.recorded.push_back(Alert{rule, it->second->key(), e.start,
                                        -1.0, num_arg(e, "value", 0.0),
                                        num_arg(e, "threshold", 0.0)});
      } else {
        auto it = open.find({rule, index});
        if (it != open.end()) {
          result.recorded[it->second].cleared = e.start;
          open.erase(it);
        }
      }
    }
  }
  return result;
}

}  // namespace vdce::obs::health
