// vdce::obs::causal — post-run causal analysis over trace records
// (docs/OBSERVABILITY.md, "Causal trace analysis").
//
// The trace layer records *what* happened; this layer answers *why a run
// took as long as it did*.  From causally-tagged records (or from an
// ExecutionReport) it reconstructs the per-application causal DAG and
// computes:
//
//  * the critical path — a chain of hops (startup, compute, transfer,
//    scheduler/dependency wait, recovery, completion notice) that tiles
//    [exec_started, completed] exactly, so hop durations sum to the
//    makespan by construction;
//  * per-phase breakdown — where the simulated seconds went;
//  * per-host / per-link Gantt timelines with utilization and idle-gap
//    attribution (idle-because-waiting vs idle-because-transferring);
//  * what-if slack estimates — "task T 2x faster => makespan -X%",
//    Coz-style but exact because time is simulated: a PERT-style forward
//    pass over the reconstructed DAG with original lags preserved.
//
// Everything operates on the neutral AppTrace structure, which has two
// producers: ExecutionReport (live, in-process) and extract_apps() over a
// parsed JSONL export (offline, via tools/vdce-inspect).  Both feed the
// same engine, which is how the offline tool reproduces the in-process
// critical path bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/trace.hpp"

namespace vdce::obs::causal {

/// One completed task execution (the attempt that finished).
struct TaskExec {
  std::uint32_t task = kNoCausalId;
  std::string name;                       ///< instance name, or "task<N>"
  common::SimTime started = 0.0;
  common::SimTime finished = 0.0;
  std::uint32_t host = kControlTrack;
  std::vector<std::uint32_t> deps;        ///< AFG parent task ids
  int attempts = 1;
};

/// One payload movement between tasks (dm.data delivery over the fabric).
struct Transfer {
  std::uint32_t src_task = kNoCausalId;   ///< producer (kNoCausalId = staging)
  std::uint32_t dst_task = kNoCausalId;   ///< consumer
  common::SimTime started = 0.0;
  common::SimTime finished = 0.0;
  std::uint32_t src_host = kControlTrack;
  std::uint32_t dst_host = kControlTrack;
  double bytes = 0.0;
};

/// One recovery action (reschedule, relaunch, stall resend...).
struct RecoveryMark {
  common::SimTime at = 0.0;
  std::uint32_t task = kNoCausalId;
  std::string reason;
};

/// Everything the engine needs about one application run.
struct AppTrace {
  std::uint32_t app = kNoCausalId;
  std::string name;
  /// Multi-tenant admission window (app.contention span, docs/TENANCY.md):
  /// enqueued -> admitted is time spent queued behind other tenants before
  /// scheduling began.  Both 0 when the run never queued.
  common::SimTime enqueued = 0.0;
  common::SimTime admitted = 0.0;
  /// Advance-reservation window (app.reservation span,
  /// docs/RESERVATIONS.md): admitted -> released is time the admitted
  /// submission parked until its committed window opened.  Equal to
  /// `admitted` (phase 0) when the run carried no reservation ticket.
  common::SimTime released = 0.0;
  common::SimTime exec_started = 0.0;  ///< startup signal (makespan origin)
  common::SimTime completed = 0.0;     ///< coordinator saw the last task done
  std::vector<TaskExec> tasks;
  std::vector<Transfer> transfers;
  std::vector<RecoveryMark> recoveries;

  [[nodiscard]] common::SimDuration contention() const noexcept {
    return admitted - enqueued;
  }
  [[nodiscard]] common::SimDuration reservation() const noexcept {
    return released - admitted;
  }

  [[nodiscard]] common::SimDuration makespan() const noexcept {
    return completed - exec_started;
  }
  [[nodiscard]] const TaskExec* find_task(std::uint32_t task) const noexcept;
};

// ---- critical path ---------------------------------------------------------

enum class HopKind {
  kStartup,     ///< startup signal -> first critical task begins
  kCompute,     ///< a task executing
  kTransfer,    ///< waiting on data in flight toward the next critical task
  kWait,        ///< dependency/scheduler wait with no transfer in flight
  kRecovery,    ///< wait attributable to a recovery action
  kCompletion,  ///< last task finished -> coordinator saw the completion
};

[[nodiscard]] const char* to_string(HopKind kind);

struct CriticalHop {
  HopKind kind = HopKind::kWait;
  std::uint32_t task = kNoCausalId;  ///< the task this hop executes / leads into
  std::string label;
  common::SimTime start = 0.0;
  common::SimTime end = 0.0;
  [[nodiscard]] common::SimDuration duration() const noexcept {
    return end - start;
  }
};

struct PhaseTotals {
  /// Multi-tenant admission wait before the run began.  Deliberately
  /// OUTSIDE total(): the critical path tiles [exec_started, completed], and
  /// contention happens before exec_started, so total() == makespan holds
  /// with or without tenancy.
  common::SimDuration contention = 0.0;
  /// Advance-reservation wait (admitted -> released).  Outside total() for
  /// the same reason as contention: it ends before exec_started.
  common::SimDuration reservation = 0.0;
  common::SimDuration startup = 0.0;
  common::SimDuration compute = 0.0;
  common::SimDuration transfer = 0.0;
  common::SimDuration wait = 0.0;
  common::SimDuration recovery = 0.0;
  common::SimDuration completion = 0.0;
  [[nodiscard]] common::SimDuration total() const noexcept {
    return startup + compute + transfer + wait + recovery + completion;
  }
};

struct CriticalPath {
  std::vector<CriticalHop> hops;   ///< contiguous; tiles [exec_started, completed]
  std::vector<std::uint32_t> task_chain;  ///< critical tasks, in exec order
  common::SimDuration makespan = 0.0;
  PhaseTotals phases;              ///< per-kind sums; phases.total() == makespan
};

/// Reconstruct the critical path.  Walk-back rule: start from the
/// last-finishing task; at each step follow the executed dependency with the
/// greatest finish time.  Gaps between consecutive critical tasks are carved
/// into transfer / recovery / wait segments using the app's transfer spans
/// and recovery marks.  The hops tile [exec_started, completed] exactly.
[[nodiscard]] CriticalPath critical_path(const AppTrace& app);

// ---- per-resource timelines ------------------------------------------------

struct TimelineSpan {
  common::SimTime start = 0.0;
  common::SimTime end = 0.0;
  std::string label;
  std::uint32_t task = kNoCausalId;
};

struct HostTimeline {
  std::uint32_t host = kControlTrack;
  std::string name;                  ///< from TrackInfo when available
  std::uint32_t site = kNoCausalId;
  std::vector<TimelineSpan> busy;    ///< task executions, time order
  common::SimDuration busy_time = 0.0;
  double utilization = 0.0;          ///< busy_time / makespan
  /// Idle-gap attribution over [exec_started, completed]:
  common::SimDuration idle_transfer = 0.0;  ///< idle with inbound data in flight
  common::SimDuration idle_wait = 0.0;      ///< idle with nothing inbound
};

struct LinkTimeline {
  std::uint32_t src_host = kControlTrack;
  std::uint32_t dst_host = kControlTrack;
  std::string name;                  ///< "src -> dst"
  std::vector<TimelineSpan> transfers;
  common::SimDuration busy_time = 0.0;
  double bytes = 0.0;
};

struct Timeline {
  common::SimTime horizon_start = 0.0;
  common::SimTime horizon_end = 0.0;
  std::vector<HostTimeline> hosts;   ///< host-id order
  std::vector<LinkTimeline> links;   ///< (src, dst) order
};

/// Per-host and per-link Gantt data.  `tracks` (may be empty) supplies
/// host / site names for labeling.
[[nodiscard]] Timeline timeline(const AppTrace& app,
                                const std::vector<TrackInfo>& tracks = {});

// ---- what-if slack ---------------------------------------------------------

struct WhatIf {
  std::uint32_t task = kNoCausalId;
  std::string name;
  double speedup = 2.0;                    ///< the hypothetical factor applied
  common::SimDuration new_makespan = 0.0;
  double makespan_delta_pct = 0.0;         ///< negative = faster overall
  bool on_critical_path = false;
};

/// For each task: recompute the makespan with that task `speedup`x faster,
/// via a PERT forward pass that preserves every original scheduling /
/// transfer lag.  Exact under the simulation's semantics as long as
/// placements would not change.  Sorted by most-negative delta first.
[[nodiscard]] std::vector<WhatIf> what_if(const AppTrace& app,
                                          double speedup = 2.0);

// ---- offline extraction and reporting --------------------------------------

/// Rebuild AppTraces from a parsed JSONL export: app.run spans delimit
/// applications, exec.task spans become TaskExecs (deps from their causal
/// tags), fabric.transfer spans with a consumer tag become Transfers, and
/// recovery.* instants become RecoveryMarks.  Apps appear in id order.
[[nodiscard]] std::vector<AppTrace> extract_apps(const ParsedTrace& trace);

/// Multi-section text report (critical path, phase totals, host/link
/// timelines, what-if table) — what vdce-inspect prints.
[[nodiscard]] std::string render_report(const AppTrace& app,
                                        const std::vector<TrackInfo>& tracks);

}  // namespace vdce::obs::causal
