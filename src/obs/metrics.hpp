// Metrics half of the observability layer (docs/OBSERVABILITY.md).
//
// A MetricsRegistry is a name-indexed set of counters, gauges, and
// Stats-backed histograms, instance-scoped (one per VdceEnvironment) so two
// environments in one process never share state.  Instrumentation sites in
// the hot path cache the Counter*/Stats* returned by the registry once, so
// recording is a guarded pointer increment — no map lookup per event.
//
// Everything recorded in the counter/gauge/histogram families is derived
// from simulated time and seeded randomness only (never the wall clock), so
// to_jsonl() exports are byte-identical across identical-seed runs.  Wall
// -clock readings (event-kernel throughput, run durations) go in the
// separate wall_gauge() family, which render() shows but to_jsonl()
// deliberately omits.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace vdce::obs {

/// Monotonic event count (messages sent, samples taken, reschedules, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, clock, bytes in flight).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Name-indexed metric store.  Handles returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (node-based map), so
/// they may be cached by instrumented components.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  common::Stats& histogram(const std::string& name) {
    return histograms_[name];
  }
  /// Wall-clock-derived gauge (e.g. sim.events_per_sec).  Kept apart from
  /// the deterministic families: render() includes it, to_jsonl() does not,
  /// so identical-seed exports stay byte-identical.
  Gauge& wall_gauge(const std::string& name) { return wall_gauges_[name]; }

  /// Read helpers that never create the metric: 0 / empty when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] double wall_gauge_value(const std::string& name) const;
  [[nodiscard]] const common::Stats* find_histogram(
      const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const
      noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, common::Stats>& histograms() const
      noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& wall_gauges() const
      noexcept {
    return wall_gauges_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           wall_gauges_.empty();
  }

  /// Zero every metric but keep the registered names (cached handles stay
  /// valid) — the analogue of Fabric::reset_stats for a measurement window.
  void reset();

  /// One JSON object per line, metrics in name order within each kind
  /// (counters, then gauges, then histograms).  Wall gauges are omitted —
  /// this export is the byte-identical determinism artifact.  Histogram
  /// lines carry count plus mean/min/p50/p90/p99/p999/max; an empty
  /// histogram exports count 0 with null quantiles (never NaN/Inf).
  /// Example:
  ///   {"kind":"counter","name":"monitor.samples","value":1920}
  [[nodiscard]] std::string to_jsonl() const;

  /// OpenMetrics text exposition (the Prometheus-compatible scrape format):
  /// counters as `<name>_total`, gauges as gauges, histograms as summaries
  /// with p50/p90/p99/p99.9 quantile lines plus _sum/_count.  Metric names
  /// are sanitised ('.' and '-' become '_'); wall gauges are omitted so the
  /// exposition stays byte-identical across identical-seed runs; ends with
  /// the mandatory "# EOF".
  [[nodiscard]] std::string to_openmetrics() const;

  /// Human-readable table for examples and bench footers.
  [[nodiscard]] std::string render() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, common::Stats> histograms_;
  std::map<std::string, Gauge> wall_gauges_;
};

}  // namespace vdce::obs
