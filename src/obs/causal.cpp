#include "obs/causal.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.hpp"

namespace vdce::obs::causal {

namespace {

/// Boundary slop when carving gaps: two simulated times closer than this are
/// the same boundary.  Keeps degenerate zero-width hops out of the path.
constexpr double kEps = 1e-12;

}  // namespace

const TaskExec* AppTrace::find_task(std::uint32_t task) const noexcept {
  for (const TaskExec& t : tasks) {
    if (t.task == task) return &t;
  }
  return nullptr;
}

const char* to_string(HopKind kind) {
  switch (kind) {
    case HopKind::kStartup: return "startup";
    case HopKind::kCompute: return "compute";
    case HopKind::kTransfer: return "transfer";
    case HopKind::kWait: return "wait";
    case HopKind::kRecovery: return "recovery";
    case HopKind::kCompletion: return "completion";
  }
  return "unknown";
}

namespace {

/// Pick the chain tail: the last-finishing task (ties -> lowest id, so the
/// walk is deterministic for identical traces).
const TaskExec* last_finisher(const AppTrace& app) {
  const TaskExec* best = nullptr;
  for (const TaskExec& t : app.tasks) {
    if (best == nullptr || t.finished > best->finished ||
        (t.finished == best->finished && t.task < best->task)) {
      best = &t;
    }
  }
  return best;
}

/// Carve [gap_start, gap_end] (a dependency wait leading into `into`) into
/// transfer / recovery / base segments and append them as hops.
///
/// Rules: portions covered by a transfer whose consumer is `into` become
/// kTransfer; of the remainder, anything after the first recovery mark for
/// `into` inside the gap becomes kRecovery; the rest keeps `base`
/// (kStartup for the first hop, kWait later).
void carve_gap(const AppTrace& app, common::SimTime gap_start,
               common::SimTime gap_end, std::uint32_t into,
               const std::string& into_label, HopKind base,
               std::vector<CriticalHop>& hops) {
  if (gap_end - gap_start <= kEps) return;

  // Merge the inbound transfers that overlap the gap into disjoint
  // intervals, clamped to the gap.
  std::vector<std::pair<double, double>> cover;
  for (const Transfer& tr : app.transfers) {
    if (tr.dst_task != into) continue;
    const double s = std::max(gap_start, tr.started);
    const double e = std::min(gap_end, tr.finished);
    if (e - s > kEps) cover.emplace_back(s, e);
  }
  std::sort(cover.begin(), cover.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& iv : cover) {
    if (!merged.empty() && iv.first <= merged.back().second + kEps) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }

  // First recovery mark for `into` inside the gap, if any: uncovered time
  // after it is recovery overhead, not plain waiting.
  double recovery_from = gap_end + 1.0;
  for (const RecoveryMark& r : app.recoveries) {
    if (r.task != into) continue;
    if (r.at >= gap_start - kEps && r.at <= gap_end + kEps) {
      recovery_from = std::min(recovery_from, std::max(r.at, gap_start));
    }
  }

  auto push_plain = [&](double s, double e) {
    // Split an uncovered segment at the recovery boundary.
    if (e - s <= kEps) return;
    if (recovery_from <= s + kEps) {
      hops.push_back({HopKind::kRecovery, into, into_label, s, e});
    } else if (recovery_from < e - kEps) {
      hops.push_back({base, into, into_label, s, recovery_from});
      hops.push_back({HopKind::kRecovery, into, into_label, recovery_from, e});
    } else {
      hops.push_back({base, into, into_label, s, e});
    }
  };

  double cursor = gap_start;
  for (const auto& iv : merged) {
    push_plain(cursor, iv.first);
    hops.push_back({HopKind::kTransfer, into, into_label,
                    std::max(cursor, iv.first), iv.second});
    cursor = iv.second;
  }
  push_plain(cursor, gap_end);
}

}  // namespace

CriticalPath critical_path(const AppTrace& app) {
  CriticalPath path;
  path.makespan = app.makespan();
  // Pre-execution admission and reservation waits; reported alongside the
  // phases but outside total(), which tiles [exec_started, completed] only.
  path.phases.contention = std::max(0.0, app.contention());
  path.phases.reservation = std::max(0.0, app.reservation());

  // Walk back from the last finisher along the dependency with the greatest
  // finish time — the classic schedule-length chain.
  std::vector<const TaskExec*> chain;
  const TaskExec* current = last_finisher(app);
  std::unordered_set<std::uint32_t> visited;
  while (current != nullptr && visited.insert(current->task).second) {
    chain.push_back(current);
    const TaskExec* next = nullptr;
    for (std::uint32_t dep : current->deps) {
      const TaskExec* d = app.find_task(dep);
      if (d == nullptr) continue;
      if (next == nullptr || d->finished > next->finished ||
          (d->finished == next->finished && d->task < next->task)) {
        next = d;
      }
    }
    current = next;
  }
  std::reverse(chain.begin(), chain.end());

  // Tile [exec_started, completed]: gap hops lead into each chain task's
  // compute hop; a final completion hop covers coordinator notification.
  double cursor = app.exec_started;
  bool first = true;
  for (const TaskExec* t : chain) {
    const double exec_start = std::max(cursor, t->started);
    carve_gap(app, cursor, exec_start, t->task, t->name,
              first ? HopKind::kStartup : HopKind::kWait, path.hops);
    const double exec_end = std::max(exec_start, t->finished);
    if (exec_end - exec_start > kEps || chain.size() == 1) {
      path.hops.push_back(
          {HopKind::kCompute, t->task, t->name, exec_start, exec_end});
    }
    cursor = exec_end;
    path.task_chain.push_back(t->task);
    first = false;
  }
  if (app.completed - cursor > kEps || path.hops.empty()) {
    path.hops.push_back({HopKind::kCompletion, kNoCausalId,
                         "completion notice", cursor, app.completed});
  }

  // Exact tiling: gap carving works with transfer-interval endpoints that
  // can sit within kEps of a compute boundary, leaving sub-epsilon seams.
  // Snap every hop to its predecessor's end (and the final hop to the
  // reported completion time) so consecutive hops share boundaries exactly
  // and durations sum to the makespan; hops the snap collapses are dropped.
  std::vector<CriticalHop> tiled;
  double edge = app.exec_started;
  for (CriticalHop hop : path.hops) {
    hop.start = edge;
    if (hop.end < hop.start) hop.end = hop.start;
    edge = hop.end;
    if (hop.end > hop.start) tiled.push_back(hop);
  }
  if (!tiled.empty()) {
    tiled.back().end = app.completed;
  } else if (!path.hops.empty()) {
    CriticalHop whole = path.hops.back();
    whole.start = app.exec_started;
    whole.end = app.completed;
    tiled.push_back(whole);
  }
  path.hops = std::move(tiled);

  for (const CriticalHop& hop : path.hops) {
    switch (hop.kind) {
      case HopKind::kStartup: path.phases.startup += hop.duration(); break;
      case HopKind::kCompute: path.phases.compute += hop.duration(); break;
      case HopKind::kTransfer: path.phases.transfer += hop.duration(); break;
      case HopKind::kWait: path.phases.wait += hop.duration(); break;
      case HopKind::kRecovery: path.phases.recovery += hop.duration(); break;
      case HopKind::kCompletion:
        path.phases.completion += hop.duration();
        break;
    }
  }
  return path;
}

Timeline timeline(const AppTrace& app, const std::vector<TrackInfo>& tracks) {
  Timeline tl;
  tl.horizon_start = app.exec_started;
  tl.horizon_end = app.completed;
  const double horizon = tl.horizon_end - tl.horizon_start;

  auto track_name = [&](std::uint32_t host) -> std::string {
    for (const TrackInfo& t : tracks) {
      if (t.track == host && !t.name.empty()) return t.name;
    }
    return host == kControlTrack ? "control" : "host " + std::to_string(host);
  };
  auto track_site = [&](std::uint32_t host) -> std::uint32_t {
    for (const TrackInfo& t : tracks) {
      if (t.track == host) return t.site;
    }
    return kNoCausalId;
  };

  // Hosts: one lane per machine that executed a task.
  std::map<std::uint32_t, HostTimeline> hosts;
  for (const TaskExec& t : app.tasks) {
    HostTimeline& h = hosts[t.host];
    h.host = t.host;
    h.busy.push_back({t.started, t.finished, t.name, t.task});
  }
  for (auto& [host, h] : hosts) {
    h.name = track_name(host);
    h.site = track_site(host);
    std::sort(h.busy.begin(), h.busy.end(),
              [](const TimelineSpan& a, const TimelineSpan& b) {
                return a.start != b.start ? a.start < b.start
                                          : a.task < b.task;
              });
    for (const TimelineSpan& s : h.busy) h.busy_time += s.end - s.start;
    h.utilization = horizon > 0 ? h.busy_time / horizon : 0.0;

    // Idle-gap attribution: walk the horizon minus busy spans; idle time
    // with an inbound transfer in flight is "waiting on data", the rest is
    // plain waiting (dependency / scheduler / nothing assigned).
    double cursor = tl.horizon_start;
    auto attribute_idle = [&](double s, double e) {
      if (e - s <= kEps) return;
      double covered = 0.0;
      std::vector<std::pair<double, double>> cover;
      for (const Transfer& tr : app.transfers) {
        if (tr.dst_host != host) continue;
        const double cs = std::max(s, tr.started);
        const double ce = std::min(e, tr.finished);
        if (ce - cs > kEps) cover.emplace_back(cs, ce);
      }
      std::sort(cover.begin(), cover.end());
      double mark = s;
      for (const auto& iv : cover) {
        const double cs = std::max(mark, iv.first);
        const double ce = std::max(cs, iv.second);
        covered += ce - cs;
        mark = std::max(mark, ce);
      }
      h.idle_transfer += covered;
      h.idle_wait += (e - s) - covered;
    };
    for (const TimelineSpan& s : h.busy) {
      attribute_idle(cursor, s.start);
      cursor = std::max(cursor, s.end);
    }
    attribute_idle(cursor, tl.horizon_end);
  }
  for (auto& [host, h] : hosts) tl.hosts.push_back(std::move(h));

  // Links: one lane per (src, dst) pair that moved task payloads.
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkTimeline> links;
  for (const Transfer& tr : app.transfers) {
    LinkTimeline& l = links[{tr.src_host, tr.dst_host}];
    l.src_host = tr.src_host;
    l.dst_host = tr.dst_host;
    std::string label =
        (tr.src_task == kNoCausalId ? std::string("stage")
                                    : "task " + std::to_string(tr.src_task)) +
        " -> task " + std::to_string(tr.dst_task);
    l.transfers.push_back({tr.started, tr.finished, std::move(label),
                           tr.dst_task});
    l.busy_time += tr.finished - tr.started;
    l.bytes += tr.bytes;
  }
  for (auto& [key, l] : links) {
    l.name = track_name(l.src_host) + " -> " + track_name(l.dst_host);
    std::sort(l.transfers.begin(), l.transfers.end(),
              [](const TimelineSpan& a, const TimelineSpan& b) {
                return a.start != b.start ? a.start < b.start
                                          : a.task < b.task;
              });
    tl.links.push_back(std::move(l));
  }
  return tl;
}

std::vector<WhatIf> what_if(const AppTrace& app, double speedup) {
  std::vector<WhatIf> out;
  if (app.tasks.empty() || speedup <= 0.0) return out;

  // Process tasks in original start order — a valid topological order,
  // because a dependency always finished before its consumer started.
  std::vector<const TaskExec*> order;
  order.reserve(app.tasks.size());
  for (const TaskExec& t : app.tasks) order.push_back(&t);
  std::sort(order.begin(), order.end(),
            [](const TaskExec* a, const TaskExec* b) {
              return a->started != b->started ? a->started < b->started
                                              : a->task < b->task;
            });

  double last_finish = 0.0;
  for (const TaskExec& t : app.tasks) {
    last_finish = std::max(last_finish, t.finished);
  }
  // Coordinator tail (last task finished -> completion notice arrived):
  // unaffected by task durations, preserved verbatim.
  const double tail = app.completed - last_finish;

  const CriticalPath cp = critical_path(app);
  auto on_path = [&](std::uint32_t task) {
    for (std::uint32_t id : cp.task_chain) {
      if (id == task) return true;
    }
    return false;
  };

  for (const TaskExec& target : app.tasks) {
    // PERT forward pass with original per-edge lags preserved.  With no
    // task changed this reproduces the original times exactly, so deltas
    // are pure slack, not model error.
    std::unordered_map<std::uint32_t, double> new_end;
    double makespan_end = 0.0;
    for (const TaskExec* t : order) {
      bool has_dep = false;
      double start = -1e300;
      for (std::uint32_t dep : t->deps) {
        const TaskExec* d = app.find_task(dep);
        if (d == nullptr) continue;
        auto it = new_end.find(dep);
        if (it == new_end.end()) continue;
        has_dep = true;
        const double lag = t->started - d->finished;
        start = std::max(start, it->second + lag);
      }
      // Tasks with no executed deps anchor at their original start
      // (preserving their lag from the startup signal).
      if (!has_dep) start = t->started;
      double duration = t->finished - t->started;
      if (t->task == target.task) duration /= speedup;
      const double end = start + duration;
      new_end[t->task] = end;
      makespan_end = std::max(makespan_end, end);
    }
    const double new_makespan = makespan_end + tail - app.exec_started;
    const double old_makespan = app.makespan();
    WhatIf w;
    w.task = target.task;
    w.name = target.name;
    w.speedup = speedup;
    w.new_makespan = new_makespan;
    w.makespan_delta_pct =
        old_makespan > 0 ? (new_makespan - old_makespan) / old_makespan * 100.0
                         : 0.0;
    w.on_critical_path = on_path(target.task);
    out.push_back(std::move(w));
  }
  std::sort(out.begin(), out.end(), [](const WhatIf& a, const WhatIf& b) {
    return a.makespan_delta_pct != b.makespan_delta_pct
               ? a.makespan_delta_pct < b.makespan_delta_pct
               : a.task < b.task;
  });
  return out;
}

// ---- offline extraction ----------------------------------------------------

namespace {

double arg_number(const TraceEvent& ev, std::string_view key,
                  double fallback = 0.0) {
  for (const TraceArg& a : ev.args) {
    if (a.key == key) return std::strtod(a.value.c_str(), nullptr);
  }
  return fallback;
}

std::string arg_string(const TraceEvent& ev, std::string_view key) {
  for (const TraceArg& a : ev.args) {
    if (a.key == key) return a.value;
  }
  return {};
}

}  // namespace

std::vector<AppTrace> extract_apps(const ParsedTrace& trace) {
  std::map<std::uint32_t, AppTrace> apps;
  auto app_of = [&](std::uint32_t id) -> AppTrace& {
    AppTrace& app = apps[id];
    app.app = id;
    return app;
  };

  for (const TraceEvent& ev : trace.events) {
    const std::uint32_t app_id = ev.causal.app;
    if (app_id == kNoCausalId) continue;

    if (ev.name == "app.run") {
      AppTrace& app = app_of(app_id);
      app.exec_started = ev.start;
      app.completed = ev.end();
      app.name = arg_string(ev, "name");
    } else if (ev.name == "app.contention") {
      AppTrace& app = app_of(app_id);
      app.enqueued = ev.start;
      app.admitted = ev.end();
      if (app.released < app.admitted) app.released = app.admitted;
    } else if (ev.name == "app.reservation") {
      // Advance-reservation park [admitted, released].  When no contention
      // span preceded it the submission never queued, so the span start is
      // also its enqueue/admission instant.
      AppTrace& app = app_of(app_id);
      app.released = ev.end();
      if (app.admitted == 0.0) {
        app.enqueued = ev.start;
        app.admitted = ev.start;
      }
    } else if (ev.name == "exec.task" && ev.causal.task != kNoCausalId) {
      AppTrace& app = app_of(app_id);
      std::string name = arg_string(ev, "task");
      if (name.empty()) name = "task " + std::to_string(ev.causal.task);
      // Keep the attempt that finished last (relaunches re-emit the span);
      // earlier attempts only bump the attempt count.
      if (TaskExec* existing =
              const_cast<TaskExec*>(app.find_task(ev.causal.task))) {
        ++existing->attempts;
        if (ev.end() > existing->finished) {
          existing->started = ev.start;
          existing->finished = ev.end();
          existing->host = ev.track;
          existing->name = std::move(name);
          existing->deps = ev.causal.deps;
        }
      } else {
        TaskExec t;
        t.task = ev.causal.task;
        t.name = std::move(name);
        t.started = ev.start;
        t.finished = ev.end();
        t.host = ev.track;
        t.deps = ev.causal.deps;
        app.tasks.push_back(std::move(t));
      }
    } else if (ev.name == "fabric.transfer" &&
               ev.causal.task != kNoCausalId) {
      AppTrace& app = app_of(app_id);
      Transfer tr;
      tr.src_task = ev.causal.src_task;
      tr.dst_task = ev.causal.task;
      tr.started = ev.start;
      tr.finished = ev.end();
      tr.src_host = ev.track;
      tr.dst_host =
          static_cast<std::uint32_t>(arg_number(ev, "dst", kControlTrack));
      tr.bytes = arg_number(ev, "bytes");
      app.transfers.push_back(tr);
    } else if (ev.category == "recovery") {
      AppTrace& app = app_of(app_id);
      RecoveryMark mark;
      mark.at = ev.start;
      mark.task = ev.causal.task;
      constexpr std::string_view prefix = "recovery.";
      mark.reason = ev.name.size() > prefix.size() &&
                            std::string_view(ev.name).substr(
                                0, prefix.size()) == prefix
                        ? ev.name.substr(prefix.size())
                        : ev.name;
      app.recoveries.push_back(std::move(mark));
    }
  }

  std::vector<AppTrace> out;
  for (auto& [id, app] : apps) {
    // A run that never completed has no app.run span; cover its events.
    if (app.completed <= app.exec_started) {
      double lo = 1e300, hi = 0.0;
      for (const TaskExec& t : app.tasks) {
        lo = std::min(lo, t.started);
        hi = std::max(hi, t.finished);
      }
      if (hi > 0.0) {
        app.exec_started = lo;
        app.completed = hi;
      }
    }
    out.push_back(std::move(app));
  }
  return out;
}

// ---- text report -----------------------------------------------------------

namespace {

std::string fixed(double v, int precision = 3) {
  return common::format_double(v, precision);
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace

std::string render_report(const AppTrace& app,
                          const std::vector<TrackInfo>& tracks) {
  const CriticalPath cp = critical_path(app);
  const Timeline tl = timeline(app, tracks);
  const std::vector<WhatIf> wi = what_if(app, 2.0);

  std::string out;
  out += "== application " + std::to_string(app.app);
  if (!app.name.empty()) out += " \"" + app.name + "\"";
  out += " ==\n";
  out += "makespan " + fixed(cp.makespan) + " s over " +
         std::to_string(app.tasks.size()) + " tasks, " +
         std::to_string(app.transfers.size()) + " transfers, " +
         std::to_string(app.recoveries.size()) + " recovery actions\n\n";

  out += "critical path (" + std::to_string(cp.hops.size()) + " hops, sum " +
         fixed(cp.phases.total()) + " s):\n";
  for (const CriticalHop& hop : cp.hops) {
    out += "  [" + pad_left(fixed(hop.start), 9) + " .. " +
           pad_left(fixed(hop.end), 9) + "] " +
           pad_left(fixed(hop.duration()), 8) + "  " +
           pad_right(to_string(hop.kind), 10);
    if (hop.kind == HopKind::kCompute) {
      out += " " + hop.label + " (task " + std::to_string(hop.task) + ")";
    } else if (hop.task != kNoCausalId &&
               hop.kind != HopKind::kCompletion) {
      out += " -> " + hop.label;
    }
    out += "\n";
  }
  out += "phases: startup " + fixed(cp.phases.startup) + "  compute " +
         fixed(cp.phases.compute) + "  transfer " + fixed(cp.phases.transfer) +
         "  wait " + fixed(cp.phases.wait) + "  recovery " +
         fixed(cp.phases.recovery) + "  completion " +
         fixed(cp.phases.completion) + "\n";
  if (cp.phases.contention > 0.0) {
    out += "admission contention (before execution, outside makespan): " +
           fixed(cp.phases.contention) + " s\n";
  }
  if (cp.phases.reservation > 0.0) {
    out += "reservation wait (before execution, outside makespan): " +
           fixed(cp.phases.reservation) + " s\n";
  }
  out += "\n";

  out += "hosts:\n";
  for (const HostTimeline& h : tl.hosts) {
    out += "  " + pad_right(h.name, 12) +
           (h.site != kNoCausalId ? " site " + std::to_string(h.site) : "") +
           "  busy " + fixed(h.busy_time) + " s (" +
           fixed(h.utilization * 100.0, 1) + "%)  idle: transfer " +
           fixed(h.idle_transfer) + " s, wait " + fixed(h.idle_wait) +
           " s  tasks " + std::to_string(h.busy.size()) + "\n";
    for (const TimelineSpan& s : h.busy) {
      out += "      [" + pad_left(fixed(s.start), 9) + " .. " +
             pad_left(fixed(s.end), 9) + "] " + s.label + "\n";
    }
  }
  if (tl.hosts.empty()) out += "  (no task executions recorded)\n";

  if (!tl.links.empty()) {
    out += "\nlinks:\n";
    for (const LinkTimeline& l : tl.links) {
      out += "  " + pad_right(l.name, 24) + "  " +
             std::to_string(l.transfers.size()) + " transfers, busy " +
             fixed(l.busy_time) + " s, " + fixed(l.bytes, 0) + " bytes\n";
    }
  }

  if (!wi.empty()) {
    out += "\nwhat-if (each task 2x faster, alone):\n";
    for (const WhatIf& w : wi) {
      out += "  " + pad_right(w.name, 16) + " makespan " +
             pad_left(fixed(w.new_makespan), 9) + " s (" +
             (w.makespan_delta_pct > 0 ? "+" : "") +
             fixed(w.makespan_delta_pct, 2) + "%)" +
             (w.on_critical_path ? "  [critical]" : "") + "\n";
    }
  }
  return out;
}

}  // namespace vdce::obs::causal
