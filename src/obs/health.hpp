// vdce::obs::health — the live health plane (docs/OBSERVABILITY.md).
//
// Where the metrics registry answers "what happened by the end of the run",
// the health plane watches the system *while it degrades*: labelled
// time-series ring buffers fed from the existing instrumentation points
// (monitor samples, admission queue depth, quota rejections, recovery
// actions, scheduling time, probe round-trips), a declarative rule engine
// evaluated on a sim-time cadence, and typed Alert records emitted into the
// trace stream.
//
// Design constraints, in order:
//  * Determinism.  Everything is driven by simulated time and seeded
//    randomness; identical seeds produce identical alert sequences, and the
//    trace records carry enough state that an offline replay
//    (replay_trace / vdce-inspect --alerts) reconstructs the live alert
//    stream exactly.
//  * Zero steady-state allocation.  Rings are preallocated at registration;
//    observe() is a store into a ring slot; windowed aggregates walk the
//    ring in place (the quantile scratch vector is preallocated and reused).
//  * Off means off.  A disabled plane registers nothing, observes nothing,
//    and emits nothing — traces of a health-off run are byte-identical to a
//    build without the plane.
//
// Because the chaos plane knows exactly when every fault fires,
// score_detections() turns an armed FaultPlan plus the alert log into
// per-fault-class detection latency / precision / recall — the quantity
// bench_health sweeps against rule sensitivity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/expected.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vdce::obs::health {

// ---------------------------------------------------------------------------
// Series identity
// ---------------------------------------------------------------------------

/// Label set of one time series.  -1 / empty means "not scoped by this
/// label"; a series with every label unset is control-plane-scoped (queue
/// depth, rejections, scheduling time).  Link series use the unordered site
/// pair (link_a < link_b).
struct SeriesKey {
  std::string metric;
  std::int64_t host = -1;
  std::int64_t site = -1;
  std::int64_t link_a = -1;
  std::int64_t link_b = -1;
  std::string tenant;

  [[nodiscard]] bool operator==(const SeriesKey& o) const noexcept {
    return metric == o.metric && host == o.host && site == o.site &&
           link_a == o.link_a && link_b == o.link_b && tenant == o.tenant;
  }
  [[nodiscard]] bool operator<(const SeriesKey& o) const noexcept {
    if (metric != o.metric) return metric < o.metric;
    if (host != o.host) return host < o.host;
    if (site != o.site) return site < o.site;
    if (link_a != o.link_a) return link_a < o.link_a;
    if (link_b != o.link_b) return link_b < o.link_b;
    return tenant < o.tenant;
  }

  /// Canonical rendering: `metric{host=3,site=0}` — only set labels appear.
  [[nodiscard]] std::string label() const;
};

/// Well-known metric names, shared by the instrumentation sites, the default
/// rules, and the tests.
inline constexpr const char* kHostLoad = "host.cpu_load";
inline constexpr const char* kHostMem = "host.available_mb";
inline constexpr const char* kLinkRtt = "link.rtt";
inline constexpr const char* kQueueDepth = "tenancy.queue_depth";
inline constexpr const char* kRejections = "tenancy.rejections";
inline constexpr const char* kRecoveryActions = "recovery.actions";
inline constexpr const char* kFailuresDetected = "monitor.failures";
inline constexpr const char* kSchedSeconds = "sched.decision_seconds";
inline constexpr const char* kContentionSkips = "sched.contention_skips";
inline constexpr const char* kReservationWait = "reservation.wait_seconds";
inline constexpr const char* kReservationDisplaced = "reservation.displaced";
inline constexpr const char* kEventsPerSec = "sim.events_per_sec";

// ---------------------------------------------------------------------------
// TimeSeries — a preallocated ring of (time, value) points
// ---------------------------------------------------------------------------

struct SeriesPoint {
  common::SimTime time = 0.0;
  double value = 0.0;
};

/// Aggregates over the points with time >= now - window.  `rate` is the
/// value slope across the window ((last - first) / dt, 0 with < 2 points);
/// `increase` is last minus the value at or before the window start (the
/// counter-style delta burn-rate rules divide by the window length).
struct WindowStats {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  double rate = 0.0;
  double increase = 0.0;
  common::SimTime last_time = -1.0;  ///< -1: window is empty
};

/// One labelled series: a fixed-capacity ring of samples plus the running
/// total.  Once the ring is full the oldest point is overwritten — windowed
/// rules only ever look `window` seconds back, so capacity need only cover
/// the longest rule window at the feed rate (HealthOptions::ring_capacity).
class TimeSeries {
 public:
  TimeSeries(SeriesKey key, std::size_t capacity, common::SimTime created,
             bool wall = false);

  /// Append a point.  No allocation; O(1).
  void observe(common::SimTime time, double value);

  [[nodiscard]] const SeriesKey& key() const noexcept { return key_; }
  /// Wall-clock-derived series (sim.events_per_sec) are excluded from trace
  /// emission, replay, and rule evaluation — same contract as the metrics
  /// registry's wall_gauge family.
  [[nodiscard]] bool wall() const noexcept { return wall_; }
  [[nodiscard]] common::SimTime created() const noexcept { return created_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Latest point; last_time() is -1 when the series is empty.
  [[nodiscard]] double last() const noexcept;
  [[nodiscard]] common::SimTime last_time() const noexcept;

  /// Aggregate the points in [now - window, now].  O(retained).
  [[nodiscard]] WindowStats window(common::SimTime now,
                                   common::SimDuration window) const;

  /// Exact nearest-rank quantile (q in [0,1]) over the window, using the
  /// caller-provided scratch buffer (reused across calls — no steady-state
  /// allocation once scratch has grown to ring capacity).  0 when empty.
  [[nodiscard]] double window_quantile(common::SimTime now,
                                       common::SimDuration window, double q,
                                       std::vector<double>& scratch) const;

  /// Visit retained points oldest-to-newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[(start_ + i) % ring_.size()]);
    }
  }

 private:
  SeriesKey key_;
  std::vector<SeriesPoint> ring_;
  std::size_t start_ = 0;  ///< index of the oldest point
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  common::SimTime created_;
  bool wall_ = false;
};

// ---------------------------------------------------------------------------
// Rules and alerts
// ---------------------------------------------------------------------------

enum class RuleKind {
  kThreshold,     ///< latest value beyond the threshold
  kSustained,     ///< every sample in the window beyond the threshold
  kRateOfChange,  ///< window slope beyond the threshold
  kBurnRate,      ///< counter increase rate over BOTH windows beyond it
  kStaleness,     ///< no sample for longer than `window`
};

[[nodiscard]] const char* to_string(RuleKind kind);
[[nodiscard]] common::Expected<RuleKind> rule_kind_from_string(
    std::string_view text);

/// One declarative rule.  A rule applies to every registered series whose
/// metric matches `metric` and whose host/site labels match the (optional)
/// selectors.  Semantics by kind:
///  * kThreshold     — fire while the latest sample is beyond `threshold`.
///  * kSustained     — fire while the window holds >= min_samples samples
///                     and ALL of them are beyond `threshold`.
///  * kRateOfChange  — fire while the window slope (value units / second)
///                     is beyond `threshold` (needs >= 2 samples).
///  * kBurnRate      — for cumulative counters: fire while the increase
///                     rate over the short `window` AND the `long_window`
///                     both exceed `threshold` (events / second) — the
///                     classic two-window SLO burn-rate check.
///  * kStaleness     — fire while now - max(last sample, series creation)
///                     exceeds `window`; `above` is ignored.
/// "Beyond" means > threshold when `above`, < threshold otherwise.
struct HealthRule {
  std::string id;
  RuleKind kind = RuleKind::kThreshold;
  std::string metric;
  double threshold = 0.0;
  bool above = true;
  common::SimDuration window = 10.0;
  common::SimDuration long_window = 0.0;  ///< burn-rate only
  std::size_t min_samples = 1;            ///< sustained only
  std::int64_t host = -1;                 ///< selector: -1 = any host
  std::int64_t site = -1;                 ///< selector: -1 = any site
};

/// One alert: a (rule, series) pair that crossed into firing at `fired` and
/// (possibly) back out at `cleared`.  Append-only log entry; `value` is the
/// measurement that crossed the threshold.
struct Alert {
  std::string rule;
  SeriesKey series;
  common::SimTime fired = 0.0;
  common::SimTime cleared = -1.0;  ///< -1 while still active
  double value = 0.0;
  double threshold = 0.0;

  [[nodiscard]] bool active() const noexcept { return cleared < 0.0; }
};

/// Canonical text rendering of an alert log, one line per alert in firing
/// order — the byte-identical determinism artifact tests and the offline
/// replay verification diff.
[[nodiscard]] std::string render_alerts(const std::vector<Alert>& alerts);

// ---------------------------------------------------------------------------
// HealthPlane
// ---------------------------------------------------------------------------

struct HealthOptions {
  bool enabled = false;
  /// Rule-evaluation (and probe) period in simulated seconds.
  common::SimDuration cadence = 1.0;
  /// Points retained per series.  At the default 1 Hz feeds this covers
  /// ~8.5 simulated minutes — far beyond the default rule windows.
  std::size_t ring_capacity = 512;
  /// Hard cap on registered series (bounds memory on huge topologies);
  /// registrations past it are dropped and counted in the
  /// vdce.health.series_dropped metric.
  std::size_t max_series = 4096;
  /// Install the default rule set (default_rules()) at bring-up.
  bool default_rules = true;
  /// Scales the default rules' windows and thresholds: < 1 is hair-trigger
  /// (faster detection, more false positives), > 1 is conservative.  The
  /// quantity bench_health sweeps.
  double sensitivity = 1.0;
  /// Extra rules installed after the defaults.
  std::vector<HealthRule> rules;
};

/// The live plane: owns every series and rule, evaluates on demand, appends
/// alerts, and mirrors activity into the trace stream (for offline replay)
/// and the metrics registry (vdce.health.* counters/gauges).
class HealthPlane {
 public:
  HealthPlane() = default;
  explicit HealthPlane(HealthOptions options);

  HealthPlane(HealthPlane&&) = default;
  HealthPlane& operator=(HealthPlane&&) = default;

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }
  [[nodiscard]] const HealthOptions& options() const noexcept {
    return options_;
  }

  /// Attach trace/metrics sinks (either may be null).  Replay mode keeps
  /// the sinks detached so a reconstruction never re-emits records.
  void wire(MetricsRegistry* metrics, TraceSink* trace);
  void set_replay(bool on) noexcept { replay_ = on; }

  /// Emit the plane-configuration trace record.  Call once at bring-up,
  /// before any rule or series registration.
  void start(common::SimTime now);

  /// Find-or-create the series for `key` (created stamped `now`).  Returns
  /// null when the plane is disabled or the series cap is reached — callers
  /// must guard.  The pointer is stable for the plane's lifetime, so hot
  /// paths cache it.
  TimeSeries* series(const SeriesKey& key, common::SimTime now);
  /// Wall-clock variant: the series is excluded from tracing, replay, and
  /// rules (sim.events_per_sec).
  TimeSeries* wall_series(const SeriesKey& key, common::SimTime now);
  [[nodiscard]] TimeSeries* find_series(const SeriesKey& key);
  [[nodiscard]] const TimeSeries* find_series(const SeriesKey& key) const;

  /// Record one sample.  The TimeSeries* overload is the zero-lookup hot
  /// path; `ts` may be null (no-op, so callers can cache the result of
  /// series() unguarded).
  void observe(TimeSeries* ts, common::SimTime time, double value);
  void observe(const SeriesKey& key, common::SimTime time, double value);
  /// Cumulative-counter feed: adds `delta` to the series' latest value and
  /// records the new total (burn-rate rules read the increase).
  void observe_delta(const SeriesKey& key, common::SimTime time,
                     double delta = 1.0);

  void add_rule(HealthRule rule, common::SimTime now);
  [[nodiscard]] const std::vector<HealthRule>& rules() const noexcept {
    return rules_;
  }

  /// Evaluate every rule against every matching series at `now`, emitting
  /// fire/clear transitions into the alert log (and the trace/metrics
  /// sinks).  Deterministic: series are visited in registration order.
  void evaluate(common::SimTime now);

  [[nodiscard]] const std::vector<Alert>& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] std::size_t active_alerts() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_;
  }
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t series_count() const noexcept {
    return store_.size();
  }
  /// Every series in registration order (the deterministic iteration order
  /// evaluate() and the exporters use).
  [[nodiscard]] const std::vector<std::unique_ptr<TimeSeries>>& all_series()
      const noexcept {
    return store_;
  }

  /// OpenMetrics text exposition of the plane: per-series last value and
  /// windowed aggregates (mean/max/rate/p50/p99 over `window`), plus the
  /// alert gauges.  Ends with "# EOF".  Wall series are omitted unless
  /// `include_wall` (they would break byte-identical exports).
  [[nodiscard]] std::string to_openmetrics(common::SimTime now,
                                           common::SimDuration window = 10.0,
                                           bool include_wall = false) const;

 private:
  struct RuleState {
    bool firing = false;
    std::size_t alert = 0;  ///< index into alerts_ while firing
  };

  void emit_series_record(const TimeSeries& ts, std::size_t index,
                          common::SimTime now);
  void emit_transition(const HealthRule& rule, std::size_t rule_index,
                       const TimeSeries& ts, std::size_t series_index,
                       bool fire, common::SimTime now, double value,
                       double threshold);
  /// True (and fills value) when `rule` is in violation for `ts` at `now`.
  [[nodiscard]] bool violated(const HealthRule& rule, const TimeSeries& ts,
                              common::SimTime now, double& value) const;

  HealthOptions options_;
  std::map<SeriesKey, std::size_t> index_;
  std::vector<std::unique_ptr<TimeSeries>> store_;  ///< registration order
  std::vector<HealthRule> rules_;
  /// (rule index * store size + series index) -> state; node-based so the
  /// evaluate loop never invalidates entries it is iterating near.
  std::map<std::pair<std::size_t, std::size_t>, RuleState> state_;
  std::vector<Alert> alerts_;
  std::size_t active_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t series_dropped_ = 0;
  mutable std::vector<double> scratch_;

  MetricsRegistry* metrics_ = nullptr;
  TraceSink* trace_ = nullptr;
  bool replay_ = false;
  bool started_ = false;
};

// ---------------------------------------------------------------------------
// Default rule set
// ---------------------------------------------------------------------------

/// Parameters the default rules are derived from — runtime periods plus the
/// sensitivity multiplier (HealthOptions::sensitivity).
struct DefaultRuleParams {
  common::SimDuration monitor_period = 1.0;
  common::SimDuration cadence = 1.0;
  double sensitivity = 1.0;
  double overload_threshold = 2.5;
  double queue_alert_depth = 16.0;
  double recovery_rate_per_sec = 0.5;
  double sched_alert_seconds = 30.0;
};

/// The rules installed when HealthOptions::default_rules is set:
///   monitor-stale     staleness on host.cpu_load   (crash / stale faults)
///   link-probe-stale  staleness on link.rtt        (partitions)
///   link-slow         threshold on link.rtt        (degraded links)
///   host-overload     sustained on host.cpu_load   (load spikes)
///   admission-backlog sustained on tenancy.queue_depth
///   quota-burn        burn-rate on tenancy.rejections
///   recovery-storm    burn-rate on recovery.actions
///   sched-slow        threshold on sched.decision_seconds
[[nodiscard]] std::vector<HealthRule> default_rules(
    const DefaultRuleParams& params);

// ---------------------------------------------------------------------------
// Detection scoring against chaos ground truth
// ---------------------------------------------------------------------------

/// One injected fault in topology-resolved form (ChaosInjector::
/// ground_truth()).  `kind` is the fault-class string: "crash", "degrade",
/// "partition", "loss", "slow", "stale".
struct GroundTruthFault {
  std::string kind;
  common::SimTime at = 0.0;
  common::SimDuration duration = 0.0;  ///< 0 = permanent
  std::int64_t host = -1;
  std::int64_t site = -1;    ///< site of `host`, or the stale-site target
  std::int64_t site_a = -1;  ///< partition / degrade pair
  std::int64_t site_b = -1;
};

struct DetectionOptions {
  /// An alert fired more than this long after the fault window ends no
  /// longer counts as detecting it.
  common::SimDuration max_latency = 30.0;
  /// End of the run; bounds the window of permanent (duration 0) faults.
  common::SimTime horizon = -1.0;
};

struct FaultDetection {
  GroundTruthFault fault;
  bool detected = false;
  common::SimTime detected_at = -1.0;
  common::SimDuration latency = -1.0;
  std::string rule;  ///< the rule that detected it first
};

struct ClassScore {
  std::size_t total = 0;
  std::size_t detected = 0;
  common::Stats latency;  ///< over detected faults
  [[nodiscard]] double recall() const noexcept {
    return total == 0 ? 1.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
  }
};

struct DetectionScore {
  std::vector<FaultDetection> faults;
  std::map<std::string, ClassScore> by_class;
  std::size_t true_positive_alerts = 0;
  std::size_t false_positive_alerts = 0;
  [[nodiscard]] double precision() const noexcept {
    std::size_t n = true_positive_alerts + false_positive_alerts;
    return n == 0 ? 1.0
                  : static_cast<double>(true_positive_alerts) /
                        static_cast<double>(n);
  }
  /// Deterministic text table (the bit-for-bit reproducibility artifact).
  [[nodiscard]] std::string render() const;
};

/// Match the alert log against injected ground truth.  A labelled alert
/// (host / site / link series) detects a fault when its labels match the
/// fault's targets and it fired inside [at, end + max_latency]; an
/// unlabelled control-plane alert (recovery storm, queue backlog) never
/// claims a detection but is excused from false-positive counting when any
/// fault window overlaps it.
[[nodiscard]] DetectionScore score_detections(
    const std::vector<GroundTruthFault>& faults,
    const std::vector<Alert>& alerts, const DetectionOptions& options = {});

// ---------------------------------------------------------------------------
// Offline replay from a parsed trace
// ---------------------------------------------------------------------------

/// The result of re-running the rule engine over the health.* records of a
/// JSONL trace: `plane` holds the reconstructed series and re-evaluated
/// alerts; `recorded` holds the alert stream as the live run emitted it.
/// matches() is the "offline must match live exactly" guarantee.
struct ReplayResult {
  HealthPlane plane;
  std::vector<Alert> recorded;
  [[nodiscard]] bool matches() const {
    return render_alerts(plane.alerts()) == render_alerts(recorded);
  }
};

/// Reconstruct the health plane from a parsed trace.  Fails (kParseError /
/// kNotFound) when the trace carries no health.config record or a record is
/// malformed.
[[nodiscard]] common::Expected<ReplayResult> replay_trace(
    const ParsedTrace& trace);

/// Payload of the health.probe / health.probe_reply fabric messages the
/// environment exchanges between site servers each cadence tick; the reply
/// feeds the link.rtt series partition detection watches.
struct HealthProbe {
  std::int64_t site_a = -1;
  std::int64_t site_b = -1;
  std::uint64_t seq = 0;
  common::SimTime sent = 0.0;
};

}  // namespace vdce::obs::health
