// vdce::obs — the observability subsystem (docs/OBSERVABILITY.md).
//
// One Observability instance per VdceEnvironment bundles the metrics
// registry and the trace sink.  Components receive a (possibly null)
// Observability* at wiring time and guard every record with the cheap
// metrics_on()/trace_on() checks, so a run with observability disabled pays
// one branch per instrumentation site and allocates nothing.
#pragma once

#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vdce::obs {

struct MetricsOptions {
  bool enabled = false;
};

class Observability {
 public:
  Observability() = default;
  Observability(const MetricsOptions& metrics, const TraceOptions& trace,
                const FlightOptions& flight = {},
                const health::HealthOptions& health = {})
      : metrics_on_(metrics.enabled),
        trace_(trace),
        flight_(flight),
        health_(health) {
    // The plane mirrors alerts into the metrics registry and trace stream;
    // wire() is a no-op when the plane is disabled, so a health-off run
    // never touches either sink.
    health_.wire(metrics.enabled ? &metrics_ : nullptr, &trace_);
  }

  [[nodiscard]] bool metrics_on() const noexcept { return metrics_on_; }
  [[nodiscard]] bool trace_on() const noexcept { return trace_.enabled(); }
  [[nodiscard]] bool any_on() const noexcept {
    return metrics_on_ || trace_on();
  }

  void set_metrics_on(bool on) noexcept { metrics_on_ = on; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] TraceSink& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceSink& trace() const noexcept { return trace_; }

  /// The always-on ring — deliberately NOT part of any_on(): it records even
  /// when metrics and tracing are both off (that's its job).
  [[nodiscard]] FlightRecorder& flight() noexcept { return flight_; }
  [[nodiscard]] const FlightRecorder& flight() const noexcept {
    return flight_;
  }

  /// The live health plane (docs/OBSERVABILITY.md "Health plane"): labelled
  /// time-series, SLO rules, alerts.  Disabled by default; like flight, it
  /// is deliberately not part of any_on().
  [[nodiscard]] bool health_on() const noexcept { return health_.enabled(); }
  [[nodiscard]] health::HealthPlane& health() noexcept { return health_; }
  [[nodiscard]] const health::HealthPlane& health() const noexcept {
    return health_;
  }

 private:
  bool metrics_on_ = false;
  MetricsRegistry metrics_;
  TraceSink trace_;
  FlightRecorder flight_;
  health::HealthPlane health_;
};

}  // namespace vdce::obs
