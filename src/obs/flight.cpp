#include "obs/flight.hpp"

#include <cstdio>
#include <fstream>

namespace vdce::obs {

const char* to_string(FlightCode code) {
  switch (code) {
    case FlightCode::kAppStart: return "app_start";
    case FlightCode::kAppDone: return "app_done";
    case FlightCode::kTaskStart: return "task_start";
    case FlightCode::kTaskDone: return "task_done";
    case FlightCode::kTransfer: return "transfer";
    case FlightCode::kHostDown: return "host_down";
    case FlightCode::kRecovery: return "recovery";
    case FlightCode::kEscalation: return "escalation";
    case FlightCode::kStall: return "stall";
    case FlightCode::kOverload: return "overload";
    case FlightCode::kChannelRetry: return "channel_retry";
    case FlightCode::kSchedule: return "schedule";
    case FlightCode::kBringUpFailed: return "bring_up_failed";
    case FlightCode::kRunFailed: return "run_failed";
  }
  return "unknown";
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  const std::size_t retained =
      total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
  out.reserve(retained);
  // When the ring has wrapped, the oldest record sits at head_.
  const std::size_t start = total_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < retained; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string FlightRecorder::render_jsonl() const {
  const std::vector<FlightRecord> records = snapshot();
  std::string out;
  for (const FlightRecord& r : records) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", r.t);
    out += "{\"t\":";
    out += buf;
    out += ",\"code\":\"";
    out += to_string(r.code);
    out += '"';
    if (r.track != 0xFFFFFFFFu) {
      out += ",\"track\":";
      out += std::to_string(r.track);
    }
    if (r.a != 0xFFFFFFFFu) {
      out += ",\"a\":";
      out += std::to_string(r.a);
    }
    if (r.b != 0xFFFFFFFFu) {
      out += ",\"b\":";
      out += std::to_string(r.b);
    }
    if (r.v != 0.0) {
      std::snprintf(buf, sizeof buf, "%.9g", r.v);
      out += ",\"v\":";
      out += buf;
    }
    out += "}\n";
  }
  out += "{\"meta\":\"flight\",\"total\":";
  out += std::to_string(total_);
  out += ",\"retained\":";
  out += std::to_string(records.size());
  out += ",\"capacity\":";
  out += std::to_string(capacity_);
  out += "}\n";
  return out;
}

common::Status FlightRecorder::dump(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Error{common::ErrorCode::kIoError,
                         "cannot open for writing: " + path};
  }
  const std::string body = render_jsonl();
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    return common::Error{common::ErrorCode::kIoError, "short write to: " + path};
  }
  return common::Status::success();
}

}  // namespace vdce::obs
