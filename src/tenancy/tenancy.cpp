#include "tenancy/tenancy.hpp"

#include <algorithm>

namespace vdce::tenancy {

common::Status AdmissionController::enqueue(std::uint64_t handle,
                                            const std::string& user,
                                            int priority) {
  if (options_.max_queue_depth != 0 &&
      queue_.size() >= options_.max_queue_depth) {
    ++stats_.rejected;
    return common::Error{common::ErrorCode::kQuotaExceeded,
                         "admission queue full (" +
                             std::to_string(queue_.size()) + " waiting)"};
  }
  if (options_.per_user_quota != 0) {
    auto it = per_user_.find(user);
    const std::size_t current = it == per_user_.end() ? 0 : it->second;
    if (current >= options_.per_user_quota) {
      ++stats_.rejected;
      return common::Error{
          common::ErrorCode::kQuotaExceeded,
          "user " + user + " already has " + std::to_string(current) +
              " submissions (quota " +
              std::to_string(options_.per_user_quota) + ")"};
    }
  }
  queue_.push_back(Entry{handle, user, priority, next_seq_++});
  ++per_user_[user];
  ++stats_.submitted;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
  return common::Status::success();
}

bool AdmissionController::before(const Entry& a, const Entry& b) const {
  if (options_.policy == QueuePolicy::kPriority && a.priority != b.priority) {
    return a.priority > b.priority;
  }
  return a.seq < b.seq;
}

std::optional<std::uint64_t> AdmissionController::admit_next() {
  if (queue_.empty()) return std::nullopt;
  if (options_.max_in_flight != 0 &&
      in_flight_.size() >= options_.max_in_flight) {
    return std::nullopt;
  }
  std::size_t pick = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (before(queue_[i], queue_[pick])) pick = i;
  }
  Entry entry = std::move(queue_[pick]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  const std::uint64_t handle = entry.handle;
  in_flight_.emplace(handle, std::move(entry));
  ++stats_.admitted;
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_.size());
  return handle;
}

void AdmissionController::defer(std::uint64_t handle) {
  auto it = in_flight_.find(handle);
  if (it == in_flight_.end()) return;
  queue_.push_back(std::move(it->second));  // original seq keeps its place
  in_flight_.erase(it);
  ++stats_.deferred;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queue_.size());
}

common::Status AdmissionController::reserve_booking(const std::string& user) {
  if (options_.max_reservations_per_user != 0) {
    auto it = bookings_per_user_.find(user);
    const std::size_t current = it == bookings_per_user_.end() ? 0 : it->second;
    if (current >= options_.max_reservations_per_user) {
      ++stats_.reservations_rejected;
      return common::Error{
          common::ErrorCode::kQuotaExceeded,
          "user " + user + " already holds " + std::to_string(current) +
              " reservations (quota " +
              std::to_string(options_.max_reservations_per_user) + ")"};
    }
  }
  ++bookings_per_user_[user];
  ++stats_.reservations;
  return common::Status::success();
}

void AdmissionController::release_booking(const std::string& user) {
  auto it = bookings_per_user_.find(user);
  if (it != bookings_per_user_.end() && --it->second == 0) {
    bookings_per_user_.erase(it);
  }
}

void AdmissionController::complete(std::uint64_t handle) {
  auto it = in_flight_.find(handle);
  if (it == in_flight_.end()) return;
  auto user = per_user_.find(it->second.user);
  if (user != per_user_.end() && --user->second == 0) per_user_.erase(user);
  in_flight_.erase(it);
  ++stats_.completed;
}

}  // namespace vdce::tenancy
