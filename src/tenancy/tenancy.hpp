// Admission control for the multi-tenant concurrency plane (docs/TENANCY.md).
//
// The environment accepts asynchronous submissions from many users; this
// module decides, deterministically, which of them may be in flight at
// once.  It is pure bookkeeping — no engine, no fabric, no environment
// dependency — so the policy is trivially testable and the vdce_env layer
// simply wires it between submit_application() and the runtime:
//
//   submit  ->  enqueue()     typed rejections: quota, queue bound
//   pump    ->  admit_next()  deterministic FIFO / priority order
//   retry   ->  defer()       schedule lost to contention; resumes in order
//   finish  ->  complete()    frees the slot and the user's quota share
//
// Determinism: ordering depends only on (policy, priority, submission
// sequence number) — never on hashes or wall-clock time — so the same
// arrival sequence always admits in the same order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"

namespace vdce::tenancy {

/// Order in which queued submissions are admitted.
enum class QueuePolicy {
  kFifo,      ///< strictly by submission order
  kPriority,  ///< by user priority (higher first), submission order as tie-break
};

struct TenancyOptions {
  /// Applications concurrently past admission (scheduling or executing).
  /// 0 means unlimited.
  std::size_t max_in_flight = 8;
  /// Per-user cap on queued + in-flight submissions.  0 means unlimited.
  std::size_t per_user_quota = 0;
  /// Bound on the admission queue across all users.  0 means unlimited.
  std::size_t max_queue_depth = 64;
  QueuePolicy policy = QueuePolicy::kFifo;
  /// Per-user cap on *committed advance reservations* (outstanding window
  /// bookings; docs/RESERVATIONS.md).  0 means unlimited — the default
  /// never rejects, so environments that ignore the reservation plane are
  /// unaffected.
  std::size_t max_reservations_per_user = 0;
};

/// Counters surfaced through VdceEnvironment::tenancy_stats().
struct TenancyStats {
  std::uint64_t submitted = 0;       ///< enqueue() calls that were accepted
  std::uint64_t rejected = 0;        ///< enqueue() calls turned away (any reason)
  std::uint64_t admitted = 0;        ///< admit_next() grants
  std::uint64_t deferred = 0;        ///< defer() calls (contention retries)
  std::uint64_t completed = 0;       ///< complete() calls
  std::size_t peak_in_flight = 0;
  std::size_t peak_queue_depth = 0;
  std::uint64_t reservations = 0;          ///< reserve_booking() grants
  std::uint64_t reservations_rejected = 0; ///< reserve_booking() quota denials
};

class AdmissionController {
 public:
  explicit AdmissionController(TenancyOptions options) : options_(options) {}

  /// Admit `handle` (an environment-chosen submission id) into the queue.
  /// Typed failures: kQuotaExceeded when the user's quota or the global
  /// queue bound is hit.  The caller validates the user's existence first.
  [[nodiscard]] common::Status enqueue(std::uint64_t handle,
                                       const std::string& user, int priority);

  /// The next submission allowed to start, or nullopt when the queue is
  /// empty or max_in_flight submissions are already running.  The returned
  /// handle moves to the in-flight set.
  [[nodiscard]] std::optional<std::uint64_t> admit_next();

  /// Return an in-flight submission to the queue without touching quota
  /// accounting; its original sequence number keeps its place in line.
  /// Used when scheduling found every candidate machine held by concurrent
  /// applications — the submission retries after the next completion.
  void defer(std::uint64_t handle);

  /// Submission finished (success or failure): frees its in-flight slot and
  /// its share of the user's quota.
  void complete(std::uint64_t handle);

  /// Advance-reservation quota (docs/RESERVATIONS.md): charge `user` one
  /// outstanding window booking.  kQuotaExceeded once
  /// max_reservations_per_user is reached (0 = never).  The environment
  /// calls this before committing a window to the WindowTable.
  [[nodiscard]] common::Status reserve_booking(const std::string& user);
  /// A booking was cancelled or expired: return the user's quota share.
  void release_booking(const std::string& user);

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  [[nodiscard]] const TenancyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TenancyOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Entry {
    std::uint64_t handle;
    std::string user;
    int priority;
    std::uint64_t seq;
  };

  /// True when `a` should be admitted before `b` under the active policy.
  [[nodiscard]] bool before(const Entry& a, const Entry& b) const;

  TenancyOptions options_;
  std::vector<Entry> queue_;  ///< unsorted; admit_next scans (queues are short)
  std::unordered_map<std::uint64_t, Entry> in_flight_;  ///< handle -> entry
  std::unordered_map<std::string, std::size_t> per_user_;
  std::unordered_map<std::string, std::size_t> bookings_per_user_;
  std::uint64_t next_seq_ = 0;
  TenancyStats stats_;
};

}  // namespace vdce::tenancy
