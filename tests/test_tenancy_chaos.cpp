// chaos × tenancy — fault isolation across concurrent applications
// (docs/TENANCY.md, docs/FAULT_INJECTION.md).
//
// Host-exclusive co-scheduling means a machine failure is a *tenant-local*
// event: the reservation table guarantees the crashed host was executing at
// most one application, so only that application should pay recovery.  The
// suite crashes a host while a three-app fleet is in flight and asserts
// exactly that — the victim survives through rescheduling, the bystanders'
// reports show zero recoveries — and that the whole scenario, faults and
// all, replays byte-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "editor/builder.hpp"
#include "vdce/environment.hpp"
#include "vdce/testbed.hpp"

namespace vdce {
namespace {

/// A small fan-out/fan-in app whose body runs long enough for a mid-flight
/// crash to land inside task execution.
afg::Afg fleet_app(const std::string& name, double mflop) {
  editor::AppBuilder app(name);
  auto head = app.task("head", "synthetic.w400").output_data(5e4);
  auto tail = app.task("tail", "synthetic.w300");
  for (int i = 0; i < 3; ++i) {
    auto body = app.task("body" + std::to_string(i),
                         "synthetic.w" + std::to_string(
                             static_cast<long long>(mflop)))
                    .output_data(5e4);
    EXPECT_TRUE(app.link(head, body).has_value());
    EXPECT_TRUE(app.link(body, tail).has_value());
  }
  return app.build().value();
}

struct FleetRun {
  std::vector<runtime::ExecutionReport> reports;  ///< submission order
  std::string trace_jsonl;
};

/// Bring up the campus pair, submit the three-app fleet from three users,
/// and drain.  When `plan` is non-empty it is armed before bring-up.
FleetRun run_fleet(chaos::FaultPlan plan) {
  EnvironmentOptions options;
  options.runtime.exec_noise_cv = 0.0;
  options.runtime.echo_period = 0.5;
  options.runtime.progress_period = 1.0;
  options.trace.enabled = true;
  options.faults = std::move(plan);
  VdceEnvironment env(make_campus_pair(19), options);
  env.bring_up();

  FleetRun result;
  std::vector<AppHandle> handles;
  for (int u = 0; u < 3; ++u) {
    const std::string user = "user" + std::to_string(u);
    EXPECT_TRUE(env.try_add_user(user, "p").ok());
    Session session = env.login(common::SiteId(0), user, "p").value();
    RunOptions run;
    run.real_kernels = false;
    auto handle = env.submit_application(
        fleet_app("fleet" + std::to_string(u), 2500.0 + 500.0 * u), session,
        run);
    EXPECT_TRUE(handle.has_value()) << handle.error().to_string();
    if (handle) handles.push_back(*handle);
  }
  EXPECT_TRUE(env.drain().ok());
  for (AppHandle h : handles) {
    auto report = env.report(h);
    EXPECT_TRUE(report.has_value()) << report.error().to_string();
    if (report) result.reports.push_back(std::move(*report));
  }
  result.trace_jsonl = env.trace().to_jsonl();
  return result;
}

/// The host to crash and when: from a fault-free control run, pick a task
/// interval long enough to aim a crash into its middle, on a host that is
/// not a site server (crashing a Site Manager is a different scenario).
struct CrashTarget {
  std::uint32_t host = 0;
  std::uint32_t app = 0;  ///< the application executing there
  double at = 0.0;
};

CrashTarget pick_target(const FleetRun& control) {
  // The control run's reports carry (host, interval) pairs to choose from;
  // exclude the sites' server machines (crashing a Site Manager is a
  // different scenario, covered by test_chaos_cascade).
  std::vector<std::uint32_t> servers;
  const net::Topology topo = make_campus_pair(19);
  for (const net::Site& s : topo.sites()) servers.push_back(s.server.value());
  auto is_server = [&](std::uint32_t h) {
    return std::find(servers.begin(), servers.end(), h) != servers.end();
  };
  CrashTarget best;
  double best_span = 0.0;
  for (const runtime::ExecutionReport& r : control.reports) {
    for (const runtime::TaskOutcome& o : r.outcomes) {
      const double span = o.finished - o.started;
      if (span > best_span && !is_server(o.host.value())) {
        best_span = span;
        best.host = o.host.value();
        best.app = r.app.value();
        best.at = o.started + span / 2.0;
      }
    }
  }
  EXPECT_GT(best_span, 0.0) << "control run produced no usable interval";
  return best;
}

/// Recovery actions attributable to a machine failure (load-driven overload
/// reschedules and stall resends are ordinary concurrent-execution dynamics
/// and happen with no faults armed at all).
std::size_t host_down_recoveries(const runtime::ExecutionReport& r) {
  std::size_t n = 0;
  for (const runtime::RecoveryEvent& e : r.recoveries) {
    if (e.reason == "host_down" || e.reason == "cascade") ++n;
  }
  return n;
}

TEST(TenancyChaos, OnlyAppsOnTheFailedHostPayRecovery) {
  const FleetRun control = run_fleet(chaos::FaultPlan{});
  ASSERT_EQ(control.reports.size(), 3u);
  for (const runtime::ExecutionReport& r : control.reports) {
    ASSERT_TRUE(r.success) << r.failure_reason;
    EXPECT_EQ(r.failures_survived, 0);
    EXPECT_EQ(host_down_recoveries(r), 0u);
  }
  const CrashTarget target = pick_target(control);

  chaos::FaultPlan plan;
  plan.name("tenancy-crash").seed(3).crash(common::HostId(target.host),
                                           target.at, 120.0);
  const FleetRun faulted = run_fleet(std::move(plan));
  ASSERT_EQ(faulted.reports.size(), 3u);

  bool victim_seen = false;
  for (const runtime::ExecutionReport& r : faulted.reports) {
    ASSERT_TRUE(r.success) << r.failure_reason;
    if (r.app.value() == target.app) {
      // The victim survives the crash through recovery...
      victim_seen = true;
      EXPECT_GE(r.failures_survived, 1) << "crash missed the victim";
      EXPECT_GE(host_down_recoveries(r), 1u);
    } else {
      // ...and fault isolation holds: the host was reserved exclusively
      // for the victim, so no bystander pays for the machine failure.
      EXPECT_EQ(r.failures_survived, 0)
          << "app " << r.app.value() << " paid for a foreign host's crash";
      EXPECT_EQ(host_down_recoveries(r), 0u)
          << "app " << r.app.value() << " recovered from a foreign fault";
    }
  }
  EXPECT_TRUE(victim_seen);
}

TEST(TenancyChaos, FaultedFleetReplaysByteIdentically) {
  const FleetRun control = run_fleet(chaos::FaultPlan{});
  ASSERT_EQ(control.reports.size(), 3u);
  const CrashTarget target = pick_target(control);

  auto make_plan = [&] {
    chaos::FaultPlan plan;
    plan.name("tenancy-replay").seed(3).crash(common::HostId(target.host),
                                              target.at, 120.0);
    return plan;
  };
  const FleetRun first = run_fleet(make_plan());
  const FleetRun second = run_fleet(make_plan());
  ASSERT_FALSE(first.trace_jsonl.empty());
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);
}

}  // namespace
}  // namespace vdce
