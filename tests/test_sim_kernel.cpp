// The zero-allocation event kernel (sim/task.hpp, sim/engine.hpp):
//
//   * steady-state schedule/fire/cancel touches the allocator zero times
//     (proven with a counting replacement operator new),
//   * generation-checked handles stay safe no-ops across a million
//     slot-recycling schedule/cancel cycles, after their event fired, and
//     after the engine itself has been destroyed,
//   * and the calendar queue's firing order is *identical* to both the
//     frozen legacy kernel (sim/legacy_engine.hpp) and the in-engine
//     binary-heap reference mode, under randomized operation scripts that
//     stress ties, cancellations, timers, bursts, and sparse horizons.
//
// The environment-level trace differential (chaos / tenancy / 200-case
// scale corpus) lives in test_sim_kernel_differential.cpp (tier2).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "sim/engine.hpp"
#include "sim/legacy_engine.hpp"

// ---- global allocation counter ---------------------------------------------
// Counts every heap allocation in the test binary so the steady-state test
// can assert the kernel's schedule/fire/cancel path allocates nothing.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vdce {
namespace {

// ---- Task: the SBO callable ------------------------------------------------

TEST(SimTask, InlineStorageInvokesAndMoves) {
  int hits = 0;
  sim::Task t([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(t));
  t();
  EXPECT_EQ(hits, 1);

  sim::Task moved = std::move(t);
  EXPECT_FALSE(static_cast<bool>(t));
  moved();
  EXPECT_EQ(hits, 2);
}

TEST(SimTask, FatCapturesNearTheInlineBudgetNeverAllocate) {
  struct Fat {
    double payload[14];  // 112 bytes; +8 for &seen stays inside the budget
  };
  Fat fat{};
  fat.payload[0] = 42.0;
  double seen = 0.0;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  {
    sim::Task t([fat, &seen] { seen = fat.payload[0]; });
    sim::Task moved = std::move(t);
    moved();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "constructing/moving/invoking/destroying a Task must not allocate";
  EXPECT_EQ(seen, 42.0);
}

TEST(SimTask, DestroysCapturedStateExactlyOnce) {
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& other) noexcept : counter(other.counter) {
      other.counter = nullptr;
    }
    ~Probe() {
      if (counter) ++*counter;
    }
  };
  int destroyed = 0;
  {
    sim::Task t([p = Probe(&destroyed)] { (void)p; });
    sim::Task moved = std::move(t);
    moved();  // invoking does not destroy the closure
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

// ---- zero-allocation steady state ------------------------------------------
//
// The daemon-like steady state: a fixed population of periodic timers, each
// tick scheduling a one-shot follow-up and cancelling every other one.  The
// workload is strictly periodic, so once the arena, the timer list, and the
// calendar buckets are warm, the measured window repeats the exact occupancy
// pattern of the warm-up — and must not touch the allocator at all.

struct SteadyState {
  sim::Engine* engine = nullptr;
  std::uint64_t ticks = 0;
  std::uint64_t cancels = 0;
  sim::EventHandle last;
};

void steady_tick(SteadyState* s, double period) {
  ++s->ticks;
  // Schedule a follow-up half a period out; cancel every other one.  The
  // cancelled event stays queued (frozen kernel semantics) and is recycled
  // when its time comes up — exercising the cancel path every tick.
  sim::EventHandle h =
      s->engine->schedule(period * 0.5, [s] { ++s->ticks; });
  if (s->ticks % 2 == 0) {
    h.cancel();
    ++s->cancels;
  }
  s->last = h;
}

TEST(SimKernelAlloc, SteadyStateScheduleFireCancelIsAllocationFree) {
  sim::Engine engine;
  engine.reserve_events(4096);
  SteadyState state;
  state.engine = &engine;

  constexpr int kTimers = 96;
  const double periods[] = {0.25, 0.5, 1.0, 2.0};
  for (int i = 0; i < kTimers; ++i) {
    const double period = periods[i % 4];
    engine.every(period, [s = &state, period] { steady_tick(s, period); });
  }

  // Warm-up: several full rotations of the slowest period so arena slots,
  // timer slots, and every calendar bucket reach their plateau capacity.
  engine.run_until(64.0);
  const std::uint64_t warm_ticks = state.ticks;
  ASSERT_GT(warm_ticks, 10000u);
  const std::size_t warm_capacity = engine.arena_capacity();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  engine.run_until(192.0);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/fire/cancel must not allocate";
  EXPECT_GT(state.ticks, warm_ticks * 2) << "the measured window did run";
  EXPECT_GT(state.cancels, 0u);
  EXPECT_EQ(engine.arena_capacity(), warm_capacity)
      << "the arena must not grow in the steady state";
}

// ---- generation-checked handles --------------------------------------------

TEST(SimKernelHandles, CancelAndPendingAfterFireAreNoOps) {
  sim::Engine engine;
  int fired = 0;
  sim::EventHandle h = engine.schedule(1.0, [&fired] { ++fired; });
  EXPECT_TRUE(h.pending());
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // after fire: no-op
  h.cancel();  // repeated: still a no-op
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(engine.total_fired(), 1u);
}

TEST(SimKernelHandles, StaleHandleDoesNotCancelTheSlotsNewOccupant) {
  sim::Engine engine;
  int first = 0, second = 0;
  sim::EventHandle old = engine.schedule(1.0, [&first] { ++first; });
  old.cancel();
  engine.run();  // pops the cancelled entry: the slot joins the free list
  ASSERT_EQ(engine.arena_live(), 0u);
  // The next schedule recycles that slot under a bumped generation.
  sim::EventHandle fresh = engine.schedule(1.0, [&second] { ++second; });
  EXPECT_FALSE(old.pending());
  old.cancel();  // generation miss: must NOT kill `fresh`
  EXPECT_TRUE(fresh.pending());
  engine.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(SimKernelHandles, MillionScheduleCancelCyclesRecycleSlots) {
  sim::Engine engine;
  int fired = 0;
  sim::EventHandle first = engine.schedule(1.0, [&fired] { ++fired; });
  first.cancel();
  // A million schedule/cancel cycles in batches of 1024: draining between
  // batches pops the cancelled entries and recycles their slots, so each
  // slot is reused ~1000 times with a bumped generation every round.  The
  // arena must stay bounded by the batch size, and `first` (plus every
  // sampled stale handle) must stay dead no matter how often its slot is
  // reincarnated.
  for (int i = 0; i < 1'000'000; ++i) {
    sim::EventHandle h = engine.schedule(1.0, [&fired] { ++fired; });
    h.cancel();
    EXPECT_FALSE(h.pending());
    if ((i & 1023) == 1023) {
      engine.run_until(engine.now() + 2.0);
      if ((i & 0xffff) == 0xffff) EXPECT_FALSE(first.pending());
    }
  }
  engine.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(engine.total_scheduled(), 1'000'001u);
  EXPECT_EQ(engine.arena_live(), 0u);
  EXPECT_LE(engine.arena_capacity(), 2048u)
      << "slot recycling must bound the arena by the in-flight count";
  first.cancel();  // still a safe no-op a million generations later
}

TEST(SimKernelHandles, HandlesOutliveTheEngine) {
  sim::EventHandle event;
  sim::TimerHandle timer;
  int fired = 0;
  {
    auto engine = std::make_unique<sim::Engine>();
    event = engine->schedule(5.0, [&fired] { ++fired; });
    timer = engine->every(1.0, [&fired] { ++fired; });
    EXPECT_TRUE(event.pending());
    EXPECT_TRUE(timer.active());
  }
  // The engine is gone; the anchor is nulled, so every operation degrades
  // to a safe no-op instead of touching freed memory.
  EXPECT_FALSE(event.pending());
  EXPECT_FALSE(timer.active());
  event.cancel();
  timer.cancel();
  EXPECT_EQ(fired, 0);
}

TEST(SimKernelHandles, DefaultConstructedHandlesAreInert) {
  sim::EventHandle event;
  sim::TimerHandle timer;
  EXPECT_FALSE(event.pending());
  EXPECT_FALSE(timer.active());
  event.cancel();
  timer.cancel();
}

// ---- timers -----------------------------------------------------------------

TEST(SimKernelTimers, OptionalInitialDelayDefaultsToOneFullPeriod) {
  sim::Engine engine;
  std::vector<double> fire_times;
  engine.every(2.0, [&] { fire_times.push_back(engine.now()); });
  engine.run_until(7.0);
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], 2.0);
  EXPECT_EQ(fire_times[1], 4.0);
  EXPECT_EQ(fire_times[2], 6.0);
}

TEST(SimKernelTimers, ExplicitInitialDelayOverridesThePeriod) {
  sim::Engine engine;
  std::vector<double> fire_times;
  engine.every(2.0, [&] { fire_times.push_back(engine.now()); }, 0.25);
  engine.run_until(5.0);
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], 0.25);
  EXPECT_EQ(fire_times[1], 2.25);
  EXPECT_EQ(fire_times[2], 4.25);
}

TEST(SimKernelTimers, ZeroInitialDelayFiresImmediately) {
  sim::Engine engine;
  int ticks = 0;
  sim::TimerHandle t = engine.every(1.0, [&ticks] { ++ticks; }, 0.0);
  engine.run_steps(1);
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(engine.now(), 0.0);
  t.cancel();
  engine.run_until(3.0);
  EXPECT_EQ(ticks, 1);
}

TEST(SimKernelTimers, TimerSlotIsRecycledAfterStop) {
  sim::Engine engine;
  for (int round = 0; round < 64; ++round) {
    int ticks = 0;
    sim::TimerHandle t = engine.every(0.5, [&ticks] { ++ticks; });
    engine.run_until(engine.now() + 2.0);
    t.cancel();
    engine.run_until(engine.now() + 2.0);  // pending tick drains
    EXPECT_EQ(ticks, 4) << "round " << round;
  }
  // All 64 timers reused a tiny pool of recycled timer slots.
  EXPECT_LE(engine.timer_capacity(), 4u);
}

// ---- firing-order differential: calendar vs heap vs legacy ------------------
//
// A randomized operation script applied identically to (a) the production
// calendar-queue engine, (b) the same engine in binary-heap-reference mode,
// and (c) the frozen pre-redesign LegacyEngine.  Every callback appends
// "<id>@<time>" to a log; the three logs must be byte-identical.  Times are
// drawn on a coarse lattice so ties are common and the (time, seq)
// tiebreak — the property the calendar queue must preserve exactly — is
// stressed hard.

struct ScriptOp {
  enum Kind { kOneShot, kCancelled, kCancelAt, kTimer, kTimerStopAt } kind;
  double at = 0.0;      ///< schedule time (offset) or timer period
  double arg = 0.0;     ///< cancel time / timer stop time / initial delay
  int target = -1;      ///< for kCancelAt / kTimerStopAt: victim op index
};

std::vector<ScriptOp> make_script(std::uint64_t seed, std::size_t ops,
                                  double lattice, double horizon) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, horizon);
  auto snap = [&](double t) {
    return lattice > 0.0 ? std::floor(t / lattice) * lattice : t;
  };
  std::vector<ScriptOp> script;
  std::vector<int> one_shots, timers;
  for (std::size_t i = 0; i < ops; ++i) {
    ScriptOp op;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
      case 3:
        op.kind = ScriptOp::kOneShot;
        op.at = snap(uniform(rng));
        one_shots.push_back(static_cast<int>(script.size()));
        break;
      case 4:
        op.kind = ScriptOp::kCancelled;  // cancelled before the run starts
        op.at = snap(uniform(rng));
        break;
      case 5:
        if (one_shots.empty()) continue;
        op.kind = ScriptOp::kCancelAt;
        op.at = snap(uniform(rng));
        op.target = one_shots[rng() % one_shots.size()];
        break;
      case 6:
        op.kind = ScriptOp::kTimer;
        op.at = snap(uniform(rng)) / 8.0 + (lattice > 0.0 ? lattice : 0.01);
        op.arg = rng() % 2 == 0 ? -1.0 : snap(uniform(rng)) / 4.0;
        timers.push_back(static_cast<int>(script.size()));
        break;
      default:
        if (timers.empty()) continue;
        op.kind = ScriptOp::kTimerStopAt;
        op.at = snap(uniform(rng));
        op.target = timers[rng() % timers.size()];
        break;
    }
    script.push_back(op);
  }
  return script;
}

/// Replay `script` on any engine type with schedule/every/run and
/// EventHandle-style cancel(); returns the firing log.
template <typename EngineT, typename EventHandleT, typename TimerHandleT>
std::string replay_script(EngineT& engine, const std::vector<ScriptOp>& script,
                          double horizon) {
  std::string log;
  auto fire = [&log, &engine](int id) {
    log += std::to_string(id);
    log += '@';
    log += common::format_double(engine.now(), 9);
    log += '\n';
  };
  std::vector<EventHandleT> events(script.size());
  std::vector<TimerHandleT> timers(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const ScriptOp& op = script[i];
    const int id = static_cast<int>(i);
    switch (op.kind) {
      case ScriptOp::kOneShot:
        events[i] = engine.schedule(op.at, [fire, id] { fire(id); });
        break;
      case ScriptOp::kCancelled:
        events[i] = engine.schedule(op.at, [fire, id] { fire(id); });
        events[i].cancel();
        break;
      case ScriptOp::kCancelAt:
        engine.schedule(op.at, [&events, t = op.target] {
          events[static_cast<std::size_t>(t)].cancel();
        });
        break;
      case ScriptOp::kTimer:
        if (op.arg < 0.0) {
          timers[i] = engine.every(op.at, [fire, id] { fire(id); });
        } else {
          timers[i] = engine.every(op.at, [fire, id] { fire(id); }, op.arg);
        }
        break;
      case ScriptOp::kTimerStopAt:
        engine.schedule(op.at, [&timers, t = op.target] {
          timers[static_cast<std::size_t>(t)].cancel();
        });
        break;
    }
  }
  engine.run_until(horizon);
  return log;
}

void expect_kernels_agree(std::uint64_t seed, std::size_t ops, double lattice,
                          double horizon) {
  const std::vector<ScriptOp> script =
      make_script(seed, ops, lattice, horizon);
  ASSERT_FALSE(script.empty());

  sim::Engine calendar(sim::QueueKind::kCalendar);
  sim::Engine heap(sim::QueueKind::kBinaryHeapReference);
  sim::legacy::LegacyEngine legacy;

  const std::string a =
      replay_script<sim::Engine, sim::EventHandle, sim::TimerHandle>(
          calendar, script, horizon);
  const std::string b =
      replay_script<sim::Engine, sim::EventHandle, sim::TimerHandle>(
          heap, script, horizon);
  const std::string c =
      replay_script<sim::legacy::LegacyEngine, sim::legacy::LegacyEventHandle,
                    sim::legacy::LegacyTimerHandle>(legacy, script, horizon);

  ASSERT_FALSE(a.empty()) << "seed " << seed << ": nothing fired";
  EXPECT_EQ(a, b) << "seed " << seed << ": calendar vs binary-heap reference";
  EXPECT_EQ(a, c) << "seed " << seed << ": calendar vs frozen legacy kernel";
  EXPECT_EQ(calendar.now(), legacy.now());
  EXPECT_EQ(calendar.total_fired(), heap.total_fired());
}

class KernelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelFuzz, TiedLatticeScriptFiresIdenticallyOnAllThreeKernels) {
  // Coarse lattice (0.125) over a 40 s horizon: dense, heavily tied.
  expect_kernels_agree(GetParam(), 1500, 0.125, 40.0);
}

TEST_P(KernelFuzz, ContinuousTimesAlsoAgree) {
  // No lattice: continuous timestamps, ties only from identical draws.
  expect_kernels_agree(GetParam() * 7919 + 1, 1200, 0.0, 25.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(KernelFuzzEdges, SingleInstantBurstPreservesSubmissionOrder) {
  // Everything at t=0: pure seq-order test, and the calendar's worst tie
  // case (one bucket holds the whole population).
  sim::Engine calendar(sim::QueueKind::kCalendar);
  sim::Engine heap(sim::QueueKind::kBinaryHeapReference);
  for (sim::Engine* engine : {&calendar, &heap}) {
    std::string log;
    for (int i = 0; i < 2000; ++i) {
      engine->schedule(0.0, [&log, i] { log += std::to_string(i) + ","; });
    }
    engine->run();
    std::string expected;
    for (int i = 0; i < 2000; ++i) expected += std::to_string(i) + ",";
    EXPECT_EQ(log, expected);
  }
}

TEST(KernelFuzzEdges, SparseHorizonExercisesTheCalendarFallback) {
  // A handful of events spread across nine decades of simulated time: the
  // window scan gives up and the sparse fallback (min over bucket tops)
  // must still produce the exact order.
  expect_kernels_agree(99, 200, 0.0, 1e9);
}

TEST(KernelFuzzEdges, DrainAndRefillKeepsOrderAcrossResizes) {
  // Grow to thousands, drain to near-zero, grow again: crosses the
  // calendar's resize thresholds in both directions repeatedly.
  sim::Engine calendar(sim::QueueKind::kCalendar);
  sim::legacy::LegacyEngine legacy;
  std::string a, b;
  auto drive = [](auto& engine, std::string& log) {
    std::mt19937_64 rng(4242);
    std::uniform_real_distribution<double> jitter(0.0, 4.0);
    for (int wave = 0; wave < 6; ++wave) {
      const double base = engine.now();
      for (int i = 0; i < 3000; ++i) {
        const int id = wave * 3000 + i;
        engine.schedule(jitter(rng), [&log, id, &engine] {
          log += std::to_string(id) + "@" +
                 common::format_double(engine.now(), 9) + "\n";
        });
      }
      engine.run_until(base + 8.0);  // full drain between waves
    }
  };
  drive(calendar, a);
  drive(legacy, b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---- throughput / arena accounting ------------------------------------------

TEST(SimKernelAccounting, WallClockAndArenaGaugesAreSane) {
  sim::Engine engine;
  EXPECT_EQ(engine.events_per_sec(), 0.0);
  EXPECT_EQ(engine.arena_high_water(), 0u);
  for (int i = 0; i < 1000; ++i) {
    engine.schedule(static_cast<double>(i) * 0.001, [] {});
  }
  EXPECT_EQ(engine.arena_live(), 1000u);
  EXPECT_GE(engine.arena_capacity(), 1000u);
  engine.run();
  EXPECT_EQ(engine.arena_live(), 0u);
  EXPECT_EQ(engine.arena_high_water(), 1000u);
  EXPECT_GT(engine.wall_seconds_in_run(), 0.0);
  EXPECT_GT(engine.events_per_sec(), 0.0);
}

}  // namespace
}  // namespace vdce
